//! Benchmarks of the batch tier: the columnar multi-dataset executor
//! (`srm-batch`) and the serve tier's `POST /v1/batches` round trip.
//!
//! - `batch_fit/items` — one executor pass over an 8-dataset fleet on
//!   the default pool; the cost a caller pays per `srm fit --batch`.
//! - `batch_fit/threads` — the same fleet on an explicit 4-thread
//!   pool; results are bit-identical (proven in tests), so this pair
//!   isolates the scheduling overhead, not the answer.
//! - `batch_http/end_to_end` — submit a 2-item batch over HTTP and
//!   poll its rollup to `done`, seed-bumped each iteration so the fit
//!   cache never short-circuits the measurement.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_batch::{run_batch, BatchSpec};
use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_core::FitConfig;
use srm_data::BugCountData;
use srm_mcmc::runner::RunOptions;
use srm_mcmc::McmcConfig;
use srm_serve::{Server, ServerConfig};
use std::hint::black_box;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const ITEMS: usize = 8;

/// A small synthetic fleet: distinct decaying count series so no two
/// items coalesce in the duplicate cache.
fn fleet() -> Vec<(String, BugCountData)> {
    (0..ITEMS)
        .map(|i| {
            let counts: Vec<u64> = (0..12)
                .map(|d| ((ITEMS - i) as u64 * 3 + i as u64) / (d + 1) as u64)
                .collect();
            (format!("proj{i}"), BugCountData::new(counts).unwrap())
        })
        .collect()
}

fn spec(threads: usize) -> BatchSpec {
    BatchSpec {
        prior: srm_mcmc::PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        model: srm_model::DetectionModel::Constant,
        config: FitConfig {
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 40,
                samples: 120,
                thin: 1,
                seed: 7,
            },
            ..FitConfig::default()
        },
        options: RunOptions {
            threads,
            ..RunOptions::none()
        },
    }
}

fn bench_batch_fit(c: &mut Criterion) {
    let items = fleet();
    let mut group = c.benchmark_group("batch/fit");
    group.sample_size(10);
    for (label, threads) in [("items", 0usize), ("threads", 4)] {
        group.bench_with_input(BenchmarkId::new("batch_fit", label), &threads, |b, &t| {
            let s = spec(t);
            b.iter(|| {
                let report = run_batch(&s, &items, "bench").unwrap();
                assert_eq!(report.failed(), 0);
                black_box(report.items.len())
            });
        });
    }
    group.finish();
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// Submits one 2-item batch and polls the rollup to `done`. The seed
/// changes every call, so every fit is fresh work, never a cache hit.
fn batch_round_trip(addr: SocketAddr, seed: u64) {
    let body = format!(
        r#"{{"model":"model0","chains":1,"samples":120,"burn_in":40,"seed":{seed},
            "items":[{{"label":"a","counts":[5,3,4,1,2,0,1]}},
                     {{"label":"b","counts":[4,4,2,2,1,1,0,1]}}]}}"#
    );
    let (status, payload) = http(addr, "POST", "/v1/batches", &body);
    assert_eq!(status, 202, "{payload}");
    let doc = srm_obs::json::parse(&payload).unwrap();
    if doc.get("status").unwrap().as_str() == Some("done") {
        return;
    }
    let id = doc.get("id").unwrap().as_str().unwrap().to_owned();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, payload) = http(addr, "GET", &format!("/v1/batches/{id}"), "");
        assert_eq!(status, 200, "{payload}");
        let doc = srm_obs::json::parse(&payload).unwrap();
        if doc.get("status").unwrap().as_str() == Some("done") {
            return;
        }
        assert!(Instant::now() < deadline, "batch {id} never finished");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn bench_batch_http(c: &mut Criterion) {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut seed = 0u64;
    let mut group = c.benchmark_group("batch/http");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("batch_http", "end_to_end"),
        &(),
        |b, ()| {
            b.iter(|| {
                seed += 1;
                batch_round_trip(addr, seed);
            });
        },
    );
    group.finish();
    server.request_shutdown();
    let _ = server.join();
}

criterion_group!(benches, bench_batch_fit, bench_batch_http);
criterion_main!(benches);
