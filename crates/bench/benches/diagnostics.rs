//! Benchmarks of the convergence diagnostics, plus the measured side
//! of **ablation-a** (DESIGN.md): effective sample size per sweep for
//! the collapsed versus naive Gibbs sweeps.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_data::datasets;
use srm_mcmc::diagnostics::{effective_sample_size, geweke_z, psrf};
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec, SweepKind};
use srm_model::{DetectionModel, ZetaBounds};
use srm_rand::{Distribution, Normal, SplitMix64, Xoshiro256StarStar};
use std::hint::black_box;

fn synthetic_chain(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from(seed);
    Normal::standard().sample_n(&mut rng, n)
}

fn bench_psrf(c: &mut Criterion) {
    let chains: Vec<Vec<f64>> = (0..4).map(|i| synthetic_chain(100 + i, 10_000)).collect();
    let refs: Vec<&[f64]> = chains.iter().map(Vec::as_slice).collect();
    c.bench_function("diagnostics/psrf_4x10k", |b| {
        b.iter(|| black_box(psrf(&refs)));
    });
}

fn bench_geweke_and_ess(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagnostics/single_chain");
    for n in [1_000usize, 10_000, 100_000] {
        let chain = synthetic_chain(200, n);
        group.bench_with_input(BenchmarkId::new("geweke", n), &chain, |b, ch| {
            b.iter(|| black_box(geweke_z(ch)));
        });
        group.bench_with_input(BenchmarkId::new("ess", n), &chain, |b, ch| {
            b.iter(|| black_box(effective_sample_size(ch)));
        });
    }
    group.finish();
}

/// Ablation-a, mixing side: ESS achieved by 2 000 sweeps of each
/// sweep kind. Reported as a benchmark so the collapsed-vs-naive
/// efficiency ratio regenerates together with the timing numbers.
fn bench_ess_per_sweep_ablation(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let mut group = c.benchmark_group("diagnostics/ablation_ess_per_2k_sweeps");
    group.sample_size(10);
    for (label, kind) in [
        ("collapsed", SweepKind::Collapsed),
        ("naive", SweepKind::Naive),
    ] {
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_sweep_kind(kind);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sampler, |b, s| {
            b.iter(|| {
                let mut rng = Xoshiro256StarStar::seed_from(300);
                let chain = s.run_chain(&mut rng, 200, 2_000, 1, &mut |_| {});
                black_box(effective_sample_size(chain.draws("residual").unwrap()))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_psrf,
    bench_geweke_and_ess,
    bench_ess_per_sweep_ablation
);
criterion_main!(benches);
