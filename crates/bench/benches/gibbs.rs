//! Benchmarks of full Gibbs runs, including **ablation-a** from
//! DESIGN.md: the collapsed sweep (N marginalised out of the hyper
//! and ζ updates) versus the naive textbook sweep. The collapsed
//! sweep costs slightly more per iteration but buys an order of
//! magnitude in effective samples; the per-sweep cost comparison
//! lives here, the mixing comparison in `diagnostics`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_data::datasets;
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec, SweepKind, ZetaKernel};
use srm_model::{DetectionModel, ZetaBounds};
use srm_rand::Xoshiro256StarStar;
use std::hint::black_box;

fn run_sweeps(sampler: &GibbsSampler, sweeps: usize, seed: u64) -> f64 {
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let chain = sampler.run_chain(&mut rng, 0, sweeps, 1, &mut |_| {});
    chain.draws("residual").unwrap().iter().sum()
}

fn bench_sweep_cost_by_model(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let mut group = c.benchmark_group("gibbs/100_sweeps_poisson");
    group.sample_size(20);
    for model in DetectionModel::ALL {
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            model,
            ZetaBounds::default(),
            &data,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &sampler,
            |b, s| {
                b.iter(|| black_box(run_sweeps(s, 100, 11)));
            },
        );
    }
    group.finish();
}

fn bench_sweep_cost_by_prior(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let mut group = c.benchmark_group("gibbs/100_sweeps_model1");
    group.sample_size(20);
    for (label, prior) in [
        (
            "poisson",
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
        ),
        ("negbinom", PriorSpec::NegBinomial { alpha_max: 100.0 }),
    ] {
        let sampler = GibbsSampler::new(
            prior,
            DetectionModel::PadgettSpurrier,
            ZetaBounds::default(),
            &data,
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &sampler, |b, s| {
            b.iter(|| black_box(run_sweeps(s, 100, 12)));
        });
    }
    group.finish();
}

fn bench_ablation_collapsed_vs_naive(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let mut group = c.benchmark_group("gibbs/ablation_sweep_kind");
    group.sample_size(20);
    for (label, kind) in [
        ("collapsed", SweepKind::Collapsed),
        ("naive", SweepKind::Naive),
    ] {
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_sweep_kind(kind);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sampler, |b, s| {
            b.iter(|| black_box(run_sweeps(s, 100, 13)));
        });
    }
    group.finish();
}

fn bench_ablation_zeta_kernel(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let mut group = c.benchmark_group("gibbs/ablation_zeta_kernel");
    group.sample_size(20);
    for (label, kernel) in [
        ("slice", ZetaKernel::Slice),
        ("adaptive_rw", ZetaKernel::AdaptiveRw),
    ] {
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::PadgettSpurrier,
            ZetaBounds::default(),
            &data,
        )
        .with_zeta_kernel(kernel);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sampler, |b, s| {
            b.iter(|| black_box(run_sweeps(s, 100, 14)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_cost_by_model,
    bench_sweep_cost_by_prior,
    bench_ablation_collapsed_vs_naive,
    bench_ablation_zeta_kernel
);
criterion_main!(benches);
