//! Benchmarks of the grouped-data likelihood (Eq. (2)) — the hot path
//! of every Gibbs sweep.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_data::datasets;
use srm_model::{DetectionModel, GroupedLikelihood};
use std::hint::black_box;

fn bench_joint_likelihood(c: &mut Criterion) {
    let mut group = c.benchmark_group("likelihood/joint");
    for day in [48usize, 96, 146] {
        let data = if day <= 96 {
            datasets::musa_cc96().truncated(day).unwrap()
        } else {
            datasets::musa_cc96().extended_with_zeros(day - 96)
        };
        let lik = GroupedLikelihood::new(&data);
        let probs = DetectionModel::PadgettSpurrier
            .probs(&[0.9, 0.08], day)
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(day), &day, |b, _| {
            b.iter(|| black_box(lik.ln_likelihood(black_box(400), &probs)));
        });
    }
    group.finish();
}

fn bench_pointwise_terms(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let lik = GroupedLikelihood::new(&data);
    let probs = DetectionModel::Constant.probs(&[0.05], 96).unwrap();
    c.bench_function("likelihood/pointwise_all_96", |b| {
        b.iter(|| black_box(lik.ln_pointwise_all(black_box(400), &probs)));
    });
}

fn bench_schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("likelihood/schedule");
    let cases: [(DetectionModel, Vec<f64>); 5] = [
        (DetectionModel::Constant, vec![0.05]),
        (DetectionModel::PadgettSpurrier, vec![0.9, 0.08]),
        (DetectionModel::LogLogistic, vec![0.4, 1.0]),
        (DetectionModel::Pareto, vec![0.3]),
        (DetectionModel::Weibull, vec![0.5, 0.6]),
    ];
    for (model, zeta) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |b, m| {
            b.iter(|| black_box(m.probs(black_box(&zeta), 96).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_joint_likelihood,
    bench_pointwise_terms,
    bench_schedule_generation
);
criterion_main!(benches);
