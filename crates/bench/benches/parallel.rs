//! Benchmarks of the parallel multi-chain runner: the Musa-T1 fit
//! (4 chains) at 1 worker thread versus 4, plus the sufficient-
//! statistics cache ablation. The acceptance bar for the threading
//! layer is a ≥2× wall-clock speedup at 4 chains / 4 threads; the
//! determinism contract (same seed ⇒ bit-identical draws at any
//! thread count) is enforced by the test suite, so these numbers
//! measure pure scheduling overhead.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_data::datasets;
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
use srm_mcmc::runner::{
    run_chains_fault_tolerant, run_chains_fault_tolerant_traced, McmcConfig, RunOptions,
};
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::{Event, Recorder};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn musa_sampler() -> GibbsSampler {
    GibbsSampler::new(
        PriorSpec::Poisson {
            lambda_max: 2_000.0,
        },
        DetectionModel::PadgettSpurrier,
        ZetaBounds::default(),
        &datasets::musa_cc96(),
    )
}

fn run_fit(sampler: &GibbsSampler, threads: usize) -> f64 {
    let config = McmcConfig {
        chains: 4,
        burn_in: 200,
        samples: 300,
        thin: 1,
        seed: 4_242,
    };
    let run =
        run_chains_fault_tolerant(sampler, &config, &RunOptions::with_threads(threads)).unwrap();
    run.output.pooled("residual").iter().sum()
}

/// The headline number: a 4-chain Musa-T1 fit by worker count.
fn bench_fit_by_threads(c: &mut Criterion) {
    let sampler = musa_sampler();
    let mut group = c.benchmark_group("parallel/musa_fit_4_chains");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &sampler, |b, s| {
            b.iter(|| black_box(run_fit(s, threads)));
        });
    }
    group.finish();
}

/// Ablation: the per-day sufficient-statistics cache on and off for
/// the same serial run (cache wins scale with the ζ dimension).
fn bench_suffstats_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/suffstats_cache");
    group.sample_size(10);
    for (label, cached) in [("cached", true), ("uncached", false)] {
        let sampler = musa_sampler().with_cached_stats(cached);
        group.bench_with_input(BenchmarkId::new("suffstats", label), &sampler, |b, s| {
            b.iter(|| black_box(run_fit(s, 1)));
        });
    }
    group.finish();
}

/// An enabled recorder that only counts events — the cheapest sink
/// that still forces the runner onto its instrumented path, so the
/// off/on delta isolates the streaming-accumulator cost itself.
#[derive(Debug, Default)]
struct CountingRecorder(AtomicU64);

impl Recorder for CountingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, _event: &Event) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Streaming-checkpoint overhead: the same traced 4-chain fit with
/// checkpoints off versus every 50 sweeps. The acceptance budget for
/// PR 5 is < 3% wall-clock overhead at the serve cadence (50).
fn bench_checkpoint_overhead(c: &mut Criterion) {
    let sampler = musa_sampler();
    let config = McmcConfig {
        chains: 4,
        burn_in: 200,
        samples: 300,
        thin: 1,
        seed: 4_242,
    };
    let mut group = c.benchmark_group("parallel/checkpoint_overhead");
    group.sample_size(10);
    for (label, every) in [("off", 0usize), ("every50", 50)] {
        let options = RunOptions {
            checkpoint_every: every,
            ..RunOptions::none()
        };
        group.bench_with_input(BenchmarkId::new("checkpoint", label), &sampler, |b, s| {
            b.iter(|| {
                let recorder = CountingRecorder::default();
                let run =
                    run_chains_fault_tolerant_traced(s, &config, &options, &recorder).unwrap();
                black_box(run.output.pooled("residual").iter().sum::<f64>())
            });
        });
    }
    group.finish();
}

/// Publishes ESS/sec telemetry and the profiler's phase-time
/// breakdown next to the raw `threads/N` medians in
/// `BENCH_mcmc.json`: one checkpointed, profiled run per thread
/// count, with ESS per CPU-second taken from the final streaming
/// checkpoints (the same figures the serve progress API reports).
fn bench_ess_throughput(_c: &mut Criterion) {
    let sampler = musa_sampler();
    let config = McmcConfig {
        chains: 4,
        burn_in: 200,
        samples: 300,
        thin: 1,
        seed: 4_242,
    };
    println!("\n== parallel/ess_throughput (derived metrics)");
    for threads in [1usize, 2, 4] {
        let profiler = std::sync::Arc::new(srm_obs::Profiler::new());
        let stats = srm_obs::StatsCollector::new();
        let options = RunOptions {
            threads,
            checkpoint_every: 50,
            profiler: Some(std::sync::Arc::clone(&profiler)),
            ..RunOptions::none()
        };
        run_chains_fault_tolerant_traced(&sampler, &config, &options, &stats).unwrap();
        let latest = stats.latest_checkpoints();
        let refs: Vec<&srm_obs::ChainCheckpoint> = latest.iter().collect();
        let label = format!("threads/{threads}");
        if let Some(diag) = srm_obs::aggregate(&refs)
            .iter()
            .find(|d| d.parameter == "residual")
        {
            srm_bench::record_metric(&label, "ess_per_sec", diag.ess_per_sec);
            println!("  {label:<40} {:>12.1} ESS/cpu-sec", diag.ess_per_sec);
        }
        for phase in profiler.snapshot() {
            srm_bench::record_phase_secs(&label, &phase.path, phase.total_ns as f64 / 1e9);
        }
    }
}

criterion_group!(
    benches,
    bench_fit_by_threads,
    bench_suffstats_cache,
    bench_checkpoint_overhead,
    bench_ess_throughput
);
criterion_main!(benches);
