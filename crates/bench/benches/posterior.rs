//! Benchmarks of the residual-count posterior, including
//! **ablation-b** (DESIGN.md): analytic posterior summaries
//! (Props. 1–2, closed form) versus summaries estimated from sampled
//! draws — the trade the full hierarchical model forces us to make.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, Criterion};
use srm_data::datasets;
use srm_mcmc::PosteriorSummary;
use srm_model::{nb_posterior, poisson_posterior, DetectionModel};
use srm_rand::SplitMix64;
use std::hint::black_box;

fn bench_analytic_construction(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let probs = DetectionModel::PadgettSpurrier
        .probs(&[0.9, 0.08], 96)
        .unwrap();
    c.bench_function("posterior/analytic_poisson", |b| {
        b.iter(|| black_box(poisson_posterior(black_box(200.0), &probs, &data)));
    });
    c.bench_function("posterior/analytic_negbinom", |b| {
        b.iter(|| black_box(nb_posterior(black_box(5.0), black_box(0.2), &probs, &data)));
    });
}

fn bench_ablation_analytic_vs_sampled_summary(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let probs = DetectionModel::Constant.probs(&[0.03], 96).unwrap();
    let post = poisson_posterior(400.0, &probs, &data);

    let mut group = c.benchmark_group("posterior/ablation_summary");
    group.bench_function("analytic_closed_form", |b| {
        b.iter(|| {
            black_box((post.mean(), post.median(), post.mode(), post.sd()));
        });
    });
    // Pre-draw a posterior sample once; benchmark only the summary.
    let mut rng = SplitMix64::seed_from(42);
    let draws: Vec<f64> = (0..10_000).map(|_| post.sample(&mut rng) as f64).collect();
    group.bench_function("sampled_10k_summary", |b| {
        b.iter(|| black_box(PosteriorSummary::from_draws(&draws)));
    });
    group.bench_function("sampled_10k_draw_and_summarise", |b| {
        b.iter(|| {
            let mut rng = SplitMix64::seed_from(43);
            let draws: Vec<f64> = (0..10_000).map(|_| post.sample(&mut rng) as f64).collect();
            black_box(PosteriorSummary::from_draws(&draws))
        });
    });
    group.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let post = poisson_posterior(
        500.0,
        &DetectionModel::Constant.probs(&[0.01], 96).unwrap(),
        &datasets::musa_cc96(),
    );
    c.bench_function("posterior/quantile_scan", |b| {
        b.iter(|| black_box(post.quantile(black_box(0.975))));
    });
}

criterion_group!(
    benches,
    bench_analytic_construction,
    bench_ablation_analytic_vs_sampled_summary,
    bench_quantiles
);
criterion_main!(benches);
