//! Benchmarks of the distribution samplers, including the regime
//! switches (Poisson inversion↔PTRS, Binomial inversion↔split,
//! truncated-gamma rejection↔inverse-CDF).

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_rand::{
    Beta, Binomial, Distribution, Gamma, NegativeBinomial, Poisson, SplitMix64, TruncatedGamma,
    Xoshiro256StarStar,
};
use std::hint::black_box;

fn bench_core_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::seed_from(1);
        b.iter(|| black_box(srm_rand::Rng::next_u64(&mut rng)));
    });
    group.bench_function("xoshiro256starstar", |b| {
        let mut rng = Xoshiro256StarStar::seed_from(1);
        b.iter(|| black_box(srm_rand::Rng::next_u64(&mut rng)));
    });
    group.finish();
}

fn bench_poisson_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/poisson");
    for mean in [0.5f64, 5.0, 9.9, 10.1, 100.0, 5_000.0] {
        let dist = Poisson::new(mean).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(mean), &dist, |b, d| {
            let mut rng = SplitMix64::seed_from(2);
            b.iter(|| black_box(d.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_binomial_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/binomial");
    for n in [16u64, 64, 65, 1_000, 100_000] {
        let dist = Binomial::new(n, 0.3).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dist, |b, d| {
            let mut rng = SplitMix64::seed_from(3);
            b.iter(|| black_box(d.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_gamma_beta_nb(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/continuous");
    let gamma_small = Gamma::new(0.3, 1.0).unwrap();
    let gamma_large = Gamma::new(137.0, 1.0).unwrap();
    let beta = Beta::new(3.0, 97.0).unwrap();
    let nb = NegativeBinomial::new(12.0, 0.4).unwrap();
    group.bench_function("gamma_shape_0.3", |b| {
        let mut rng = SplitMix64::seed_from(4);
        b.iter(|| black_box(gamma_small.sample(&mut rng)));
    });
    group.bench_function("gamma_shape_137", |b| {
        let mut rng = SplitMix64::seed_from(5);
        b.iter(|| black_box(gamma_large.sample(&mut rng)));
    });
    group.bench_function("beta_3_97", |b| {
        let mut rng = SplitMix64::seed_from(6);
        b.iter(|| black_box(beta.sample(&mut rng)));
    });
    group.bench_function("negbinom_12_0.4", |b| {
        let mut rng = SplitMix64::seed_from(7);
        b.iter(|| black_box(nb.sample(&mut rng)));
    });
    group.finish();
}

fn bench_truncated_gamma_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/truncated_gamma");
    // High kept mass → rejection path.
    let rejection = TruncatedGamma::new(137.0, 1.0, 400.0).unwrap();
    // Tiny kept mass → inverse-CDF path.
    let inverse = TruncatedGamma::new(137.0, 1.0, 90.0).unwrap();
    group.bench_function("rejection_path", |b| {
        let mut rng = SplitMix64::seed_from(8);
        b.iter(|| black_box(rejection.sample(&mut rng)));
    });
    group.bench_function("inverse_cdf_path", |b| {
        let mut rng = SplitMix64::seed_from(9);
        b.iter(|| black_box(inverse.sample(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_core_generators,
    bench_poisson_regimes,
    bench_binomial_regimes,
    bench_gamma_beta_nb,
    bench_truncated_gamma_paths
);
criterion_main!(benches);
