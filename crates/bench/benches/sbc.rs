//! Benchmarks of the simulation-based calibration battery: one
//! replication end-to-end (draw → fit → rank) and a small multi-rep
//! cell, so `srm bench diff` can flag regressions in the SBC path
//! alongside the parallel-runner numbers.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;
use srm_obs::NOOP;
use srm_sbc::{draw_rep, rep_stream, run_sbc, GridSpec, SbcConfig};
use std::hint::black_box;

fn bench_grid() -> GridSpec {
    GridSpec {
        days: 20,
        priors: vec![PriorSpec::Poisson { lambda_max: 60.0 }],
        models: vec![DetectionModel::Constant],
        lambda_max: 60.0,
        alpha_max: 8.0,
        bins: 4,
        ..GridSpec::default()
    }
}

fn bench_config(reps: usize, threads: usize) -> SbcConfig {
    SbcConfig {
        grid: bench_grid(),
        reps,
        mcmc: McmcConfig {
            chains: 2,
            burn_in: 100,
            samples: 150,
            thin: 1,
            seed: 909,
        },
        threads,
        inject_bias: 0.0,
    }
}

/// The prior-predictive draw alone — the generative overhead every
/// replication pays before its fit.
fn bench_draw(c: &mut Criterion) {
    let grid = bench_grid();
    let cells = grid.cells();
    let mut group = c.benchmark_group("sbc/draw");
    // Labels carry an `sbc_` prefix: the harness keys results by the
    // bench label alone (group names are display-only), and these
    // merge into the same report as the parallel-runner keys.
    group.bench_function("sbc_draw/rep", |b| {
        b.iter(|| {
            let mut rng = rep_stream(909, &cells[0], 1, 0);
            black_box(draw_rep(&cells[0], &grid, &mut rng))
        });
    });
    group.finish();
}

/// One full replication: draw, fit, rank — the unit the battery
/// scales by `cells × reps`.
fn bench_single_rep(c: &mut Criterion) {
    let config = bench_config(1, 1);
    let mut group = c.benchmark_group("sbc/rep");
    group.sample_size(10);
    group.bench_function("sbc_rep/end_to_end", |b| {
        b.iter(|| black_box(run_sbc(&config, &NOOP).unwrap()));
    });
    group.finish();
}

/// An 8-rep cell at 1 vs all worker threads: the pool's scaling on
/// the replication axis.
fn bench_cell_by_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbc/cell_8_reps");
    group.sample_size(10);
    for threads in [1usize, 0] {
        let config = bench_config(8, threads);
        let label = if threads == 0 { "auto" } else { "1" };
        group.bench_with_input(
            BenchmarkId::new("sbc_cell/threads", label),
            &config,
            |b, cfg| {
                b.iter(|| black_box(run_sbc(cfg, &NOOP).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_draw, bench_single_rep, bench_cell_by_threads);
criterion_main!(benches);
