//! Benchmarks of the serve tier's durable-store machinery: the
//! sharded job store under concurrent status polls (the 10k-slow-
//! pollers scenario that motivated sharding, scaled down to bench
//! size) and the WAL append path under both sync policies.
//!
//! The acceptance bar for sharding is that `store_poll/shards8`
//! clearly beats `store_poll/shards1` — readers on different jobs
//! should not serialise on one mutex while a writer churns terminal
//! transitions through the same map.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_serve::job::{JobRecord, JobStatus, JobStore};
use srm_serve::JobKind;
use srm_store::{ReplayReport, SyncPolicy, WalWriter};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const JOBS: usize = 256;
const POLL_THREADS: usize = 4;
const POLLS_PER_THREAD: usize = 2_000;

fn populated_store(shards: usize) -> JobStore {
    let store = JobStore::with_limit_and_shards(4 * JOBS, shards);
    for _ in 0..JOBS {
        let id = store.allocate_id();
        store.insert(JobRecord::new(
            id,
            JobKind::Fit,
            "bench-key".into(),
            JobStatus::Queued,
        ));
    }
    store
}

/// Concurrent status polls against one hot writer: each reader
/// hammers `get` across the id range while the writer cycles jobs
/// between queued and running. With one shard every poll serialises
/// on the writer's mutex; with eight they mostly don't. Ids are
/// pre-formatted so the measurement is lock traffic, not allocation.
fn poll_round(store: &JobStore, ids: &[String]) -> u64 {
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for reader in 0..POLL_THREADS {
            let served = &served;
            scope.spawn(move || {
                let mut found = 0u64;
                for i in 0..POLLS_PER_THREAD {
                    let id = &ids[(reader * 31 + i * 7) % ids.len()];
                    if store.get(id).is_some() {
                        found += 1;
                    }
                }
                served.fetch_add(found, Ordering::Relaxed);
            });
        }
        scope.spawn(|| {
            for i in 0..POLLS_PER_THREAD {
                store.with(&ids[i % ids.len()], |record| {
                    record.status = if record.status == JobStatus::Queued {
                        JobStatus::Running
                    } else {
                        JobStatus::Queued
                    };
                });
            }
        });
    });
    served.load(Ordering::Relaxed)
}

fn bench_store_poll(c: &mut Criterion) {
    let ids: Vec<String> = (1..=JOBS).map(|n| format!("job-{n}")).collect();
    let mut group = c.benchmark_group("serve/store_poll");
    group.sample_size(10);
    for shards in [1usize, 8] {
        let store = populated_store(shards);
        group.bench_with_input(
            BenchmarkId::new("store_poll", format!("shards{shards}")),
            &store,
            |b, s| {
                b.iter(|| black_box(poll_round(s, &ids)));
            },
        );
    }
    group.finish();
}

/// Raw WAL append throughput for a typical terminal-op record, per
/// sync policy. `off` is the default serving configuration (records
/// survive SIGKILL); `always` pays an fdatasync per record and is the
/// power-loss-safe ceiling.
fn bench_wal_append(c: &mut Criterion) {
    let payload = br#"{"op":"done","id":"job-42","kind":"fit","key":"a1b2c3d4e5f6","cached":false,"wall_ms":123.456}"#;
    let mut group = c.benchmark_group("serve/wal_append");
    group.sample_size(10);
    for (label, policy) in [("off", SyncPolicy::Never), ("always", SyncPolicy::Always)] {
        let path =
            std::env::temp_dir().join(format!("srm_bench_wal_{label}_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = WalWriter::open(&path, policy, &ReplayReport::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("wal_append", label), &(), |b, ()| {
            b.iter(|| {
                wal.append(black_box(payload)).unwrap();
                wal.bytes()
            });
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_store_poll, bench_wal_append);
criterion_main!(benches);
