//! Benchmarks of WAIC accumulation (Eqs. (23)–(25)): the per-draw
//! streaming update and the finalisation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench setup

use srm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_data::datasets;
use srm_model::DetectionModel;
use srm_select::waic::WaicAccumulator;
use std::hint::black_box;

fn bench_add_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("waic/add_draw");
    for day in [48usize, 96, 146] {
        let data = if day <= 96 {
            datasets::musa_cc96().truncated(day).unwrap()
        } else {
            datasets::musa_cc96().extended_with_zeros(day - 96)
        };
        let probs = DetectionModel::Constant.probs(&[0.05], day).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(day), &day, |b, _| {
            let mut acc = WaicAccumulator::new(&data);
            b.iter(|| {
                acc.add_draw(black_box(400), &probs);
            });
        });
    }
    group.finish();
}

fn bench_finish(c: &mut Criterion) {
    let data = datasets::musa_cc96();
    let probs = DetectionModel::Constant.probs(&[0.05], 96).unwrap();
    let mut acc = WaicAccumulator::new(&data);
    for n in 0..10_000u64 {
        acc.add_draw(300 + n % 200, &probs);
    }
    c.bench_function("waic/finish_after_10k_draws", |b| {
        b.iter(|| black_box(acc.finish()));
    });
}

criterion_group!(benches, bench_add_draw, bench_finish);
criterion_main!(benches);
