//! A dependency-free stand-in for the `criterion` benchmark API.
//!
//! The container building this workspace has no access to crates.io,
//! so the bench targets link against this shim instead of criterion
//! proper. It reproduces the subset of the API the `benches/` files
//! use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — with a plain
//! wall-clock measurement loop: per benchmark it warms up, sizes an
//! inner batch so one sample costs ≳1 ms, takes `sample_size` samples
//! and prints the median/min/max time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), 10, &mut routine);
        self
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, &mut routine);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.label, self.sample_size, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark routines; `iter` times the hot closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the batch size chosen by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(iters: u64, routine: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, routine: &mut F) {
    // Warm up and size the batch so one sample costs at least ~1 ms.
    let mut iters = 1u64;
    loop {
        let d = time_batch(iters, routine);
        if d >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_batch(iters, routine).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "  {label:<40} {:>12}/iter  [{} .. {}]  ({samples} samples × {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects benchmark functions into a runner, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the given groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("model0").label, "model0");
    }

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
