//! A dependency-free stand-in for the `criterion` benchmark API.
//!
//! The container building this workspace has no access to crates.io,
//! so the bench targets link against this shim instead of criterion
//! proper. It reproduces the subset of the API the `benches/` files
//! use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — with a plain
//! wall-clock measurement loop: per benchmark it warms up, sizes an
//! inner batch so one sample costs ≳1 ms, takes `sample_size` samples
//! and prints the median/min/max time per iteration.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use srm_obs::json::{parse, Value};

/// One benchmark's measurement, as recorded in `BENCH_mcmc.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark label (`group` context is part of the label).
    pub label: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Timed samples taken.
    pub samples: usize,
    /// Inner iterations per sample.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Extra numeric figures attached to a benchmark entry at write time
/// (e.g. `ess_per_sec`), keyed `(label, key, value)`.
static EXTRA_METRICS: Mutex<Vec<(String, String, f64)>> = Mutex::new(Vec::new());

/// Per-benchmark phase-time breakdown `(label, phase, seconds)`,
/// emitted as a nested `phases` object on the entry.
static PHASE_METRICS: Mutex<Vec<(String, String, f64)>> = Mutex::new(Vec::new());

fn record_result(result: BenchResult) {
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(result);
}

/// Attaches an extra numeric metric to the benchmark entry with the
/// given label — the hook the bench targets use to publish derived
/// figures like `ess_per_sec` next to the raw timings. Recording the
/// same `(label, key)` twice keeps the later value.
pub fn record_metric(label: &str, key: &str, value: f64) {
    let mut extras = EXTRA_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match extras.iter_mut().find(|(l, k, _)| l == label && k == key) {
        Some((_, _, slot)) => *slot = value,
        None => extras.push((label.to_owned(), key.to_owned(), value)),
    }
}

/// Attaches one phase's cumulative wall time (seconds) to the
/// benchmark entry with the given label; all phases for a label are
/// written as a nested `phases` object.
pub fn record_phase_secs(label: &str, phase: &str, secs: f64) {
    let mut phases = PHASE_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match phases.iter_mut().find(|(l, p, _)| l == label && p == phase) {
        Some((_, _, slot)) => *slot = secs,
        None => phases.push((label.to_owned(), phase.to_owned(), secs)),
    }
}

/// All results recorded by this process so far, in execution order.
#[must_use]
pub fn recorded_results() -> Vec<BenchResult> {
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Default output path for [`write_results`]; override with the
/// `SRM_BENCH_OUT` environment variable.
pub const BENCH_OUT_DEFAULT: &str = "BENCH_mcmc.json";

/// The `env` block stamped into every bench report: where and when
/// the numbers were measured, so a regression diff can tell a code
/// change from a machine change.
fn env_value() -> Value {
    let command_line = |program: &str, args: &[&str]| -> Option<String> {
        std::process::Command::new(program)
            .args(args)
            .output()
            .ok()
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_owned())
            .filter(|s| !s.is_empty())
    };
    let unknown = || "unknown".to_owned();
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as f64)
        .unwrap_or(0.0);
    Value::obj(vec![
        (
            "git_rev",
            Value::Str(command_line("git", &["rev-parse", "HEAD"]).unwrap_or_else(unknown)),
        ),
        (
            "rustc",
            Value::Str(command_line("rustc", &["--version"]).unwrap_or_else(unknown)),
        ),
        (
            "cpus",
            Value::Num(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1) as f64,
            ),
        ),
        ("timestamp_epoch_secs", Value::Num(epoch_secs)),
    ])
}

/// Writes this process's measurements to the bench JSON document,
/// merging with any existing file so the per-subsystem bench binaries
/// accumulate into one report. Returns the path written.
///
/// The document shape is
/// `{"env": {"git_rev": …, "rustc": …, "cpus": …,
/// "timestamp_epoch_secs": …},
/// "benchmarks": {"<label>": {"median_ns": …, "min_ns": …,
/// "max_ns": …, "samples": …, "iters": …, <extra metrics>,
/// "phases": {…}}}}`; re-running a benchmark replaces its entry, and
/// the `env` block always reflects the latest writer. The write is
/// atomic (temp file + rename), so a crash mid-write never truncates
/// an existing report.
///
/// # Errors
///
/// Returns [`std::io::Error`] when the file cannot be written.
pub fn write_results() -> std::io::Result<String> {
    let path = std::env::var("SRM_BENCH_OUT").unwrap_or_else(|_| BENCH_OUT_DEFAULT.to_owned());
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(&path) {
        Ok(text) => parse(&text)
            .ok()
            .and_then(|doc| {
                doc.get("benchmarks")
                    .and_then(|b| b.as_obj().map(<[(String, Value)]>::to_vec))
            })
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    let extras = EXTRA_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let phases = PHASE_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    for r in recorded_results() {
        let mut pairs = vec![
            ("median_ns".to_owned(), Value::Num(r.median_ns)),
            ("min_ns".to_owned(), Value::Num(r.min_ns)),
            ("max_ns".to_owned(), Value::Num(r.max_ns)),
            ("samples".to_owned(), Value::Num(r.samples as f64)),
            ("iters".to_owned(), Value::Num(r.iters as f64)),
        ];
        for (_, key, value) in extras.iter().filter(|(label, _, _)| *label == r.label) {
            pairs.push((key.clone(), Value::Num(*value)));
        }
        let mine: Vec<(String, Value)> = phases
            .iter()
            .filter(|(label, _, _)| *label == r.label)
            .map(|(_, phase, secs)| (phase.clone(), Value::Num(*secs)))
            .collect();
        if !mine.is_empty() {
            pairs.push(("phases".to_owned(), Value::Obj(mine)));
        }
        let entry = Value::Obj(pairs);
        match entries.iter_mut().find(|(label, _)| *label == r.label) {
            Some((_, slot)) => *slot = entry,
            None => entries.push((r.label.clone(), entry)),
        }
    }
    let doc = Value::obj(vec![
        ("env", env_value()),
        ("benchmarks", Value::Obj(entries)),
    ]);
    // Atomic replace: a crash between the write and the rename leaves
    // the previous report intact.
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, doc.to_json_pretty())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Measurement entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), 10, &mut routine);
        self
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, &mut routine);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.label, self.sample_size, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark routines; `iter` times the hot closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the batch size chosen by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(iters: u64, routine: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, routine: &mut F) {
    // Warm up and size the batch so one sample costs at least ~1 ms.
    let mut iters = 1u64;
    loop {
        let d = time_batch(iters, routine);
        if d >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_batch(iters, routine).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "  {label:<40} {:>12}/iter  [{} .. {}]  ({samples} samples × {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
    record_result(BenchResult {
        label: label.to_owned(),
        median_ns: median,
        min_ns: min,
        max_ns: max,
        samples,
        iters,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects benchmark functions into a runner, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the given groups, like
/// `criterion::criterion_main!`, then merges this binary's medians
/// into `BENCH_mcmc.json` (path overridable via `SRM_BENCH_OUT`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            match $crate::harness::write_results() {
                Ok(path) => println!("\nbench medians written to {path}"),
                Err(e) => eprintln!("\ncould not write bench results: {e}"),
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("model0").label, "model0");
    }

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmarks_land_in_the_registry_and_merge_into_json() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("registry-self-test");
        group.sample_size(2);
        group.bench_function("fast", |b| b.iter(|| 1 + 1));
        group.finish();
        let results = recorded_results();
        let mine = results
            .iter()
            .find(|r| r.label == "fast")
            .unwrap_or_else(|| unreachable!("benchmark not recorded"));
        assert!(mine.median_ns > 0.0);
        assert!(mine.min_ns <= mine.median_ns && mine.median_ns <= mine.max_ns);
        assert_eq!(mine.samples, 2);

        let path = std::env::temp_dir().join("srm_bench_self_test.json");
        // Seed the file with a stale entry for the same label plus an
        // entry from "another binary"; the write must replace the
        // former and keep the latter.
        std::fs::write(
            &path,
            r#"{"benchmarks": {"fast": {"median_ns": 1e9}, "other/bench": {"median_ns": 2.0}}}"#,
        )
        .unwrap_or_else(|_| unreachable!());
        record_metric("fast", "ess_per_sec", 123.5);
        record_metric("fast", "ess_per_sec", 124.5); // later value wins
        record_phase_secs("fast", "chain/sweep", 0.25);
        std::env::set_var("SRM_BENCH_OUT", &path);
        let written = write_results().unwrap_or_else(|_| unreachable!());
        std::env::remove_var("SRM_BENCH_OUT");
        assert_eq!(written, path.to_string_lossy());
        let text = std::fs::read_to_string(&path).unwrap_or_else(|_| unreachable!());
        let doc = parse(&text).unwrap_or_else(|_| unreachable!());
        let benches = doc.get("benchmarks").unwrap_or_else(|| unreachable!());
        let fast = benches.get("fast").unwrap_or_else(|| unreachable!());
        assert!(fast.get("median_ns").and_then(Value::as_f64) < Some(1e9));
        assert_eq!(fast.get("ess_per_sec").and_then(Value::as_f64), Some(124.5));
        assert_eq!(
            fast.get("phases")
                .and_then(|p| p.get("chain/sweep"))
                .and_then(Value::as_f64),
            Some(0.25)
        );
        assert!(benches.get("other/bench").is_some());
        // The env block names the machine and toolchain.
        let env = doc.get("env").unwrap_or_else(|| unreachable!());
        assert!(env.get("git_rev").and_then(Value::as_str).is_some());
        assert!(env.get("rustc").and_then(Value::as_str).is_some());
        assert!(env.get("cpus").and_then(Value::as_f64) >= Some(1.0));
        assert!(env.get("timestamp_epoch_secs").and_then(Value::as_f64) > Some(0.0));
        // Atomic write leaves no temp file behind.
        assert!(!std::path::Path::new(&format!("{written}.tmp")).exists());
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
