//! Benchmark-only crate: see the `benches/` directory. Each bench
//! target covers one subsystem (likelihood, samplers, Gibbs, WAIC,
//! diagnostics, posterior) plus the two ablations from DESIGN.md.
