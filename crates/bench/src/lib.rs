//! Benchmark-only crate: see the `benches/` directory. Each bench
//! target covers one subsystem (likelihood, samplers, Gibbs, WAIC,
//! diagnostics, posterior) plus the two ablations from DESIGN.md.
//!
//! The targets are measured by [`harness`], a small criterion-API
//! shim, because the build environment has no crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    record_metric, record_phase_secs, Bencher, BenchmarkGroup, BenchmarkId, Criterion,
};
