//! The full 2-priors × 5-models × observation-plan experiment.

use crate::fit::{Fit, FitConfig};
use srm_data::{BugCountData, ObservationPlan, ObservationPoint};
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::{DetectionModel, ZetaBounds};

/// Identifies one cell of the experiment design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitKey {
    /// Which prior family.
    pub prior: PriorSpec,
    /// Which detection model.
    pub model: DetectionModel,
    /// Which observation point.
    pub observation: ObservationPoint,
}

/// Configuration of a full experiment sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The prior specifications to fit (both paper priors by default).
    pub priors: Vec<PriorSpec>,
    /// The detection models to fit (all five by default).
    pub models: Vec<DetectionModel>,
    /// MCMC run lengths per fit.
    pub mcmc: McmcConfig,
    /// Detection-parameter prior limits.
    pub zeta_bounds: ZetaBounds,
}

impl ExperimentConfig {
    /// The paper's design with the given run lengths.
    #[must_use]
    pub fn paper_design(mcmc: McmcConfig) -> Self {
        Self {
            priors: vec![
                PriorSpec::Poisson { lambda_max: 2_000.0 },
                PriorSpec::NegBinomial { alpha_max: 100.0 },
            ],
            models: DetectionModel::ALL.to_vec(),
            mcmc,
            zeta_bounds: ZetaBounds::default(),
        }
    }

    /// A reduced design (both priors, models 0/1/3) for tests and
    /// quick demos.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            priors: vec![
                PriorSpec::Poisson { lambda_max: 2_000.0 },
                PriorSpec::NegBinomial { alpha_max: 100.0 },
            ],
            models: vec![
                DetectionModel::Constant,
                DetectionModel::PadgettSpurrier,
                DetectionModel::Pareto,
            ],
            mcmc: McmcConfig::smoke(seed),
            zeta_bounds: ZetaBounds::default(),
        }
    }
}

/// One completed cell: the key, the data window context, and the fit.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Which design cell this is.
    pub key: FitKey,
    /// True residual bugs at the observation point (dataset total
    /// minus detected — the paper's comparison baseline).
    pub true_residual: u64,
    /// The Bayesian fit.
    pub fit: Fit,
}

/// All fits of an experiment, in (prior, model, observation) order.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    cells: Vec<ExperimentCell>,
}

impl ExperimentResults {
    /// All cells in design order.
    #[must_use]
    pub fn cells(&self) -> &[ExperimentCell] {
        &self.cells
    }

    /// Looks up one cell by prior label, model, and observation day.
    #[must_use]
    pub fn get(
        &self,
        prior_label: &str,
        model: DetectionModel,
        day: usize,
    ) -> Option<&ExperimentCell> {
        self.cells.iter().find(|c| {
            c.key.prior.label() == prior_label
                && c.key.model == model
                && c.key.observation.day() == day
        })
    }

    /// The observation days visited, in order.
    #[must_use]
    pub fn days(&self) -> Vec<usize> {
        let mut days: Vec<usize> = self
            .cells
            .iter()
            .map(|c| c.key.observation.day())
            .collect();
        days.sort_unstable();
        days.dedup();
        days
    }

    /// Fraction of cells whose diagnostics passed.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.iter().filter(|c| c.fit.converged()).count() as f64
            / self.cells.len() as f64
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct Experiment {
    data: BugCountData,
    plan: ObservationPlan,
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates an experiment over `data` with the paper's observation
    /// plan.
    #[must_use]
    pub fn new(data: BugCountData, config: ExperimentConfig) -> Self {
        let plan = ObservationPlan::paper_default(&data);
        Self { data, plan, config }
    }

    /// Overrides the observation plan.
    #[must_use]
    pub fn with_plan(mut self, plan: ObservationPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The dataset under analysis.
    #[must_use]
    pub fn data(&self) -> &BugCountData {
        &self.data
    }

    /// The observation plan.
    #[must_use]
    pub fn plan(&self) -> &ObservationPlan {
        &self.plan
    }

    /// Runs every design cell. Cells are independent; they run on
    /// parallel threads (each fit already seeds its chains from the
    /// experiment seed plus a per-cell offset, so results do not
    /// depend on scheduling).
    ///
    /// # Panics
    ///
    /// Panics if the observation plan is invalid for the data (day 0).
    #[must_use]
    pub fn run(&self) -> ExperimentResults {
        let windows = self
            .plan
            .windows(&self.data)
            .expect("observation plan valid for data");

        // Materialise the work list first so each cell has a stable
        // seed offset.
        struct Job {
            key: FitKey,
            window: BugCountData,
            true_residual: u64,
            seed: u64,
        }
        let mut jobs = Vec::new();
        let mut offset = 0u64;
        for &prior in &self.config.priors {
            for &model in &self.config.models {
                for (point, window) in &windows {
                    jobs.push(Job {
                        key: FitKey {
                            prior,
                            model,
                            observation: *point,
                        },
                        window: window.clone(),
                        true_residual: point.true_residual(&self.data),
                        seed: self.config.mcmc.seed.wrapping_add(offset * 7_919),
                    });
                    offset += 1;
                }
            }
        }

        let mut cells: Vec<Option<ExperimentCell>> = (0..jobs.len()).map(|_| None).collect();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let jobs_ref = &jobs;
        let config = &self.config;
        crossbeam::thread::scope(|scope| {
            // Chunk the slots across a bounded worker pool.
            let chunk = cells.len().div_ceil(threads).max(1);
            for (chunk_idx, slot_chunk) in cells.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let job = &jobs_ref[chunk_idx * chunk + i];
                        let fit_config = FitConfig {
                            mcmc: McmcConfig {
                                seed: job.seed,
                                ..config.mcmc
                            },
                            zeta_bounds: config.zeta_bounds,
                        };
                        let fit =
                            Fit::run(job.key.prior, job.key.model, &job.window, &fit_config);
                        *slot = Some(ExperimentCell {
                            key: job.key,
                            true_residual: job.true_residual,
                            fit,
                        });
                    }
                });
            }
        })
        .expect("experiment worker panicked");

        ExperimentResults {
            cells: cells.into_iter().map(|c| c.expect("cell ran")).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;

    fn tiny_experiment(seed: u64) -> Experiment {
        let mut config = ExperimentConfig::smoke(seed);
        config.models = vec![DetectionModel::Constant];
        config.mcmc = McmcConfig {
            chains: 1,
            burn_in: 100,
            samples: 200,
            thin: 1,
            seed,
        };
        let data = datasets::musa_cc96();
        Experiment::new(data, config)
            .with_plan(ObservationPlan::from_days(&[48, 96, 146]))
    }

    #[test]
    fn runs_full_design_grid() {
        let results = tiny_experiment(61).run();
        // 2 priors × 1 model × 3 observation points.
        assert_eq!(results.cells().len(), 6);
        assert_eq!(results.days(), vec![48, 96, 146]);
        assert!(results
            .get("poisson", DetectionModel::Constant, 48)
            .is_some());
        assert!(results
            .get("negbinom", DetectionModel::Constant, 146)
            .is_some());
        assert!(results
            .get("poisson", DetectionModel::Weibull, 48)
            .is_none());
    }

    #[test]
    fn true_residuals_recorded() {
        let results = tiny_experiment(62).run();
        let c48 = results
            .get("poisson", DetectionModel::Constant, 48)
            .unwrap();
        assert_eq!(c48.true_residual, 94);
        let c96 = results
            .get("poisson", DetectionModel::Constant, 96)
            .unwrap();
        assert_eq!(c96.true_residual, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_experiment(63).run();
        let b = tiny_experiment(63).run();
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            assert_eq!(ca.fit.residual, cb.fit.residual);
        }
    }

    #[test]
    fn posterior_shrinks_with_virtual_testing() {
        let results = tiny_experiment(64).run();
        let mean_at = |day: usize| {
            results
                .get("poisson", DetectionModel::Constant, day)
                .unwrap()
                .fit
                .residual
                .mean
        };
        assert!(
            mean_at(146) < mean_at(96),
            "virtual testing should shrink the posterior: {} vs {}",
            mean_at(96),
            mean_at(146)
        );
    }
}
