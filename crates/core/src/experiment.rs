//! The full 2-priors × 5-models × observation-plan experiment.

use crate::fit::{Fit, FitConfig};
use srm_data::{BugCountData, ObservationPlan, ObservationPoint};
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::{McmcConfig, RunOptions};
use srm_mcmc::{ChainReport, SrmError};
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::{Event, Recorder, NOOP};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Identifies one cell of the experiment design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitKey {
    /// Which prior family.
    pub prior: PriorSpec,
    /// Which detection model.
    pub model: DetectionModel,
    /// Which observation point.
    pub observation: ObservationPoint,
}

/// Configuration of a full experiment sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The prior specifications to fit (both paper priors by default).
    pub priors: Vec<PriorSpec>,
    /// The detection models to fit (all five by default).
    pub models: Vec<DetectionModel>,
    /// MCMC run lengths per fit.
    pub mcmc: McmcConfig,
    /// Detection-parameter prior limits.
    pub zeta_bounds: ZetaBounds,
}

impl ExperimentConfig {
    /// The paper's design with the given run lengths.
    #[must_use]
    pub fn paper_design(mcmc: McmcConfig) -> Self {
        Self {
            priors: vec![
                PriorSpec::Poisson {
                    lambda_max: 2_000.0,
                },
                PriorSpec::NegBinomial { alpha_max: 100.0 },
            ],
            models: DetectionModel::ALL.to_vec(),
            mcmc,
            zeta_bounds: ZetaBounds::default(),
        }
    }

    /// A reduced design (both priors, models 0/1/3) for tests and
    /// quick demos.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            priors: vec![
                PriorSpec::Poisson {
                    lambda_max: 2_000.0,
                },
                PriorSpec::NegBinomial { alpha_max: 100.0 },
            ],
            models: vec![
                DetectionModel::Constant,
                DetectionModel::PadgettSpurrier,
                DetectionModel::Pareto,
            ],
            mcmc: McmcConfig::smoke(seed),
            zeta_bounds: ZetaBounds::default(),
        }
    }
}

/// One completed cell: the key, the data window context, and the fit.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Which design cell this is.
    pub key: FitKey,
    /// True residual bugs at the observation point (dataset total
    /// minus detected — the paper's comparison baseline).
    pub true_residual: u64,
    /// The Bayesian fit.
    pub fit: Fit,
    /// Per-chain recovery reports from the fault-tolerant runner
    /// (empty reports never occur: one entry per configured chain).
    pub chain_reports: Vec<ChainReport>,
}

impl ExperimentCell {
    /// Whether this cell lost at least one chain.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.chain_reports.iter().any(|r| !r.recovered)
    }
}

/// A design cell that produced no fit at all: every chain was lost,
/// the configuration was rejected, or the fit assembly panicked.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Which design cell failed.
    pub key: FitKey,
    /// The typed fault that took the cell down.
    pub error: SrmError,
}

/// All fits of an experiment, in (prior, model, observation) order.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    cells: Vec<ExperimentCell>,
    failures: Vec<CellFailure>,
}

impl ExperimentResults {
    /// All cells in design order.
    #[must_use]
    pub fn cells(&self) -> &[ExperimentCell] {
        &self.cells
    }

    /// Design cells that produced no fit, in design order.
    #[must_use]
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Whether any cell failed outright or lost a chain.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty() || self.cells.iter().any(ExperimentCell::is_degraded)
    }

    /// Aggregated fault counters across every cell, keyed by the
    /// kebab-case fault kind (see [`SrmError::kind`]). Counts both
    /// faults that retries recovered from and faults that lost a
    /// chain or a whole cell.
    #[must_use]
    pub fn fault_counters(&self) -> Vec<(String, usize)> {
        let mut counts = std::collections::BTreeMap::<String, usize>::new();
        for cell in &self.cells {
            for report in &cell.chain_reports {
                if let Some(fault) = &report.fault {
                    *counts.entry(fault.kind().to_owned()).or_insert(0) += 1;
                }
            }
        }
        for failure in &self.failures {
            *counts.entry(failure.error.kind().to_owned()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Total sweep retries across all cells and chains.
    #[must_use]
    pub fn total_retries(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.chain_reports)
            .map(|r| r.retries)
            .sum()
    }

    /// Looks up one cell by prior label, model, and observation day.
    #[must_use]
    pub fn get(
        &self,
        prior_label: &str,
        model: DetectionModel,
        day: usize,
    ) -> Option<&ExperimentCell> {
        self.cells.iter().find(|c| {
            c.key.prior.label() == prior_label
                && c.key.model == model
                && c.key.observation.day() == day
        })
    }

    /// The observation days visited, in order.
    #[must_use]
    pub fn days(&self) -> Vec<usize> {
        let mut days: Vec<usize> = self.cells.iter().map(|c| c.key.observation.day()).collect();
        days.sort_unstable();
        days.dedup();
        days
    }

    /// Fraction of cells whose diagnostics passed.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.iter().filter(|c| c.fit.converged()).count() as f64 / self.cells.len() as f64
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct Experiment {
    data: BugCountData,
    plan: ObservationPlan,
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates an experiment over `data` with the paper's observation
    /// plan.
    #[must_use]
    pub fn new(data: BugCountData, config: ExperimentConfig) -> Self {
        let plan = ObservationPlan::paper_default(&data);
        Self { data, plan, config }
    }

    /// Overrides the observation plan.
    #[must_use]
    pub fn with_plan(mut self, plan: ObservationPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The dataset under analysis.
    #[must_use]
    pub fn data(&self) -> &BugCountData {
        &self.data
    }

    /// The observation plan.
    #[must_use]
    pub fn plan(&self) -> &ObservationPlan {
        &self.plan
    }

    /// Runs every design cell, panicking on the first failure (the
    /// strict historical behaviour). Delegates to [`Experiment::try_run`]
    /// with no retries and no fault injection, which is bit-identical
    /// to the original direct path on fault-free runs.
    ///
    /// # Panics
    ///
    /// Panics if the observation plan is invalid for the data (day 0)
    /// or any cell fails.
    #[must_use]
    pub fn run(&self) -> ExperimentResults {
        let results = match self.try_run(&RunOptions::none()) {
            Ok(results) => results,
            Err(e) => panic!("experiment configuration rejected: {e}"),
        };
        if let Some(failure) = results.failures.first() {
            panic!(
                "cell ({}, {:?}, day {}) failed: {}",
                failure.key.prior.label(),
                failure.key.model,
                failure.key.observation.day(),
                failure.error
            );
        }
        results
    }

    /// Runs every design cell under the fault-tolerant pipeline.
    /// Cells are independent; they run on parallel threads (each fit
    /// already seeds its chains from the experiment seed plus a
    /// per-cell offset, so results do not depend on scheduling). A
    /// cell whose every chain is lost — or that panics outside the
    /// chain loop — becomes a [`CellFailure`] instead of aborting the
    /// sweep, so the experiment degrades to partial output.
    ///
    /// Note: `options.fault_plan` addresses chains *within each
    /// fit*, so a plan built for `config.mcmc.chains` chains applies
    /// to every cell identically.
    ///
    /// # Errors
    ///
    /// Returns [`SrmError::InvalidConfig`] when the observation plan
    /// is invalid for the data (day 0).
    pub fn try_run(&self, options: &RunOptions) -> Result<ExperimentResults, SrmError> {
        self.try_run_traced(options, &NOOP)
    }

    /// [`Experiment::try_run`] with instrumentation: each design cell
    /// emits [`Event::CellStart`] / [`Event::CellEnd`] (or
    /// [`Event::CellFailure`] with the terminal fault kind), and the
    /// recorder is threaded into every cell's
    /// [`Fit::try_run_traced`]. Cells run on parallel worker threads,
    /// so sinks see their events interleaved; every event carries its
    /// own cell/chain coordinates. With a disabled recorder the
    /// results are bit-identical to [`Experiment::try_run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Experiment::try_run`].
    pub fn try_run_traced(
        &self,
        options: &RunOptions,
        recorder: &dyn Recorder,
    ) -> Result<ExperimentResults, SrmError> {
        let windows = self
            .plan
            .windows(&self.data)
            .map_err(|e| SrmError::InvalidConfig {
                detail: format!("observation plan invalid for data: {e:?}"),
            })?;

        // Materialise the work list first so each cell has a stable
        // seed offset.
        struct Job {
            key: FitKey,
            window: BugCountData,
            true_residual: u64,
            seed: u64,
        }
        let mut jobs = Vec::new();
        let mut offset = 0u64;
        for &prior in &self.config.priors {
            for &model in &self.config.models {
                for (point, window) in &windows {
                    jobs.push(Job {
                        key: FitKey {
                            prior,
                            model,
                            observation: *point,
                        },
                        window: window.clone(),
                        true_residual: point.true_residual(&self.data),
                        seed: self.config.mcmc.seed.wrapping_add(offset * 7_919),
                    });
                    offset += 1;
                }
            }
        }

        let mut slots: Vec<Option<Result<ExperimentCell, CellFailure>>> =
            (0..jobs.len()).map(|_| None).collect();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let jobs_ref = &jobs;
        let config = &self.config;
        std::thread::scope(|scope| {
            // Chunk the slots across a bounded worker pool.
            let chunk = slots.len().div_ceil(threads).max(1);
            for (chunk_idx, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let job = &jobs_ref[chunk_idx * chunk + i];
                        let fit_config = FitConfig {
                            mcmc: McmcConfig {
                                seed: job.seed,
                                ..config.mcmc
                            },
                            zeta_bounds: config.zeta_bounds,
                        };
                        let on = recorder.enabled();
                        let cell_coords = || {
                            (
                                job.key.prior.label().to_owned(),
                                format!("{:?}", job.key.model),
                                job.key.observation.day(),
                            )
                        };
                        if on {
                            let (prior, model, day) = cell_coords();
                            recorder.record(&Event::CellStart { prior, model, day });
                        }
                        let started = std::time::Instant::now();
                        // The chain loop is already panic-contained;
                        // this guard catches panics from summary /
                        // diagnostics assembly so one bad cell cannot
                        // take down the sweep.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            Fit::try_run_traced(
                                job.key.prior,
                                job.key.model,
                                &job.window,
                                &fit_config,
                                options,
                                recorder,
                            )
                        }));
                        let outcome = match outcome {
                            Ok(Ok(tolerant)) => Ok(ExperimentCell {
                                key: job.key,
                                true_residual: job.true_residual,
                                fit: tolerant.fit,
                                chain_reports: tolerant.chain_reports,
                            }),
                            Ok(Err(error)) => Err(CellFailure {
                                key: job.key,
                                error,
                            }),
                            Err(payload) => Err(CellFailure {
                                key: job.key,
                                error: SrmError::DegeneratePosterior {
                                    detail: format!(
                                        "fit assembly panicked: {}",
                                        srm_mcmc::fault::panic_message(payload.as_ref())
                                    ),
                                    sweep: 0,
                                },
                            }),
                        };
                        if on {
                            let (prior, model, day) = cell_coords();
                            match &outcome {
                                Ok(_) => recorder.record(&Event::CellEnd {
                                    prior,
                                    model,
                                    day,
                                    wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
                                }),
                                Err(failure) => recorder.record(&Event::CellFailure {
                                    prior,
                                    model,
                                    day,
                                    kind: failure.error.kind().to_owned(),
                                }),
                            }
                        }
                        *slot = Some(outcome);
                    }
                });
            }
        });

        let mut cells = Vec::new();
        let mut failures = Vec::new();
        for slot in slots.into_iter().flatten() {
            match slot {
                Ok(cell) => cells.push(cell),
                Err(failure) => failures.push(failure),
            }
        }
        Ok(ExperimentResults { cells, failures })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;

    fn tiny_experiment(seed: u64) -> Experiment {
        let mut config = ExperimentConfig::smoke(seed);
        config.models = vec![DetectionModel::Constant];
        config.mcmc = McmcConfig {
            chains: 1,
            burn_in: 100,
            samples: 200,
            thin: 1,
            seed,
        };
        let data = datasets::musa_cc96();
        Experiment::new(data, config).with_plan(ObservationPlan::from_days(&[48, 96, 146]))
    }

    #[test]
    fn runs_full_design_grid() {
        let results = tiny_experiment(61).run();
        // 2 priors × 1 model × 3 observation points.
        assert_eq!(results.cells().len(), 6);
        assert_eq!(results.days(), vec![48, 96, 146]);
        assert!(results
            .get("poisson", DetectionModel::Constant, 48)
            .is_some());
        assert!(results
            .get("negbinom", DetectionModel::Constant, 146)
            .is_some());
        assert!(results
            .get("poisson", DetectionModel::Weibull, 48)
            .is_none());
    }

    #[test]
    fn true_residuals_recorded() {
        let results = tiny_experiment(62).run();
        let c48 = results
            .get("poisson", DetectionModel::Constant, 48)
            .unwrap();
        assert_eq!(c48.true_residual, 94);
        let c96 = results
            .get("poisson", DetectionModel::Constant, 96)
            .unwrap();
        assert_eq!(c96.true_residual, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_experiment(63).run();
        let b = tiny_experiment(63).run();
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            assert_eq!(ca.fit.residual, cb.fit.residual);
        }
    }

    #[test]
    fn injected_panic_degrades_not_aborts() {
        let mut config = ExperimentConfig::smoke(65);
        config.models = vec![DetectionModel::Constant];
        config.mcmc = McmcConfig {
            chains: 2,
            burn_in: 100,
            samples: 200,
            thin: 1,
            seed: 65,
        };
        let exp = Experiment::new(datasets::musa_cc96(), config)
            .with_plan(ObservationPlan::from_days(&[48]));
        let options = RunOptions {
            retry: srm_mcmc::RetryPolicy::none(),
            fault_plan: srm_mcmc::FaultPlan::new(vec![srm_mcmc::FaultPoint {
                chain: 1,
                sweep: 3,
                kind: srm_mcmc::FaultKind::Panic,
            }]),
            threads: 0,
            checkpoint_every: 0,
            profiler: None,
        };
        let results = exp.try_run(&options).unwrap();
        // 2 priors × 1 model × 1 day, each losing chain 1 of 2.
        assert!(results.failures().is_empty());
        assert_eq!(results.cells().len(), 2);
        assert!(results.is_degraded());
        assert!(results.cells().iter().all(ExperimentCell::is_degraded));
        assert_eq!(
            results.fault_counters(),
            vec![("chain-panicked".to_owned(), 2)]
        );
    }

    #[test]
    fn all_chains_lost_becomes_cell_failure() {
        let exp = tiny_experiment(66); // single-chain fits
        let options = RunOptions {
            retry: srm_mcmc::RetryPolicy::none(),
            fault_plan: srm_mcmc::FaultPlan::new(vec![srm_mcmc::FaultPoint {
                chain: 0,
                sweep: 2,
                kind: srm_mcmc::FaultKind::Panic,
            }]),
            threads: 0,
            checkpoint_every: 0,
            profiler: None,
        };
        let results = exp.try_run(&options).unwrap();
        // The only chain of every cell panics: no cells, all failures,
        // but the sweep itself completes.
        assert!(results.cells().is_empty());
        assert_eq!(results.failures().len(), 6);
        assert!(results.is_degraded());
        for failure in results.failures() {
            assert_eq!(failure.error.kind(), "chain-panicked");
        }
    }

    #[test]
    fn fault_free_try_run_matches_run() {
        let exp = tiny_experiment(67);
        let strict = exp.run();
        let tolerant = exp.try_run(&RunOptions::default()).unwrap();
        assert!(!tolerant.is_degraded());
        assert_eq!(tolerant.total_retries(), 0);
        for (a, b) in strict.cells().iter().zip(tolerant.cells()) {
            assert_eq!(a.fit.residual, b.fit.residual);
            assert_eq!(a.fit.waic.total().to_bits(), b.fit.waic.total().to_bits());
        }
    }

    #[test]
    fn posterior_shrinks_with_virtual_testing() {
        let results = tiny_experiment(64).run();
        let mean_at = |day: usize| {
            results
                .get("poisson", DetectionModel::Constant, day)
                .unwrap()
                .fit
                .residual
                .mean
        };
        assert!(
            mean_at(146) < mean_at(96),
            "virtual testing should shrink the posterior: {} vs {}",
            mean_at(96),
            mean_at(146)
        );
    }
}
