//! One Bayesian fit: sampler run + summaries + diagnostics + WAIC.

use srm_data::BugCountData;
use srm_mcmc::diagnostics::{report, DiagnosticsReport};
use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
use srm_mcmc::runner::{run_chains_fault_tolerant_traced, McmcConfig, McmcOutput, RunOptions};
use srm_mcmc::{ChainReport, PosteriorSummary, SrmError};
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::{Event, Recorder, Span, NOOP};
use srm_select::waic::{waic_and_chains, waic_from_output_traced, Waic};

/// Configuration of a single fit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitConfig {
    /// MCMC run lengths and seed.
    pub mcmc: McmcConfig,
    /// Uniform-prior limits on the detection parameters.
    pub zeta_bounds: ZetaBounds,
}

/// A fit produced by the fault-tolerant pipeline: the fit itself plus
/// the per-chain recovery reports, so callers can tell a pristine run
/// from a degraded one.
#[derive(Debug, Clone)]
pub struct FaultTolerantFit {
    /// The assembled fit (over surviving chains only).
    pub fit: Fit,
    /// One report per configured chain, in chain order.
    pub chain_reports: Vec<ChainReport>,
}

impl FaultTolerantFit {
    /// Whether at least one chain was lost.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.chain_reports.iter().any(|r| !r.recovered)
    }

    /// Total retries across all chains (recovered or not).
    #[must_use]
    pub fn total_retries(&self) -> usize {
        self.chain_reports.iter().map(|r| r.retries).sum()
    }
}

/// The result of one Bayesian fit.
#[derive(Debug, Clone)]
pub struct Fit {
    /// The prior that was fitted.
    pub prior: PriorSpec,
    /// The detection model that was fitted.
    pub model: DetectionModel,
    /// Posterior summary of the residual bug count (the quantity the
    /// paper's Tables II–V report).
    pub residual: PosteriorSummary,
    /// The pooled residual draws (box plots, custom quantiles).
    pub residual_draws: Vec<f64>,
    /// WAIC of the fit.
    pub waic: Waic,
    /// Convergence diagnostics per monitored parameter.
    pub diagnostics: Vec<(String, DiagnosticsReport)>,
    /// The full chains, for downstream analyses.
    pub output: McmcOutput,
}

impl Fit {
    /// Runs the Gibbs sampler and assembles the fit.
    #[must_use]
    pub fn run(
        prior: PriorSpec,
        model: DetectionModel,
        data: &BugCountData,
        config: &FitConfig,
    ) -> Self {
        let sampler = GibbsSampler::new(prior, model, config.zeta_bounds, data);
        let (waic, output) = waic_and_chains(&sampler, &config.mcmc);

        let residual_draws = output.pooled("residual");
        let residual = PosteriorSummary::from_draws(&residual_draws);

        let mut diagnostics = Vec::new();
        if config.mcmc.chains >= 2 {
            for name in output.names().to_vec() {
                // Every chain of a run shares one parameter set, so a
                // missing name cannot occur here; skip rather than
                // abort if it ever does.
                if let Ok(per_chain) = output.per_chain(&name) {
                    diagnostics.push((name.clone(), report(&per_chain)));
                }
            }
        }

        Self {
            prior,
            model,
            residual,
            residual_draws,
            waic,
            diagnostics,
            output,
        }
    }

    /// Runs the sampler under the fault-tolerant runner and assembles
    /// a fit from whatever chains survive.
    ///
    /// WAIC is replayed from the surviving chains' stored draws
    /// ([`srm_select::waic::waic_from_output`]); on fault-free runs
    /// the result is bit-identical to [`Fit::run`].
    ///
    /// # Errors
    ///
    /// Returns the first chain's fault when every chain is lost, and
    /// propagates configuration and replay errors as [`SrmError`].
    pub fn try_run(
        prior: PriorSpec,
        model: DetectionModel,
        data: &BugCountData,
        config: &FitConfig,
        options: &RunOptions,
    ) -> Result<FaultTolerantFit, SrmError> {
        Self::try_run_traced(prior, model, data, config, options, &NOOP)
    }

    /// [`Fit::try_run`] with instrumentation: the sampling, WAIC,
    /// summary and diagnostics phases run under [`Span`]s, chain
    /// events flow through `recorder`, and each monitored parameter's
    /// final convergence diagnostics are emitted as
    /// [`Event::Diagnostic`]. With a disabled recorder (the default
    /// [`NOOP`]) the numeric output is bit-identical to
    /// [`Fit::try_run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Fit::try_run`].
    pub fn try_run_traced(
        prior: PriorSpec,
        model: DetectionModel,
        data: &BugCountData,
        config: &FitConfig,
        options: &RunOptions,
        recorder: &dyn Recorder,
    ) -> Result<FaultTolerantFit, SrmError> {
        let sampler = GibbsSampler::new(prior, model, config.zeta_bounds, data);
        let span = Span::enter(recorder, "sampling");
        let run = run_chains_fault_tolerant_traced(&sampler, &config.mcmc, options, recorder)?;
        span.end();
        Self::from_run_traced(prior, model, &sampler, run, recorder)
    }

    /// Assembles a [`FaultTolerantFit`] from an externally produced
    /// run: WAIC is replayed from the surviving chains, the residual
    /// summary and convergence diagnostics are computed under
    /// [`Span`]s, and each parameter's diagnostics are emitted as
    /// [`Event::Diagnostic`] — the exact tail of
    /// [`Fit::try_run_traced`] after its sampling phase. External
    /// schedulers (the cross-dataset batch executor) pair this with
    /// [`srm_mcmc::assemble_run`] to build fits bit-identical to the
    /// single-dataset path.
    ///
    /// `sampler` must be the sampler the run was drawn from.
    ///
    /// # Errors
    ///
    /// Same contract as [`Fit::try_run`].
    pub fn from_run_traced(
        prior: PriorSpec,
        model: DetectionModel,
        sampler: &GibbsSampler,
        run: srm_mcmc::FaultTolerantRun,
        recorder: &dyn Recorder,
    ) -> Result<FaultTolerantFit, SrmError> {
        let waic = waic_from_output_traced(sampler, &run.output, recorder)?;

        let span = Span::enter(recorder, "summary");
        let residual_draws = run.output.pooled("residual");
        if residual_draws.is_empty() {
            return Err(SrmError::DegeneratePosterior {
                detail: "surviving chains hold no residual draws".into(),
                sweep: 0,
            });
        }
        let residual = PosteriorSummary::from_draws(&residual_draws);
        span.end();

        let span = Span::enter(recorder, "diagnostics");
        let mut diagnostics = Vec::new();
        if run.output.chains.len() >= 2 {
            for name in run.output.names().to_vec() {
                if let Ok(per_chain) = run.output.per_chain(&name) {
                    diagnostics.push((name.clone(), report(&per_chain)));
                }
            }
        }
        span.end();
        if recorder.enabled() {
            for (name, d) in &diagnostics {
                recorder.record(&Event::Diagnostic {
                    parameter: name.clone(),
                    psrf: d.psrf,
                    geweke_z: d.geweke_z,
                    ess: d.ess,
                });
            }
        }

        Ok(FaultTolerantFit {
            fit: Self {
                prior,
                model,
                residual,
                residual_draws,
                waic,
                diagnostics,
                output: run.output,
            },
            chain_reports: run.reports,
        })
    }

    /// Whether every monitored parameter passed PSRF < 1.1 and
    /// |Geweke Z| < 1.96 (vacuously true for single-chain runs, which
    /// produce no PSRF).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.diagnostics.iter().all(|(_, d)| d.converged())
    }

    /// Deviation of the posterior-mean residual from the true
    /// residual count (the parenthesised numbers in Tables II–IV).
    #[must_use]
    pub fn mean_deviation(&self, true_residual: u64) -> f64 {
        self.residual.mean - true_residual as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;
    use srm_mcmc::{FaultKind, FaultPlan, FaultPoint, RetryPolicy};

    fn smoke_fit(prior: PriorSpec, model: DetectionModel, seed: u64) -> Fit {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let config = FitConfig {
            mcmc: McmcConfig::smoke(seed),
            ..FitConfig::default()
        };
        Fit::run(prior, model, &data, &config)
    }

    #[test]
    fn fit_bundles_consistent_pieces() {
        let fit = smoke_fit(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            51,
        );
        assert_eq!(fit.residual_draws.len(), 1_000); // 2 chains × 500
        assert_eq!(fit.residual.count, 1_000);
        assert!(fit.waic.total().is_finite());
        assert!(!fit.diagnostics.is_empty());
        assert!(fit.diagnostics.iter().any(|(name, _)| name == "residual"));
    }

    #[test]
    fn deviation_matches_summary_mean() {
        let fit = smoke_fit(
            PriorSpec::NegBinomial { alpha_max: 50.0 },
            DetectionModel::Constant,
            52,
        );
        let dev = fit.mean_deviation(94);
        assert!((dev - (fit.residual.mean - 94.0)).abs() < 1e-12);
    }

    #[test]
    fn single_chain_fit_has_no_diagnostics() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let config = FitConfig {
            mcmc: McmcConfig {
                chains: 1,
                burn_in: 100,
                samples: 200,
                thin: 1,
                seed: 53,
            },
            ..FitConfig::default()
        };
        let fit = Fit::run(
            PriorSpec::Poisson {
                lambda_max: 1_000.0,
            },
            DetectionModel::Constant,
            &data,
            &config,
        );
        assert!(fit.diagnostics.is_empty());
        assert!(fit.converged()); // vacuous
    }

    #[test]
    fn try_run_matches_run_when_fault_free() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let config = FitConfig {
            mcmc: McmcConfig::smoke(61),
            ..FitConfig::default()
        };
        let prior = PriorSpec::Poisson {
            lambda_max: 2_000.0,
        };
        let model = DetectionModel::Constant;
        let strict = Fit::run(prior, model, &data, &config);
        let tolerant = Fit::try_run(prior, model, &data, &config, &RunOptions::default()).unwrap();
        assert!(!tolerant.is_degraded());
        assert_eq!(tolerant.total_retries(), 0);
        // Bit-identical draws and a bit-identical replayed WAIC.
        assert_eq!(strict.residual_draws, tolerant.fit.residual_draws);
        assert_eq!(
            strict.waic.total().to_bits(),
            tolerant.fit.waic.total().to_bits()
        );
        assert_eq!(
            strict.residual.mean.to_bits(),
            tolerant.fit.residual.mean.to_bits()
        );
    }

    #[test]
    fn try_run_survives_an_injected_chain_panic() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let config = FitConfig {
            mcmc: McmcConfig {
                chains: 2,
                burn_in: 100,
                samples: 200,
                thin: 1,
                seed: 62,
            },
            ..FitConfig::default()
        };
        let options = RunOptions {
            retry: RetryPolicy::none(),
            fault_plan: FaultPlan::new(vec![FaultPoint {
                chain: 1,
                sweep: 5,
                kind: FaultKind::Panic,
            }]),
            threads: 0,
            checkpoint_every: 0,
            profiler: None,
        };
        let out = Fit::try_run(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            &data,
            &config,
            &options,
        )
        .unwrap();
        assert!(out.is_degraded());
        assert_eq!(out.fit.output.chains.len(), 1);
        assert_eq!(out.fit.residual_draws.len(), 200);
        assert!(out.fit.waic.total().is_finite());
        let failed: Vec<usize> = out
            .chain_reports
            .iter()
            .filter(|r| !r.recovered)
            .map(|r| r.chain)
            .collect();
        assert_eq!(failed, vec![1]);
    }

    #[test]
    fn model1_posterior_tighter_than_model3() {
        // The paper's Table V: model1's posterior sd is far below
        // model3's at every observation point.
        let sd1 = smoke_fit(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::PadgettSpurrier,
            54,
        )
        .residual
        .sd;
        let sd3 = smoke_fit(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Pareto,
            55,
        )
        .residual
        .sd;
        assert!(sd1 < sd3, "sd(model1) = {sd1} vs sd(model3) = {sd3}");
    }
}
