//! High-level pipeline for Bayesian estimation of the residual number
//! of software bugs — the paper's §5 workflow as a library.
//!
//! A [`Fit`] runs the Gibbs sampler for one (prior, detection model,
//! data window) combination and bundles the posterior summary of the
//! residual bug count, WAIC, and convergence diagnostics. An
//! [`Experiment`] sweeps the full 2-priors × 5-models × observation
//! plan design and collects every fit for table/figure generation.
//!
//! # Examples
//!
//! ```
//! use srm_core::{Fit, FitConfig};
//! use srm_data::datasets;
//! use srm_mcmc::gibbs::PriorSpec;
//! use srm_mcmc::runner::McmcConfig;
//! use srm_model::DetectionModel;
//!
//! let data = datasets::musa_cc96().truncated(48).unwrap();
//! let config = FitConfig { mcmc: McmcConfig::smoke(5), ..FitConfig::default() };
//! let fit = Fit::run(
//!     PriorSpec::Poisson { lambda_max: 2000.0 },
//!     DetectionModel::Constant,
//!     &data,
//!     &config,
//! );
//! assert!(fit.residual.mean >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fit;
pub mod multidata;
pub mod ppc;
pub mod predict;
pub mod tuning;

pub use experiment::{
    CellFailure, Experiment, ExperimentCell, ExperimentConfig, ExperimentResults, FitKey,
};
pub use fit::{FaultTolerantFit, Fit, FitConfig};
pub use multidata::{compare_across_datasets, MultiDatasetResults};
pub use ppc::{posterior_predictive_check, PpcResult};
pub use predict::{predict_from_fit, Prediction};
pub use tuning::{tuned_fit, tuned_fit_traced, TunedFit};
