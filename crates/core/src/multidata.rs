//! Multi-dataset comparison (the paper's §6: "the comparison between
//! the Poisson and negative binomial priors should be made with more
//! data sets").
//!
//! Runs the same (prior × model) design on several datasets and
//! aggregates per-dataset results, so the prior comparison can be
//! read across growth shapes rather than from one sample.

use crate::fit::{Fit, FitConfig};
use srm_data::BugCountData;
use srm_mcmc::gibbs::PriorSpec;
use srm_model::DetectionModel;

/// One dataset's results: a fit per prior.
#[derive(Debug, Clone)]
pub struct DatasetComparison {
    /// Dataset name.
    pub name: String,
    /// Total bugs in the dataset.
    pub total: u64,
    /// One fit per prior, in the order supplied.
    pub fits: Vec<Fit>,
}

impl DatasetComparison {
    /// The fit whose prior has the given label.
    #[must_use]
    pub fn fit(&self, prior_label: &str) -> Option<&Fit> {
        self.fits.iter().find(|f| f.prior.label() == prior_label)
    }
}

/// Aggregated outcome of a multi-dataset run.
#[derive(Debug, Clone)]
pub struct MultiDatasetResults {
    /// Per-dataset comparisons, in input order.
    pub datasets: Vec<DatasetComparison>,
}

impl MultiDatasetResults {
    /// Number of datasets on which the first prior's posterior sd is
    /// at most the second prior's (the paper's headline, counted
    /// across datasets).
    ///
    /// # Panics
    ///
    /// Panics if any dataset has fewer than two fits.
    #[must_use]
    pub fn sd_wins_of_first_prior(&self) -> usize {
        self.datasets
            .iter()
            .filter(|d| {
                assert!(d.fits.len() >= 2, "need two priors per dataset");
                d.fits[0].residual.sd <= d.fits[1].residual.sd
            })
            .count()
    }

    /// Mean (over datasets) of the log sd ratio
    /// `ln(sd_second / sd_first)`; positive favours the first prior.
    #[must_use]
    pub fn mean_log_sd_ratio(&self) -> f64 {
        let mut acc = 0.0;
        for d in &self.datasets {
            acc += (d.fits[1].residual.sd.max(1e-12) / d.fits[0].residual.sd.max(1e-12)).ln();
        }
        acc / self.datasets.len() as f64
    }
}

/// Fits `model` with every prior on every named dataset.
///
/// # Panics
///
/// Panics if `priors` or `datasets` is empty.
#[must_use]
pub fn compare_across_datasets(
    datasets: &[(&str, BugCountData)],
    priors: &[PriorSpec],
    model: DetectionModel,
    config: &FitConfig,
) -> MultiDatasetResults {
    assert!(!datasets.is_empty(), "no datasets supplied");
    assert!(!priors.is_empty(), "no priors supplied");
    let comparisons = datasets
        .iter()
        .map(|(name, data)| {
            let fits = priors
                .iter()
                .map(|&prior| Fit::run(prior, model, data, config))
                .collect();
            DatasetComparison {
                name: (*name).to_owned(),
                total: data.total(),
                fits,
            }
        })
        .collect();
    MultiDatasetResults {
        datasets: comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_mcmc::runner::McmcConfig;

    fn quick_config(seed: u64) -> FitConfig {
        FitConfig {
            mcmc: McmcConfig {
                chains: 1,
                burn_in: 150,
                samples: 400,
                thin: 1,
                seed,
            },
            ..FitConfig::default()
        }
    }

    fn two_priors() -> Vec<PriorSpec> {
        vec![
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            PriorSpec::NegBinomial { alpha_max: 100.0 },
        ]
    }

    #[test]
    fn runs_over_all_datasets_and_priors() {
        let named: Vec<(&str, BugCountData)> = srm_data::datasets::all_named()
            .into_iter()
            .take(3)
            .collect();
        let results = compare_across_datasets(
            &named,
            &two_priors(),
            DetectionModel::Constant,
            &quick_config(901),
        );
        assert_eq!(results.datasets.len(), 3);
        for d in &results.datasets {
            assert_eq!(d.fits.len(), 2);
            assert!(d.fit("poisson").is_some());
            assert!(d.fit("negbinom").is_some());
            assert!(d.fit("nonsense").is_none());
            assert!(d.total > 0);
        }
        let wins = results.sd_wins_of_first_prior();
        assert!(wins <= 3);
        assert!(results.mean_log_sd_ratio().is_finite());
    }

    #[test]
    #[should_panic(expected = "no datasets")]
    fn empty_datasets_panic() {
        let _ = compare_across_datasets(
            &[],
            &two_priors(),
            DetectionModel::Constant,
            &quick_config(902),
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let named: Vec<(&str, BugCountData)> = srm_data::datasets::all_named()
            .into_iter()
            .take(1)
            .collect();
        let a = compare_across_datasets(
            &named,
            &two_priors(),
            DetectionModel::Constant,
            &quick_config(903),
        );
        let b = compare_across_datasets(
            &named,
            &two_priors(),
            DetectionModel::Constant,
            &quick_config(903),
        );
        assert_eq!(
            a.datasets[0].fits[0].residual,
            b.datasets[0].fits[0].residual
        );
    }
}
