//! Release-readiness prediction derived from a finished [`Fit`]:
//! reliability over a future horizon and the expected number of
//! detections, evaluated at the plug-in posterior-mean parameters.
//!
//! This is the computation behind `srm predict`, factored out of the
//! CLI so the estimation service can run predict jobs through the
//! exact same code path.

use crate::fit::Fit;
use srm_data::BugCountData;
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::SrmError;
use srm_model::predictive::expected_future_detections;
use srm_model::reliability::reliability_curve;
use srm_model::{nb_posterior, poisson_posterior};

/// Reliability and expected detections over a future horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Horizon length in days.
    pub horizon: usize,
    /// Expected number of detections within the horizon.
    pub expected_detections: f64,
    /// `R(h) = P(no detection within h days)` for `h = 1..=horizon`.
    pub reliability: Vec<f64>,
}

/// Evaluates the plug-in predictive quantities of `fit` over the next
/// `horizon` days after the end of `data`.
///
/// The detection schedule is evaluated at the posterior-mean `ζ`, and
/// the residual-count posterior at the posterior-mean prior
/// hyperparameters — the paper's plug-in approximation, identical to
/// what `srm predict` reports.
///
/// # Errors
///
/// Returns [`SrmError::InvalidConfig`] when `horizon` is zero or the
/// posterior-mean parameters fall outside the model's domain (which
/// indicates a degenerate fit).
pub fn predict_from_fit(
    fit: &Fit,
    data: &BugCountData,
    horizon: usize,
) -> Result<Prediction, SrmError> {
    if horizon == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "prediction horizon must be positive".into(),
        });
    }
    let mean_of = |name: &str| -> f64 {
        let d = fit.output.pooled(name);
        if d.is_empty() {
            f64::NAN
        } else {
            d.iter().sum::<f64>() / d.len() as f64
        }
    };
    let model = fit.model;
    let zeta: Vec<f64> = model.param_names().iter().map(|n| mean_of(n)).collect();
    let schedule = model
        .probs(&zeta, data.len())
        .map_err(|e| SrmError::InvalidConfig {
            detail: format!("fitted parameters invalid: {e}"),
        })?;
    let posterior = match fit.prior {
        PriorSpec::Poisson { .. } => poisson_posterior(mean_of("lambda0"), &schedule, data),
        PriorSpec::NegBinomial { .. } => nb_posterior(
            mean_of("alpha0").max(1e-9),
            mean_of("beta0").clamp(1e-9, 1.0 - 1e-9),
            &schedule,
            data,
        ),
    };
    let future: Vec<f64> = ((data.len() + 1) as u64..=(data.len() + horizon) as u64)
        .map(|i| model.prob_unchecked(&zeta, i))
        .collect();
    Ok(Prediction {
        horizon,
        expected_detections: expected_future_detections(&posterior, &future, horizon),
        reliability: reliability_curve(&posterior, &future, horizon),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::FitConfig;
    use srm_data::datasets;
    use srm_mcmc::runner::McmcConfig;
    use srm_model::DetectionModel;

    fn smoke_fit() -> (Fit, BugCountData) {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let config = FitConfig {
            mcmc: McmcConfig::smoke(71),
            ..FitConfig::default()
        };
        let fit = Fit::run(
            PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            DetectionModel::Constant,
            &data,
            &config,
        );
        (fit, data)
    }

    #[test]
    fn reliability_is_monotone_nonincreasing_in_horizon() {
        let (fit, data) = smoke_fit();
        let p = predict_from_fit(&fit, &data, 20).unwrap();
        assert_eq!(p.reliability.len(), 20);
        for w in p.reliability.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "reliability increased: {w:?}");
        }
        assert!(p.expected_detections >= 0.0);
        assert!((0.0..=1.0).contains(&p.reliability[0]));
    }

    #[test]
    fn zero_horizon_is_a_typed_error() {
        let (fit, data) = smoke_fit();
        let err = predict_from_fit(&fit, &data, 0).unwrap_err();
        assert!(matches!(err, SrmError::InvalidConfig { .. }));
    }

    #[test]
    fn prediction_is_deterministic_for_a_fixed_fit() {
        let (fit, data) = smoke_fit();
        let a = predict_from_fit(&fit, &data, 10).unwrap();
        let b = predict_from_fit(&fit, &data, 10).unwrap();
        assert_eq!(a, b);
    }
}
