//! WAIC-driven hyper-parameter tuning followed by a final fit.
//!
//! The paper determines `λ_max`, `α_max` and `θ_max` by minimising
//! WAIC; this module wires [`srm_select::grid::GridSearch`] to a
//! final, longer run at the winning limits.

use crate::fit::{Fit, FitConfig};
use srm_data::BugCountData;
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::{Recorder, Span, NOOP};
use srm_select::grid::{GridSearch, GridSearchResult};

/// A fit whose hyper-prior limits were selected by grid search.
#[derive(Debug, Clone)]
pub struct TunedFit {
    /// The grid-search trace (all candidate limits and their WAIC).
    pub search: GridSearchResult,
    /// The final fit at the winning limits.
    pub fit: Fit,
}

/// Tunes the hyper-prior limits by WAIC grid search, then refits with
/// the supplied (usually longer) MCMC configuration.
///
/// `poisson_prior` selects the prior family; the winning grid cell
/// fixes `λ_max`/`α_max` and `θ_max`.
#[must_use]
pub fn tuned_fit(
    poisson_prior: bool,
    model: DetectionModel,
    data: &BugCountData,
    search: &GridSearch,
    final_mcmc: McmcConfig,
) -> TunedFit {
    tuned_fit_traced(poisson_prior, model, data, search, final_mcmc, &NOOP)
}

/// [`tuned_fit`] with instrumentation: the grid search and the final
/// refit run under `grid-search` / `final-fit` phase [`Span`]s. With
/// a disabled recorder the result is bit-identical to [`tuned_fit`].
#[must_use]
pub fn tuned_fit_traced(
    poisson_prior: bool,
    model: DetectionModel,
    data: &BugCountData,
    search: &GridSearch,
    final_mcmc: McmcConfig,
    recorder: &dyn Recorder,
) -> TunedFit {
    let span = Span::enter(recorder, "grid-search");
    let result = search.run(poisson_prior, model, data);
    span.end();
    let best = result.best.clone();
    let prior = if poisson_prior {
        PriorSpec::Poisson {
            lambda_max: best.prior_limit,
        }
    } else {
        PriorSpec::NegBinomial {
            alpha_max: best.prior_limit,
        }
    };
    let config = FitConfig {
        mcmc: final_mcmc,
        zeta_bounds: ZetaBounds {
            theta_max: best.theta_max,
            gamma_max: best.theta_max.max(1.0),
        },
    };
    let span = Span::enter(recorder, "final-fit");
    let fit = Fit::run(prior, model, data, &config);
    span.end();
    TunedFit {
        search: result,
        fit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;

    #[test]
    fn tuned_fit_uses_winning_cell() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let search = GridSearch {
            prior_limits: vec![400.0, 4_000.0],
            theta_maxes: vec![5.0],
            mcmc: McmcConfig {
                chains: 1,
                burn_in: 100,
                samples: 200,
                thin: 1,
                seed: 71,
            },
        };
        let tuned = tuned_fit(
            true,
            DetectionModel::Constant,
            &data,
            &search,
            McmcConfig {
                chains: 1,
                burn_in: 150,
                samples: 300,
                thin: 1,
                seed: 72,
            },
        );
        assert_eq!(tuned.search.cells.len(), 2);
        match tuned.fit.prior {
            PriorSpec::Poisson { lambda_max } => {
                assert_eq!(lambda_max, tuned.search.best.prior_limit);
            }
            PriorSpec::NegBinomial { .. } => panic!("wrong prior family"),
        }
        assert_eq!(tuned.fit.residual_draws.len(), 300);
    }

    #[test]
    fn nb_family_selected_when_requested() {
        let data = datasets::musa_cc96().truncated(48).unwrap();
        let search = GridSearch {
            prior_limits: vec![30.0],
            theta_maxes: vec![5.0],
            mcmc: McmcConfig {
                chains: 1,
                burn_in: 80,
                samples: 150,
                thin: 1,
                seed: 73,
            },
        };
        let tuned = tuned_fit(
            false,
            DetectionModel::Constant,
            &data,
            &search,
            McmcConfig {
                chains: 1,
                burn_in: 80,
                samples: 150,
                thin: 1,
                seed: 74,
            },
        );
        assert!(matches!(
            tuned.fit.prior,
            PriorSpec::NegBinomial { alpha_max } if alpha_max == 30.0
        ));
    }
}
