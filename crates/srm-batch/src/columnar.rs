//! Columnar multi-dataset layout: shape-compatible datasets share one
//! day grid, and each dataset's counts live in one contiguous column.
//!
//! A batch of N grouped bug-count series is stored as a small set of
//! **groups**. Every dataset whose series spans the same number of
//! days joins the same group and shares that group's day grid
//! (`1..=days`); within a group, dataset `c`'s daily counts occupy the
//! contiguous column `counts[c*days .. (c+1)*days]`, with the running
//! cumulative totals (the sampler's exposure series) laid out the same
//! way in `cumulative`. Columns are appended in item order, so the
//! layout itself is deterministic for a given item sequence.
//!
//! The executor materialises one [`BugCountData`] per *distinct*
//! dataset from its column ([`ColumnarBatch::item_data`]) right before
//! sampling — columns keep the resident batch compact while the
//! sampler keeps its validated-container API.

use srm_data::BugCountData;

/// One shape-compatible group: all member datasets span `days` days.
#[derive(Debug, Clone)]
pub struct ColumnGroup {
    /// The shared day grid: every member observes days `1..=days`.
    pub days: usize,
    /// Original item indices of the member columns, in column order.
    pub items: Vec<usize>,
    /// Column-major daily counts: column `c` is
    /// `counts[c*days .. (c+1)*days]`.
    pub counts: Vec<u64>,
    /// Column-major cumulative counts (exposure), same layout.
    pub cumulative: Vec<u64>,
}

impl ColumnGroup {
    /// Number of member columns.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.items.len()
    }
}

/// A batch of labelled datasets in columnar form.
#[derive(Debug, Clone, Default)]
pub struct ColumnarBatch {
    groups: Vec<ColumnGroup>,
    /// Per item: `(group index, column index within the group)`.
    slots: Vec<(usize, usize)>,
    labels: Vec<String>,
}

impl ColumnarBatch {
    /// Builds the columnar layout from `(label, data)` pairs, in item
    /// order. Groups are created in order of first appearance of each
    /// series length, so the layout is a pure function of the item
    /// sequence.
    #[must_use]
    pub fn from_items(items: &[(String, BugCountData)]) -> Self {
        let mut batch = Self::default();
        for (label, data) in items {
            let days = data.len();
            let gi = match batch.groups.iter().position(|g| g.days == days) {
                Some(gi) => gi,
                None => {
                    batch.groups.push(ColumnGroup {
                        days,
                        items: Vec::new(),
                        counts: Vec::new(),
                        cumulative: Vec::new(),
                    });
                    batch.groups.len() - 1
                }
            };
            let group = &mut batch.groups[gi];
            let column = group.columns();
            group.items.push(batch.slots.len());
            group.counts.extend_from_slice(data.counts());
            group.cumulative.extend_from_slice(data.cumulative());
            batch.slots.push((gi, column));
            batch.labels.push(label.clone());
        }
        batch
    }

    /// Number of items in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shape-compatible groups, in first-appearance order.
    #[must_use]
    pub fn groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    /// The label of item `i`.
    ///
    /// # Panics
    ///
    /// Out-of-range `i` panics (slice indexing), as with any index
    /// accessor.
    #[must_use]
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// The shared day-grid length of item `i`'s group, or `None` when
    /// `i` is out of range.
    #[must_use]
    pub fn days(&self, i: usize) -> Option<usize> {
        let &(gi, _) = self.slots.get(i)?;
        Some(self.groups[gi].days)
    }

    /// Item `i`'s contiguous daily-count column, or `None` when `i`
    /// is out of range.
    #[must_use]
    pub fn counts(&self, i: usize) -> Option<&[u64]> {
        let &(gi, c) = self.slots.get(i)?;
        let g = &self.groups[gi];
        Some(&g.counts[c * g.days..(c + 1) * g.days])
    }

    /// Item `i`'s contiguous cumulative (exposure) column, or `None`
    /// when `i` is out of range.
    #[must_use]
    pub fn cumulative(&self, i: usize) -> Option<&[u64]> {
        let &(gi, c) = self.slots.get(i)?;
        let g = &self.groups[gi];
        Some(&g.cumulative[c * g.days..(c + 1) * g.days])
    }

    /// Materialises item `i` as a validated [`BugCountData`] from its
    /// column, or `None` when `i` is out of range.
    #[must_use]
    pub fn item_data(&self, i: usize) -> Option<BugCountData> {
        // The column came out of a validated container, so
        // re-validation cannot fail; treat a (impossible) rejection
        // like an out-of-range index rather than panicking.
        BugCountData::new(self.counts(i)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(counts: &[u64]) -> BugCountData {
        BugCountData::new(counts.to_vec()).unwrap()
    }

    fn items(specs: &[(&str, &[u64])]) -> Vec<(String, BugCountData)> {
        specs
            .iter()
            .map(|(l, c)| ((*l).to_string(), data(c)))
            .collect()
    }

    #[test]
    fn shape_compatible_items_share_a_group() {
        let batch = ColumnarBatch::from_items(&items(&[
            ("a", &[1, 2, 3]),
            ("b", &[0, 0, 5]),
            ("c", &[7, 7]),
            ("d", &[4, 0, 1]),
        ]));
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.groups().len(), 2);
        let g3 = &batch.groups()[0];
        assert_eq!(g3.days, 3);
        assert_eq!(g3.columns(), 3);
        assert_eq!(g3.items, vec![0, 1, 3]);
        // Column-major: three contiguous 3-day columns.
        assert_eq!(g3.counts, vec![1, 2, 3, 0, 0, 5, 4, 0, 1]);
        assert_eq!(g3.cumulative, vec![1, 3, 6, 0, 0, 5, 4, 4, 5]);
        let g2 = &batch.groups()[1];
        assert_eq!(g2.days, 2);
        assert_eq!(g2.items, vec![2]);
    }

    #[test]
    fn columns_and_materialised_items_round_trip() {
        let source = items(&[("x", &[2, 0, 4]), ("y", &[1, 1]), ("z", &[9, 0, 0])]);
        let batch = ColumnarBatch::from_items(&source);
        for (i, (label, data)) in source.iter().enumerate() {
            assert_eq!(batch.label(i), label);
            assert_eq!(batch.days(i), Some(data.len()));
            assert_eq!(batch.counts(i), Some(data.counts()));
            assert_eq!(batch.cumulative(i), Some(data.cumulative()));
            let back = batch.item_data(i).unwrap();
            assert_eq!(back.counts(), data.counts());
            assert_eq!(back.cumulative(), data.cumulative());
        }
        assert!(batch.item_data(3).is_none());
        assert!(batch.counts(3).is_none());
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = ColumnarBatch::from_items(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.groups().is_empty());
    }
}
