//! The batch executor: N datasets, one columnar pass, chains
//! scheduled across datasets, per-item results bit-identical to N
//! individual fits.
//!
//! # How a batch runs
//!
//! 1. Items are laid out columnar ([`crate::ColumnarBatch`]) and
//!    fingerprinted; items with byte-identical counts collapse onto
//!    one **primary** (first occurrence) — duplicates never sample
//!    (the in-batch cache; see [`BatchReport::cache_hits`]).
//! 2. Each primary gets a content-keyed seed
//!    ([`crate::spec::item_seed`]), its own sampler, and its own base
//!    RNG — the same objects a lone `Fit::try_run_traced` with that
//!    seed would build.
//! 3. All `primaries × chains` work units go onto one worker pool
//!    ([`crate::schedule::run_pool`]); unit `u` runs
//!    [`srm_mcmc::run_chain_task`] for chain `u % chains` of primary
//!    `u / chains`. A unit's draws depend only on `(dataset, seed,
//!    chain index)` — never on the pool size or dispatch order.
//! 4. After the pool drains, each item is assembled *in item order*:
//!    [`srm_mcmc::assemble_run`] + [`srm_core::Fit::from_run_traced`]
//!    — the exact tail of the single-dataset path, so draws,
//!    summaries, WAIC, diagnostics, and the event trace are all
//!    bit-identical to N individual runs.
//!
//! The recorder contract matches the single-fit path: chain events
//! are buffered per chain and replayed in order at assembly, so the
//! trace of item `i` is byte-identical to the trace of a lone fit of
//! that dataset, bracketed by `batch-start` / `batch-item-done` /
//! `batch-done` events.

use crate::columnar::ColumnarBatch;
use crate::report::{BatchReport, ItemReport, ItemStatus};
use crate::spec::{content_key, item_seed, BatchSpec};
use srm_core::Fit;
use srm_data::BugCountData;
use srm_mcmc::{
    assemble_run, effective_threads, run_chain_task, ChainOutcome, GibbsSampler, McmcConfig,
    SrmError,
};
use srm_obs::{Event, Recorder, NOOP};
use srm_rand::Xoshiro256StarStar;
use std::collections::HashMap;
use std::time::Instant;

/// Runs a batch without instrumentation.
///
/// # Errors
///
/// Returns [`SrmError::InvalidConfig`] when `chains == 0`. Per-item
/// failures (every chain of one item lost, degenerate posterior) are
/// *not* errors — they land in that item's [`ItemReport`].
pub fn run_batch(
    spec: &BatchSpec,
    items: &[(String, BugCountData)],
    batch_id: &str,
) -> Result<BatchReport, SrmError> {
    run_batch_traced(spec, items, batch_id, &NOOP)
}

/// [`run_batch`] with instrumentation: emits `batch-start`, one
/// `batch-item-done` per item (in item order), and `batch-done`, with
/// each item's chain/WAIC/diagnostic events in between — the per-item
/// stretch of the trace is byte-identical to a lone fit's trace.
///
/// # Errors
///
/// Same contract as [`run_batch`].
pub fn run_batch_traced(
    spec: &BatchSpec,
    items: &[(String, BugCountData)],
    batch_id: &str,
    recorder: &dyn Recorder,
) -> Result<BatchReport, SrmError> {
    let chains = spec.config.mcmc.chains;
    if chains == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "chains must be >= 1".into(),
        });
    }
    let master = spec.master_seed();
    let on = recorder.enabled();
    let started = Instant::now();
    if on {
        recorder.record(&Event::BatchStart {
            batch_id: batch_id.to_string(),
            items: items.len(),
            master_seed: master,
        });
    }

    let columnar = ColumnarBatch::from_items(items);
    let n = columnar.len();

    // Duplicate coalescing: the first item with a given content key
    // is the primary; later identical items alias it.
    let mut first_seen: HashMap<u64, usize> = HashMap::new();
    let mut primary_of: Vec<usize> = Vec::with_capacity(n);
    let mut primaries: Vec<usize> = Vec::new();
    let mut seeds: Vec<u64> = Vec::with_capacity(n);
    let mut hashes: Vec<String> = Vec::with_capacity(n);
    for (i, (_, data)) in items.iter().enumerate() {
        let key = content_key(data);
        seeds.push(item_seed(master, data));
        hashes.push(srm_obs::dataset_hash(data.counts()));
        let primary = *first_seen.entry(key).or_insert(i);
        primary_of.push(primary);
        if primary == i {
            primaries.push(i);
        }
    }
    // Primary `j` of `primaries` fits item `primaries[j]`.
    let slot_of: HashMap<usize, usize> =
        primaries.iter().enumerate().map(|(j, &i)| (i, j)).collect();

    // Materialise each primary from its column and build the exact
    // sampler + base RNG a lone fit with that item's seed would use.
    let datas: Vec<BugCountData> = primaries
        .iter()
        .map(|&i| {
            columnar
                .item_data(i)
                .ok_or_else(|| SrmError::InvalidConfig {
                    detail: format!("batch item {i} has no columnar slot"),
                })
        })
        .collect::<Result<_, _>>()?;
    let samplers: Vec<GibbsSampler> = primaries
        .iter()
        .zip(&datas)
        .map(|(_, data)| GibbsSampler::new(spec.prior, spec.model, spec.config.zeta_bounds, data))
        .collect();
    let configs: Vec<McmcConfig> = primaries
        .iter()
        .map(|&i| McmcConfig {
            seed: seeds[i],
            ..spec.config.mcmc
        })
        .collect();
    let bases: Vec<Xoshiro256StarStar> = configs
        .iter()
        .map(|c| Xoshiro256StarStar::seed_from(c.seed))
        .collect();

    // One pool over every (primary, chain) unit.
    let units = primaries.len() * chains;
    let workers = effective_threads(spec.options.threads, units);
    let flat = crate::schedule::run_pool(units, workers, |u| {
        let (p, c) = crate::schedule::unit_coords(u, chains);
        run_chain_task(
            &samplers[p],
            &bases[p],
            &configs[p],
            &spec.options,
            recorder,
            c,
        )
    });

    // Regroup the flat slot vector into per-primary chain slots.
    let mut per_primary: Vec<Vec<Option<ChainOutcome>>> = Vec::with_capacity(primaries.len());
    let mut flat = flat.into_iter();
    for _ in 0..primaries.len() {
        per_primary.push(flat.by_ref().take(chains).collect());
    }

    // Assemble in item order; duplicates clone their primary's result.
    let mut reports: Vec<ItemReport> = Vec::with_capacity(n);
    let mut cache_hits = 0_usize;
    for i in 0..n {
        let primary = primary_of[i];
        let mut report = if primary == i {
            let j = slot_of.get(&primary).copied().unwrap_or_default();
            let slots = std::mem::take(&mut per_primary[j]);
            let wall_ms: f64 = slots.iter().flatten().map(|o| o.wall_ms).sum();
            let assembled = assemble_run(&configs[j], slots, recorder).and_then(|run| {
                Fit::from_run_traced(spec.prior, spec.model, &samplers[j], run, recorder)
            });
            match assembled {
                Ok(fit) => ItemReport {
                    index: i,
                    label: columnar.label(i).to_string(),
                    dataset_hash: hashes[i].clone(),
                    seed: seeds[i],
                    cached: false,
                    status: if fit.is_degraded() {
                        ItemStatus::Degraded
                    } else {
                        ItemStatus::Done
                    },
                    error: None,
                    fit: Some(fit),
                    wall_ms,
                },
                Err(e) => ItemReport {
                    index: i,
                    label: columnar.label(i).to_string(),
                    dataset_hash: hashes[i].clone(),
                    seed: seeds[i],
                    cached: false,
                    status: ItemStatus::Failed,
                    error: Some(e.to_string()),
                    fit: None,
                    wall_ms,
                },
            }
        } else {
            // In-batch cache hit: identical counts → identical seed →
            // the primary's fit IS this item's fit. No sampling.
            cache_hits += 1;
            let source = &reports[primary];
            ItemReport {
                index: i,
                label: columnar.label(i).to_string(),
                dataset_hash: hashes[i].clone(),
                seed: seeds[i],
                cached: true,
                status: source.status,
                error: source.error.clone(),
                fit: source.fit.clone(),
                wall_ms: 0.0,
            }
        };
        report.index = i;
        if on {
            recorder.record(&Event::BatchItemDone {
                batch_id: batch_id.to_string(),
                item: i,
                label: report.label.clone(),
                status: report.status.as_str().to_string(),
                cached: report.cached,
                wall_ms: report.wall_ms,
            });
        }
        reports.push(report);
    }

    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = BatchReport {
        batch_id: batch_id.to_string(),
        master_seed: master,
        items: reports,
        cache_hits,
        wall_ms,
    };
    if on {
        recorder.record(&Event::BatchDone {
            batch_id: batch_id.to_string(),
            items: report.items.len(),
            failed: report.failed(),
            cache_hits,
            wall_ms,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_core::FitConfig;
    use srm_mcmc::RunOptions;

    fn data(counts: &[u64]) -> BugCountData {
        BugCountData::new(counts.to_vec()).unwrap()
    }

    fn smoke_spec(master: u64) -> BatchSpec {
        BatchSpec {
            prior: srm_mcmc::PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            model: srm_model::DetectionModel::Constant,
            config: FitConfig {
                mcmc: McmcConfig {
                    chains: 2,
                    burn_in: 30,
                    samples: 60,
                    thin: 1,
                    seed: master,
                },
                ..FitConfig::default()
            },
            options: RunOptions::none(),
        }
    }

    fn smoke_items() -> Vec<(String, BugCountData)> {
        vec![
            ("alpha".to_string(), data(&[4, 3, 2, 1, 0, 1, 0, 0])),
            ("beta".to_string(), data(&[1, 0, 2, 5, 1, 0, 0, 1])),
            ("gamma".to_string(), data(&[2, 2, 1])),
        ]
    }

    #[test]
    fn zero_chains_is_rejected() {
        let mut spec = smoke_spec(1);
        spec.config.mcmc.chains = 0;
        let err = run_batch(&spec, &smoke_items(), "b").unwrap_err();
        assert!(matches!(err, SrmError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_batch_yields_an_empty_report() {
        let report = run_batch(&smoke_spec(1), &[], "b").unwrap();
        assert!(report.items.is_empty());
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn batch_items_are_bit_identical_to_individual_fits() {
        let spec = smoke_spec(2_024);
        let items = smoke_items();
        let report = run_batch(&spec, &items, "b").unwrap();
        assert_eq!(report.items.len(), 3);
        for (item, (label, dataset)) in report.items.iter().zip(&items) {
            assert_eq!(&item.label, label);
            // A lone fit with the item's derived seed must match
            // bit-for-bit.
            let mut config = spec.config;
            config.mcmc.seed = item.seed;
            let lone =
                Fit::try_run(spec.prior, spec.model, dataset, &config, &spec.options).unwrap();
            let batch_fit = item.fit.as_ref().unwrap();
            assert_eq!(batch_fit.fit.residual_draws, lone.fit.residual_draws);
            assert_eq!(
                batch_fit.fit.residual.mean.to_bits(),
                lone.fit.residual.mean.to_bits()
            );
            assert_eq!(
                batch_fit.fit.waic.total().to_bits(),
                lone.fit.waic.total().to_bits()
            );
            assert_eq!(batch_fit.fit.output, lone.fit.output);
        }
    }

    #[test]
    fn results_are_invariant_under_item_permutation_and_thread_count() {
        let spec = smoke_spec(7);
        let items = smoke_items();
        let mut permuted = items.clone();
        permuted.rotate_left(1);
        let baseline = run_batch(&spec, &items, "b").unwrap();
        for threads in [1_usize, 2, 4] {
            let mut spec_t = spec.clone();
            spec_t.options = RunOptions::with_threads(threads);
            let report = run_batch(&spec_t, &permuted, "b").unwrap();
            for item in &report.items {
                let reference = baseline
                    .items
                    .iter()
                    .find(|r| r.label == item.label)
                    .unwrap();
                assert_eq!(item.seed, reference.seed, "threads={threads}");
                let (a, b) = (item.fit.as_ref().unwrap(), reference.fit.as_ref().unwrap());
                assert_eq!(
                    a.fit.residual_draws, b.fit.residual_draws,
                    "threads={threads}"
                );
                assert_eq!(a.fit.output, b.fit.output, "threads={threads}");
            }
        }
    }

    #[test]
    fn duplicate_datasets_fit_once_and_emit_no_extra_sampling_events() {
        let spec = smoke_spec(11);
        let base = data(&[3, 1, 4, 1, 5]);
        let items = vec![
            ("first".to_string(), base.clone()),
            ("twin".to_string(), base.clone()),
            ("other".to_string(), data(&[2, 7, 1, 8, 2])),
        ];
        let counter = ChainStartCounter::default();
        let report = run_batch_traced(&spec, &items, "b", &counter).unwrap();
        assert_eq!(report.cache_hits, 1);
        let twin = &report.items[1];
        assert!(twin.cached);
        assert_eq!(twin.seed, report.items[0].seed);
        assert_eq!(twin.wall_ms, 0.0);
        let (a, b) = (
            report.items[0].fit.as_ref().unwrap(),
            twin.fit.as_ref().unwrap(),
        );
        assert_eq!(a.fit.residual_draws, b.fit.residual_draws);
        // Only the two distinct datasets sampled: 2 primaries × 2
        // chains of chain-start events, not 3 × 2 — the cached twin
        // contributed zero sampling events.
        assert_eq!(
            counter
                .chain_starts
                .load(std::sync::atomic::Ordering::Relaxed),
            2 * 2
        );
    }

    /// Counts `chain-start` events: sampling happened iff it ticks.
    #[derive(Default)]
    struct ChainStartCounter {
        chain_starts: std::sync::atomic::AtomicUsize,
    }

    impl Recorder for ChainStartCounter {
        fn enabled(&self) -> bool {
            true
        }

        fn record(&self, event: &Event) {
            if matches!(event, Event::ChainStart { .. }) {
                self.chain_starts
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}
