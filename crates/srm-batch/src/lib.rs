//! Fleet-scale batch estimation: fit one `(prior, model, config)`
//! specification to N bug-count datasets in a single pass.
//!
//! The single-dataset pipeline (`srm-core`'s [`srm_core::Fit`]) is
//! hard-wired to one dataset per run; fitting a fleet of projects
//! means N cold starts and N thread pools. This crate runs the whole
//! fleet as **one** executor pass while keeping the workspace's
//! determinism contract intact:
//!
//! * **Columnar layout** ([`ColumnarBatch`]) — shape-compatible
//!   datasets share one day grid; each dataset's counts and
//!   cumulative exposure live in contiguous columns.
//! * **Content-keyed seeds** ([`item_seed`]) — every item's RNG
//!   stream derives from the batch master seed and the dataset's
//!   *bytes*, so results are invariant under item reordering and
//!   duplicate datasets coalesce onto one fit.
//! * **Cross-dataset scheduling** ([`schedule`]) — all
//!   `items × chains` work units share one worker pool; no
//!   per-dataset barrier.
//! * **Bit-identical results** ([`run_batch`]) — each item's draws,
//!   summaries, WAIC, and diagnostics are byte-identical to a lone
//!   `srm fit` of that dataset with the item's derived seed, for any
//!   thread count and any item ordering (proven in this crate's tests
//!   and the workspace `batch_determinism` battery).
//!
//! # Example
//!
//! ```
//! use srm_batch::{run_batch, BatchSpec};
//! use srm_core::FitConfig;
//! use srm_data::BugCountData;
//! use srm_mcmc::{McmcConfig, PriorSpec, RunOptions};
//! use srm_model::DetectionModel;
//!
//! let spec = BatchSpec {
//!     prior: PriorSpec::Poisson { lambda_max: 2_000.0 },
//!     model: DetectionModel::Constant,
//!     config: FitConfig {
//!         mcmc: McmcConfig { chains: 2, burn_in: 20, samples: 40, thin: 1, seed: 7 },
//!         ..FitConfig::default()
//!     },
//!     options: RunOptions::none(),
//! };
//! let items = vec![
//!     ("a".to_string(), BugCountData::new(vec![3, 1, 0, 2]).unwrap()),
//!     ("b".to_string(), BugCountData::new(vec![1, 1, 4]).unwrap()),
//! ];
//! let report = run_batch(&spec, &items, "batch-demo").unwrap();
//! assert_eq!(report.items.len(), 2);
//! assert!(report.items.iter().all(|i| i.fit.is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod executor;
pub mod report;
pub mod schedule;
pub mod spec;

pub use columnar::{ColumnGroup, ColumnarBatch};
pub use executor::{run_batch, run_batch_traced};
pub use report::{BatchReport, ItemReport, ItemStatus};
pub use spec::{content_key, item_seed, BatchSpec};
