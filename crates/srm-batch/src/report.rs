//! Batch results: one report per item, in submission order, plus
//! batch-level rollups and a JSON rendering for tooling.

use srm_core::FaultTolerantFit;
use srm_obs::json::Value;

/// Terminal state of one batch item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemStatus {
    /// Fit completed with every chain intact.
    Done,
    /// Fit completed but at least one chain was lost.
    Degraded,
    /// No fit was produced.
    Failed,
}

impl ItemStatus {
    /// The wire label (`done` / `degraded` / `failed`) used in events
    /// and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Done => "done",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }
}

/// One item's outcome.
#[derive(Debug, Clone)]
pub struct ItemReport {
    /// Item index in submission order.
    pub index: usize,
    /// Item label (file stem or caller-supplied name).
    pub label: String,
    /// Dataset fingerprint (hex FNV-1a over the counts), matching
    /// [`srm_obs::dataset_hash`].
    pub dataset_hash: String,
    /// The content-keyed seed this item's chains were split from —
    /// replaying `srm fit --seed <seed>` on the same dataset
    /// reproduces the fit bit-for-bit.
    pub seed: u64,
    /// Whether the item was served from the in-batch duplicate cache
    /// without sampling.
    pub cached: bool,
    /// Terminal status.
    pub status: ItemStatus,
    /// The failure, when `status` is [`ItemStatus::Failed`].
    pub error: Option<String>,
    /// The fit, when one was produced.
    pub fit: Option<FaultTolerantFit>,
    /// Wall-clock time attributed to the item, ms (sum of its chains'
    /// worker time; `0` for cached items).
    pub wall_ms: f64,
}

impl ItemReport {
    /// The item summarised as a JSON object (no draws — residual
    /// summary, convergence verdict, and WAIC only).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("index", Value::Num(self.index as f64)),
            ("label", Value::Str(self.label.clone())),
            ("dataset_hash", Value::Str(self.dataset_hash.clone())),
            ("seed", Value::Num(self.seed as f64)),
            ("cached", Value::Bool(self.cached)),
            ("status", Value::Str(self.status.as_str().to_string())),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error", Value::Str(error.clone())));
        }
        if let Some(f) = &self.fit {
            pairs.push((
                "residual",
                Value::obj(vec![
                    ("mean", Value::Num(f.fit.residual.mean)),
                    ("median", Value::Num(f.fit.residual.median)),
                    ("sd", Value::Num(f.fit.residual.sd)),
                ]),
            ));
            pairs.push(("converged", Value::Bool(f.fit.converged())));
            pairs.push(("waic", Value::Num(f.fit.waic.total())));
        }
        Value::obj(pairs)
    }
}

/// The outcome of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch identifier (`batch-N` on the service, seed-derived on
    /// the CLI).
    pub batch_id: String,
    /// The master seed the per-item seeds were split from.
    pub master_seed: u64,
    /// Per-item reports, in submission order.
    pub items: Vec<ItemReport>,
    /// Items served from the in-batch duplicate cache.
    pub cache_hits: usize,
    /// Wall-clock time for the whole batch, ms.
    pub wall_ms: f64,
}

impl BatchReport {
    /// Number of items that ended [`ItemStatus::Failed`].
    #[must_use]
    pub fn failed(&self) -> usize {
        self.items
            .iter()
            .filter(|i| i.status == ItemStatus::Failed)
            .count()
    }

    /// Whether every item failed (the batch produced nothing).
    #[must_use]
    pub fn all_failed(&self) -> bool {
        !self.items.is_empty() && self.failed() == self.items.len()
    }

    /// The batch summarised as a JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("batch_id", Value::Str(self.batch_id.clone())),
            ("master_seed", Value::Num(self.master_seed as f64)),
            ("items", Value::Num(self.items.len() as f64)),
            ("failed", Value::Num(self.failed() as f64)),
            ("cache_hits", Value::Num(self.cache_hits as f64)),
            (
                "results",
                Value::Arr(self.items.iter().map(ItemReport::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failed_item(index: usize) -> ItemReport {
        ItemReport {
            index,
            label: format!("item{index}"),
            dataset_hash: "00".into(),
            seed: 7,
            cached: false,
            status: ItemStatus::Failed,
            error: Some("boom".into()),
            fit: None,
            wall_ms: 0.0,
        }
    }

    #[test]
    fn rollups_count_failures() {
        let report = BatchReport {
            batch_id: "batch-1".into(),
            master_seed: 9,
            items: vec![failed_item(0), failed_item(1)],
            cache_hits: 0,
            wall_ms: 1.0,
        };
        assert_eq!(report.failed(), 2);
        assert!(report.all_failed());
        let json = report.to_value().to_json();
        assert!(json.contains("\"failed\":2"));
        assert!(json.contains("\"status\":\"failed\""));
        assert!(json.contains("\"error\":\"boom\""));
    }

    #[test]
    fn empty_batch_is_not_all_failed() {
        let report = BatchReport {
            batch_id: "batch-0".into(),
            master_seed: 1,
            items: Vec::new(),
            cache_hits: 0,
            wall_ms: 0.0,
        };
        assert!(!report.all_failed());
    }
}
