//! Cross-dataset work-unit scheduling.
//!
//! A batch of P distinct datasets × C chains is flattened into
//! `P * C` **work units**; unit `u` is chain `u % C` of dataset
//! `u / C`. Units are handed to a fixed pool of scoped workers
//! through an atomic dispenser — exactly the discipline the
//! single-dataset runner uses for its chains, lifted one level so
//! chains of *different* datasets fill the pool together (no
//! per-dataset barrier, no idle workers while a slow dataset
//! finishes).
//!
//! Determinism: a unit's result depends only on the unit index (each
//! chain task derives its RNG from its item's seed and its chain
//! index), and results land in a slot vector indexed by unit — so the
//! returned vector is bit-identical for any worker count and any
//! dispatch interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// The `(item, chain)` coordinates of work unit `u` under `chains`
/// chains per item.
#[must_use]
pub fn unit_coords(u: usize, chains: usize) -> (usize, usize) {
    (u / chains, u % chains)
}

/// Runs `task(u)` for every unit `0..units` on `workers` scoped
/// threads and returns the results in unit order.
///
/// Slots are `Option` so a worker dying outside the task's own panic
/// containment degrades to a missing slot instead of poisoning the
/// whole pool (the caller decides how to report it). `workers <= 1`
/// runs serially on the calling thread.
pub fn run_pool<T, F>(units: usize, workers: usize, task: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 {
        return (0..units).map(|u| Some(task(u))).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(units);
    slots.resize_with(units, || None);
    let slots = Mutex::new(slots);
    let dispenser = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(units) {
            scope.spawn(|| loop {
                let u = dispenser.fetch_add(1, Ordering::Relaxed);
                if u >= units {
                    break;
                }
                let out = task(u);
                let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                guard[u] = Some(out);
            });
        }
    });
    slots.into_inner().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_cover_the_grid_in_unit_order() {
        let coords: Vec<(usize, usize)> = (0..6).map(|u| unit_coords(u, 3)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn pool_runs_every_unit_once_in_slot_order() {
        for workers in [1, 2, 4, 9] {
            let hits = AtomicUsize::new(0);
            let out = run_pool(7, workers, |u| {
                hits.fetch_add(1, Ordering::Relaxed);
                u * 10
            });
            assert_eq!(hits.load(Ordering::Relaxed), 7, "workers={workers}");
            let values: Vec<usize> = out.into_iter().map(|s| s.unwrap()).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60]);
        }
    }

    #[test]
    fn zero_units_is_a_no_op() {
        let out = run_pool(0, 4, |u| u);
        assert!(out.is_empty());
    }
}
