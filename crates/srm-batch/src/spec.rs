//! Batch specification: one fit configuration applied to N datasets,
//! with deterministic content-keyed per-item seeds.
//!
//! # Seed-split contract
//!
//! A batch carries a single **master seed** (`spec.config.mcmc.seed`).
//! Each item derives its own seed from the master seed and the
//! *content* of its dataset — never from its position in the batch:
//!
//! ```text
//! item_seed = Pcg64::seed_stream(master, fnv1a64(counts)).next_u64() >> 32
//! ```
//!
//! Content keying gives the batch executor its two core invariants
//! for free:
//!
//! * **Permutation invariance** — reordering the items of a batch
//!   cannot change any item's seed, so per-item results are identical
//!   under any item ordering.
//! * **Duplicate coalescing** — two items with byte-identical counts
//!   share a seed (and a content key), so the executor fits the
//!   dataset once and serves the duplicate from the in-batch cache.
//!
//! The derived seed is truncated to 32 bits deliberately: job seeds
//! round-trip through JSON (`f64` numbers, bounded by `u32::MAX` at
//! the service's parse layer) and through `srm fit --seed` on the
//! command line, and the smoke tooling replays single fits from the
//! seeds a batch reports. A 32-bit seed survives every hop unchanged.

use srm_core::FitConfig;
use srm_data::BugCountData;
use srm_mcmc::{PriorSpec, RunOptions};
use srm_model::DetectionModel;
use srm_rand::{Pcg64, Rng};
use srm_store::fnv1a64;

/// One batch: a shared `(prior, model, fit-config)` triple applied to
/// every dataset, plus the fault/scheduling options of the run.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// The prior fitted to every item.
    pub prior: PriorSpec,
    /// The detection model fitted to every item.
    pub model: DetectionModel,
    /// MCMC lengths, zeta bounds, and the **master seed** the
    /// per-item seeds are split from.
    pub config: FitConfig,
    /// Fault handling and worker-pool sizing. `options.threads`
    /// bounds the pool the `(item, chain)` work units run on.
    pub options: RunOptions,
}

impl BatchSpec {
    /// The master seed of the batch.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.config.mcmc.seed
    }
}

/// The content key of a dataset: FNV-1a (64-bit) over its daily
/// counts as little-endian `u64`s — the same bytes
/// [`srm_obs::dataset_hash`] renders as hex.
#[must_use]
pub fn content_key(data: &BugCountData) -> u64 {
    let mut bytes = Vec::with_capacity(data.len() * 8);
    for &c in data.counts() {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Derives an item's seed from the batch's master seed and the item's
/// dataset content (see the module docs for the full contract).
///
/// The result always fits in 32 bits, so it survives JSON (`f64`)
/// round-trips and the service's `u32::MAX` seed bound.
#[must_use]
pub fn item_seed(master: u64, data: &BugCountData) -> u64 {
    // PCG streams are O(1) to select (unlike Xoshiro jump streams,
    // which cost one 256-step jump per index — unusable with hash
    // indices), so the content key can address the stream directly.
    Pcg64::seed_stream(master, content_key(data)).next_u64() >> 32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(counts: &[u64]) -> BugCountData {
        BugCountData::new(counts.to_vec()).unwrap()
    }

    #[test]
    fn item_seed_is_content_keyed_not_position_keyed() {
        let a = data(&[3, 1, 0, 2]);
        let b = data(&[3, 1, 0, 2]);
        let c = data(&[3, 1, 0, 1]);
        assert_eq!(item_seed(42, &a), item_seed(42, &b));
        assert_ne!(item_seed(42, &a), item_seed(42, &c));
        assert_ne!(item_seed(42, &a), item_seed(43, &a));
    }

    #[test]
    fn item_seed_fits_in_32_bits() {
        for master in [0_u64, 1, 42, u64::from(u32::MAX), u64::MAX] {
            let seed = item_seed(master, &data(&[1, 2, 3]));
            assert!(seed <= u64::from(u32::MAX), "seed {seed} exceeds 32 bits");
        }
    }

    #[test]
    fn content_key_matches_the_manifest_dataset_hash() {
        let d = data(&[5, 0, 2]);
        assert_eq!(
            format!("{:016x}", content_key(&d)),
            srm_obs::dataset_hash(d.counts())
        );
    }
}
