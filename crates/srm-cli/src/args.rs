//! Minimal, dependency-free argument parsing.
//!
//! Grammar: `srm <command> [--flag value]... [--switch]...`. Flags
//! take exactly one value; unknown flags are an error so typos fail
//! fast.

use std::collections::HashMap;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// `allowed_flags` / `allowed_switches` define the vocabulary for
    /// the chosen command.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing command, unknown flag,
    /// missing flag value, or stray positional argument.
    pub fn parse(
        raw: &[String],
        allowed_flags: &[&str],
        allowed_switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut iter = raw.iter();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?
            .clone();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            if allowed_switches.contains(&name) {
                switches.push(name.to_owned());
            } else if allowed_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("flag `--{name}` needs a value")))?;
                flags.insert(name.to_owned(), value.clone());
            } else {
                return Err(ArgError(format!("unknown flag `--{name}`")));
            }
        }
        Ok(Self {
            command,
            flags,
            switches,
        })
    }

    /// String flag value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag `--{name}`")))
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a malformed value.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value `{v}` for `--{name}`"))),
        }
    }

    /// Whether a switch was given.
    #[must_use]
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// FNV-1a fingerprint of the parsed invocation: command, flags
    /// (sorted, so `HashMap` iteration order cannot leak in), and
    /// switches. Two invocations with the same effective arguments
    /// hash identically regardless of flag order on the command line;
    /// this seeds the content half of the CLI run's trace id
    /// (DESIGN.md §17).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= u64::from(0x1fu8);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.command.as_bytes());
        let mut flags: Vec<(&String, &String)> = self.flags.iter().collect();
        flags.sort();
        for (k, v) in flags {
            eat(k.as_bytes());
            eat(v.as_bytes());
        }
        let mut switches: Vec<&String> = self.switches.iter().collect();
        switches.sort();
        for s in switches {
            eat(s.as_bytes());
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_command_flags_switches() {
        let args = Args::parse(
            &raw(&["fit", "--data", "x.csv", "--seed", "7", "--verbose"]),
            &["data", "seed"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(args.command, "fit");
        assert_eq!(args.get("data"), Some("x.csv"));
        assert_eq!(args.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert!(args.has_switch("verbose"));
        assert!(!args.has_switch("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let args = Args::parse(&raw(&["fit"]), &["data"], &[]).unwrap();
        assert_eq!(args.get_parsed::<usize>("chains", 4).unwrap(), 4);
        assert!(args.require("data").is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = Args::parse(&raw(&["fit", "--bogus", "1"]), &["data"], &[]).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_missing_value_and_positional() {
        assert!(Args::parse(&raw(&["fit", "--data"]), &["data"], &[]).is_err());
        assert!(Args::parse(&raw(&["fit", "stray"]), &["data"], &[]).is_err());
        assert!(Args::parse(&raw(&[]), &[], &[]).is_err());
    }

    #[test]
    fn rejects_malformed_number() {
        let args = Args::parse(&raw(&["fit", "--seed", "abc"]), &["seed"], &[]).unwrap();
        assert!(args.get_parsed::<u64>("seed", 0).is_err());
    }

    #[test]
    fn content_hash_is_order_insensitive_but_value_sensitive() {
        let flags = &["data", "seed"];
        let a = Args::parse(
            &raw(&["fit", "--data", "x.csv", "--seed", "7", "--verbose"]),
            flags,
            &["verbose"],
        )
        .unwrap();
        let b = Args::parse(
            &raw(&["fit", "--seed", "7", "--verbose", "--data", "x.csv"]),
            flags,
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.content_hash(), b.content_hash());

        let c = Args::parse(
            &raw(&["fit", "--data", "x.csv", "--seed", "8", "--verbose"]),
            flags,
            &["verbose"],
        )
        .unwrap();
        assert_ne!(a.content_hash(), c.content_hash());

        // Separators keep `--a bc` distinct from `--ab c`-style splits.
        let d = Args::parse(&raw(&["fit", "--data", "x.csvseed7"]), flags, &[]).unwrap();
        assert_ne!(a.content_hash(), d.content_hash());
    }
}
