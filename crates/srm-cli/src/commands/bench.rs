//! `srm bench diff` — regression gate over benchmark reports.
//!
//! Compares two `BENCH_mcmc.json` documents (written by the bench
//! binaries in `crates/bench`) label by label:
//!
//! * `median_ns` — higher in NEW is a slowdown;
//! * `ess_per_sec` — lower in NEW is a throughput loss.
//!
//! `srm bench diff OLD NEW` prints the comparison table;
//! `--check` turns any regression beyond `--threshold` percent
//! (default 10) into a non-zero exit, which is how CI gates merges
//! against the committed baseline.

use std::collections::BTreeMap;

use crate::args::ArgError;
use srm_obs::json::{parse, Value};

const USAGE: &str = "usage: srm bench diff <OLD.json> <NEW.json> [--check] [--threshold PCT]";

/// One benchmark entry's comparable figures.
#[derive(Debug, Clone, Copy, Default)]
struct Figures {
    median_ns: Option<f64>,
    ess_per_sec: Option<f64>,
}

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on a missing/unknown mode, unreadable report
/// files, or (with `--check`) any regression beyond the threshold.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let mode = raw
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| ArgError(USAGE.into()))?;
    if mode != "diff" {
        return Err(ArgError(format!("unknown bench mode `{mode}` (diff)")));
    }
    // OLD and NEW are positionals, so the generic flag parser does
    // not apply; walk the tail by hand.
    let mut paths: Vec<&str> = Vec::new();
    let mut check = false;
    let mut threshold = 10.0f64;
    let mut iter = raw[2..].iter();
    while let Some(token) = iter.next() {
        match token.as_str() {
            "--check" => check = true,
            "--threshold" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError("flag `--threshold` needs a value".into()))?;
                threshold = value
                    .parse()
                    .map_err(|_| ArgError(format!("invalid value `{value}` for `--threshold`")))?;
            }
            other if other.starts_with("--") => {
                return Err(ArgError(format!("unknown flag `{other}`\n{USAGE}")));
            }
            path => paths.push(path),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(ArgError(USAGE.into()));
    };
    diff(old_path, new_path, check, threshold)
}

fn load(path: &str) -> Result<BTreeMap<String, Figures>, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read bench report `{path}`: {e}")))?;
    let doc = parse(&text).map_err(|e| ArgError(format!("`{path}` is not valid JSON: {e}")))?;
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_obj)
        .ok_or_else(|| ArgError(format!("`{path}` has no `benchmarks` object")))?;
    Ok(benches
        .iter()
        .map(|(label, entry)| {
            (
                label.clone(),
                Figures {
                    median_ns: entry.get("median_ns").and_then(Value::as_f64),
                    ess_per_sec: entry.get("ess_per_sec").and_then(Value::as_f64),
                },
            )
        })
        .collect())
}

/// Percentage change from `old` to `new`; `None` when either side is
/// missing or `old` is not a usable base.
fn pct_change(old: Option<f64>, new: Option<f64>) -> Option<f64> {
    match (old, new) {
        (Some(o), Some(n)) if o > 0.0 => Some((n - o) / o * 100.0),
        _ => None,
    }
}

fn diff(old_path: &str, new_path: &str, check: bool, threshold: f64) -> Result<String, ArgError> {
    let old = load(old_path)?;
    let new = load(new_path)?;
    let mut out = format!("bench diff — {old_path} (old) vs {new_path} (new)\n");
    out.push_str(&format!(
        "{:<40} {:>12} {:>12} {:>8}  {}\n",
        "benchmark", "old", "new", "Δ%", "verdict"
    ));
    let mut regressions: Vec<String> = Vec::new();
    let labels: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
    for label in labels {
        match (old.get(label), new.get(label)) {
            (Some(o), Some(n)) => {
                if let Some(delta) = pct_change(o.median_ns, n.median_ns) {
                    let slow = delta > threshold;
                    if slow {
                        regressions.push(format!("{label}: median {delta:+.1}% (> {threshold}%)"));
                    }
                    out.push_str(&format!(
                        "{label:<40} {:>9.3} ms {:>9.3} ms {delta:>+7.1}%  {}\n",
                        o.median_ns.unwrap_or(0.0) / 1e6,
                        n.median_ns.unwrap_or(0.0) / 1e6,
                        if slow { "SLOWER" } else { "ok" }
                    ));
                }
                if let Some(delta) = pct_change(o.ess_per_sec, n.ess_per_sec) {
                    // Throughput: a *drop* is the regression.
                    let worse = delta < -threshold;
                    if worse {
                        regressions.push(format!(
                            "{label}: ess_per_sec {delta:+.1}% (< -{threshold}%)"
                        ));
                    }
                    out.push_str(&format!(
                        "{:<40} {:>12.1} {:>12.1} {delta:>+7.1}%  {}\n",
                        format!("{label} (ess/sec)"),
                        o.ess_per_sec.unwrap_or(0.0),
                        n.ess_per_sec.unwrap_or(0.0),
                        if worse { "SLOWER" } else { "ok" }
                    ));
                }
            }
            (Some(_), None) => {
                out.push_str(&format!("{label:<40} only in old report\n"));
            }
            (None, Some(_)) => {
                out.push_str(&format!("{label:<40} only in new report\n"));
            }
            (None, None) => {}
        }
    }
    out.push_str(&format!(
        "\n{} regression(s) beyond {threshold}% threshold\n",
        regressions.len()
    ));
    if check && !regressions.is_empty() {
        return Err(ArgError(format!(
            "bench regression check failed:\n  {}\n{out}",
            regressions.join("\n  ")
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    fn write(name: &str, json: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, json).unwrap();
        path
    }

    const OLD: &str = r#"{"benchmarks": {
        "gibbs/poisson": {"median_ns": 1e6, "ess_per_sec": 100.0},
        "gibbs/negbinom": {"median_ns": 2e6},
        "gone": {"median_ns": 5e5}
    }}"#;

    #[test]
    fn diff_reports_deltas_and_membership() {
        let old = write("srm_bench_old.json", OLD);
        let new = write(
            "srm_bench_new.json",
            r#"{"benchmarks": {
                "gibbs/poisson": {"median_ns": 1.05e6, "ess_per_sec": 98.0},
                "gibbs/negbinom": {"median_ns": 1.5e6},
                "fresh": {"median_ns": 1e5}
            }}"#,
        );
        let out = run(&raw(&[
            "bench",
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("gibbs/poisson"), "{out}");
        assert!(out.contains("+5.0%"), "{out}");
        assert!(out.contains("(ess/sec)"), "{out}");
        assert!(out.contains("-25.0%"), "{out}");
        assert!(out.contains("gone"), "{out}");
        assert!(out.contains("only in old report"), "{out}");
        assert!(out.contains("only in new report"), "{out}");
        assert!(out.contains("0 regression(s)"), "{out}");
    }

    #[test]
    fn check_fails_on_median_slowdown_beyond_threshold() {
        let old = write("srm_bench_check_old.json", OLD);
        let new = write(
            "srm_bench_check_new.json",
            r#"{"benchmarks": {"gibbs/poisson": {"median_ns": 1.5e6, "ess_per_sec": 100.0}}}"#,
        );
        let args = raw(&[
            "bench",
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--check",
        ]);
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("regression check failed"), "{err}");
        assert!(err.to_string().contains("gibbs/poisson"), "{err}");

        // A looser threshold lets the same pair pass.
        let mut loose = args;
        loose.extend(raw(&["--threshold", "60"]));
        assert!(run(&loose).is_ok());
    }

    #[test]
    fn check_fails_on_throughput_drop() {
        let old = write("srm_bench_tp_old.json", OLD);
        let new = write(
            "srm_bench_tp_new.json",
            r#"{"benchmarks": {"gibbs/poisson": {"median_ns": 1e6, "ess_per_sec": 50.0}}}"#,
        );
        let err = run(&raw(&[
            "bench",
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--check",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("ess_per_sec"), "{err}");
    }

    #[test]
    fn bad_usage_errors_cleanly() {
        assert!(run(&raw(&["bench"])).is_err());
        assert!(run(&raw(&["bench", "dance"])).is_err());
        assert!(run(&raw(&["bench", "diff", "one.json"])).is_err());
        assert!(run(&raw(&["bench", "diff", "a", "b", "--bogus"])).is_err());
        assert!(run(&raw(&["bench", "diff", "a", "b", "--threshold"])).is_err());
        let err = run(&raw(&["bench", "diff", "/no/old.json", "/no/new.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read bench report"));
    }

    #[test]
    fn malformed_reports_are_rejected() {
        let bad = write("srm_bench_bad.json", "not json");
        let good = write("srm_bench_good.json", OLD);
        assert!(run(&raw(&[
            "bench",
            "diff",
            bad.to_str().unwrap(),
            good.to_str().unwrap()
        ]))
        .is_err());
        let empty = write("srm_bench_empty.json", "{}");
        let err = run(&raw(&[
            "bench",
            "diff",
            empty.to_str().unwrap(),
            good.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no `benchmarks` object"), "{err}");
    }
}
