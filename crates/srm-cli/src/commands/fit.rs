//! `srm fit` — one Bayesian fit with full reporting.

use crate::args::{ArgError, Args};
use crate::commands::{load_data, parse_mcmc, parse_model, parse_prior};
use srm_core::{Fit, FitConfig};
use srm_mcmc::PosteriorSummary;

const FLAGS: &[&str] = &[
    "data", "model", "prior", "chains", "samples", "burn-in", "thin", "seed", "lambda-max",
    "alpha-max",
];
const SWITCHES: &[&str] = &["diagnostics"];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags or unreadable data.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, FLAGS, SWITCHES)?;
    let data = load_data(&args)?;
    let model = parse_model(&args)?;
    let prior = parse_prior(&args)?;
    let mcmc = parse_mcmc(&args)?;

    let fit = Fit::run(
        prior,
        model,
        &data,
        &FitConfig {
            mcmc,
            ..FitConfig::default()
        },
    );

    let (lo, hi) = PosteriorSummary::credible_interval(&fit.residual_draws, 0.05);
    let (hlo, hhi) = PosteriorSummary::hpd_interval(&fit.residual_draws, 0.05);
    let mut out = String::new();
    out.push_str(&format!(
        "data      : {} bugs over {} days\n",
        data.total(),
        data.len()
    ));
    out.push_str(&format!("model     : {} | prior: {}\n", model, prior.label()));
    out.push_str(&format!(
        "draws     : {} kept ({} chains)\n",
        fit.residual_draws.len(),
        mcmc.chains
    ));
    out.push_str("\nposterior of the residual bug count\n");
    out.push_str(&format!("  mean    : {:10.3}\n", fit.residual.mean));
    out.push_str(&format!("  median  : {:10.3}\n", fit.residual.median));
    out.push_str(&format!("  mode    : {:10.3}\n", fit.residual.mode));
    out.push_str(&format!("  sd      : {:10.3}\n", fit.residual.sd));
    out.push_str(&format!("  95% CI  : [{lo:.1}, {hi:.1}]\n"));
    out.push_str(&format!("  95% HPD : [{hlo:.1}, {hhi:.1}]\n"));
    out.push_str(&format!(
        "\nWAIC      : {:.3} (se {:.3}, p_waic {:.2})\n",
        fit.waic.total(),
        fit.waic.se(),
        fit.waic.p_waic()
    ));
    out.push_str(&format!("converged : {}\n", fit.converged()));

    if args.has_switch("diagnostics") {
        out.push_str("\nper-parameter diagnostics (PSRF | Geweke Z | ESS | MCSE)\n");
        for (name, d) in &fit.diagnostics {
            out.push_str(&format!(
                "  {name:10} {:8.4} {:8.2} {:10.0} {:10.4}\n",
                d.psrf, d.geweke_z, d.ess, d.mcse
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_csv() -> std::path::PathBuf {
        let path = std::env::temp_dir().join("srm_cli_fit_test.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "day,count").unwrap();
        for (day, count) in srm_data::datasets::musa_cc96()
            .truncated(30)
            .unwrap()
            .iter()
        {
            writeln!(f, "{day},{count}").unwrap();
        }
        path
    }

    #[test]
    fn fit_renders_summary() {
        let path = write_csv();
        let raw: Vec<String> = [
            "fit",
            "--data",
            path.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "300",
            "--burn-in",
            "100",
            "--diagnostics",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("posterior of the residual bug count"));
        assert!(out.contains("WAIC"));
        assert!(out.contains("PSRF"));
        assert!(out.contains("model0 | prior: poisson"));
    }
}
