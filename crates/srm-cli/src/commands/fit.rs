//! `srm fit` — one Bayesian fit with full reporting, or a whole
//! directory of fits via `--batch`.

use crate::args::{ArgError, Args};
use crate::commands::{load_data, parse_mcmc, parse_model, parse_prior};
use crate::obs::{with_obs_flags, with_obs_switches, Observability};
use srm_batch::{run_batch_traced, BatchSpec};
use srm_core::{Fit, FitConfig};
use srm_mcmc::runner::RunOptions;
use srm_mcmc::{AcceptanceSummary, FaultPlan, PosteriorSummary, RetryPolicy};
use srm_obs::RunManifest;

const FLAGS: &[&str] = &[
    "batch",
    "data",
    "dataset",
    "model",
    "prior",
    "chains",
    "samples",
    "burn-in",
    "thin",
    "seed",
    "lambda-max",
    "alpha-max",
    "max-retries",
    "inject-faults",
    "threads",
];
const SWITCHES: &[&str] = &["diagnostics"];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags, unreadable data, or when every
/// chain of the run is lost to faults.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, &with_obs_flags(FLAGS), &with_obs_switches(SWITCHES))?;
    if args.get("batch").is_some() {
        return run_batch_dir(&args);
    }
    let data = load_data(&args)?;
    let model = parse_model(&args)?;
    let prior = parse_prior(&args)?;
    let mcmc = parse_mcmc(&args)?;
    let obs = Observability::from_args(&args)?;
    obs.emit_run_start("fit", model.name(), prior.label(), mcmc.seed, &data);

    let inject: usize = args.get_parsed("inject-faults", 0usize)?;
    let threads: usize = args.get_parsed("threads", 0usize)?;
    let options = RunOptions {
        retry: RetryPolicy {
            max_retries: args.get_parsed("max-retries", 3usize)?,
        },
        fault_plan: if inject == 0 {
            FaultPlan::none()
        } else {
            let total_sweeps = mcmc.burn_in + mcmc.samples * mcmc.thin;
            FaultPlan::from_seed(mcmc.seed, mcmc.chains, total_sweeps, inject)
        },
        threads,
        checkpoint_every: args.get_parsed("checkpoint-every", 0usize)?,
        profiler: obs.profiler(),
    };

    // Install the profiler on this thread too, so main-thread phases
    // (WAIC scoring, summaries) land in the same profile as the
    // worker-thread chains.
    let profile_guard = srm_obs::profile::install(options.profiler.as_ref());
    let tolerant = Fit::try_run_traced(
        prior,
        model,
        &data,
        &FitConfig {
            mcmc,
            ..FitConfig::default()
        },
        &options,
        obs.recorder(),
    )
    .map_err(|e| ArgError(format!("fit failed: {e}")))?;
    drop(profile_guard);
    obs.finish_profile();
    let fit = &tolerant.fit;

    obs.finish_manifest(
        RunManifest {
            command: "fit".into(),
            model: model.name().into(),
            prior: prior.label().into(),
            seed: mcmc.seed,
            dataset_hash: srm_obs::dataset_hash(data.counts()),
            chains: mcmc.chains,
            burn_in: mcmc.burn_in,
            samples: mcmc.samples,
            thin: mcmc.thin,
            threads: srm_mcmc::effective_threads(threads, mcmc.chains),
            converged: Some(fit.converged()),
            waic: Some(fit.waic.total()),
            ..RunManifest::default()
        },
        fit.residual_draws.len() as u64,
    )?;

    let (lo, hi) = PosteriorSummary::credible_interval(&fit.residual_draws, 0.05);
    let (hlo, hhi) = PosteriorSummary::hpd_interval(&fit.residual_draws, 0.05);
    let mut out = String::new();
    out.push_str(&format!(
        "data      : {} bugs over {} days\n",
        data.total(),
        data.len()
    ));
    out.push_str(&format!(
        "model     : {} | prior: {}\n",
        model,
        prior.label()
    ));
    out.push_str(&format!(
        "draws     : {} kept ({} of {} chains)\n",
        fit.residual_draws.len(),
        fit.output.chains.len(),
        mcmc.chains
    ));
    out.push_str("\nposterior of the residual bug count\n");
    out.push_str(&format!("  mean    : {:10.3}\n", fit.residual.mean));
    out.push_str(&format!("  median  : {:10.3}\n", fit.residual.median));
    out.push_str(&format!("  mode    : {:10.3}\n", fit.residual.mode));
    out.push_str(&format!("  sd      : {:10.3}\n", fit.residual.sd));
    out.push_str(&format!("  95% CI  : [{lo:.1}, {hi:.1}]\n"));
    out.push_str(&format!("  95% HPD : [{hlo:.1}, {hhi:.1}]\n"));
    out.push_str(&format!(
        "\nWAIC      : {:.3} (se {:.3}, p_waic {:.2})\n",
        fit.waic.total(),
        fit.waic.se(),
        fit.waic.p_waic()
    ));
    out.push_str(&format!("converged : {}\n", fit.converged()));

    let acceptance = AcceptanceSummary::from_reports(&tolerant.chain_reports);
    if !acceptance.is_empty() {
        let listed: Vec<String> = acceptance
            .params
            .iter()
            .map(|p| format!("{} {:.1}%", p.parameter, p.rate() * 100.0))
            .collect();
        out.push_str(&format!("accepted  : {}\n", listed.join(" | ")));
    }

    if tolerant.is_degraded() || tolerant.total_retries() > 0 || inject > 0 {
        out.push_str("\nfault report (per chain)\n");
        for report in &tolerant.chain_reports {
            out.push_str(&format!("  {report}\n"));
        }
        let mut counters = std::collections::BTreeMap::<&str, usize>::new();
        for report in &tolerant.chain_reports {
            if let Some(fault) = &report.fault {
                *counters.entry(fault.kind()).or_insert(0) += 1;
            }
        }
        if counters.is_empty() {
            out.push_str("  fault counters: none\n");
        } else {
            let listed: Vec<String> = counters
                .iter()
                .map(|(kind, n)| format!("{kind} x{n}"))
                .collect();
            out.push_str(&format!("  fault counters: {}\n", listed.join(", ")));
        }
    }

    if args.has_switch("diagnostics") {
        out.push_str("\nper-parameter diagnostics (PSRF | Geweke Z | ESS | MCSE)\n");
        for (name, d) in &fit.diagnostics {
            out.push_str(&format!(
                "  {name:10} {:8.4} {:8.2} {:10.0} {:10.4}\n",
                d.psrf, d.geweke_z, d.ess, d.mcse
            ));
        }
    }
    Ok(out)
}

/// `srm fit --batch dir/` — one spec fanned over every CSV in a
/// directory through the columnar batch executor, with a per-item
/// exit table. Each item's fit is bit-identical to a lone
/// `srm fit --seed <derived>` on the same file.
fn run_batch_dir(args: &Args) -> Result<String, ArgError> {
    let dir = args.require("batch")?;
    if args.get("data").is_some() || args.get("dataset").is_some() {
        return Err(ArgError(
            "--batch replaces --data/--dataset: the directory IS the data".into(),
        ));
    }
    if args.get_parsed("inject-faults", 0usize)? != 0 {
        return Err(ArgError(
            "--inject-faults is a single-fit debugging tool; it does not compose with --batch"
                .into(),
        ));
    }
    let model = parse_model(args)?;
    let prior = parse_prior(args)?;
    let mcmc = parse_mcmc(args)?;
    let obs = Observability::from_args(args)?;

    let path = std::path::Path::new(dir);
    let load = srm_data::load_dir(path)
        .map_err(|e| ArgError(format!("cannot read batch directory {dir}: {e}")))?;
    if load.items.is_empty() {
        let detail = if load.has_errors() {
            let listed: Vec<String> = load.errors.iter().map(ToString::to_string).collect();
            format!("every CSV failed to load: {}", listed.join("; "))
        } else {
            "no CSV files".to_string()
        };
        return Err(ArgError(format!("batch directory {dir}: {detail}")));
    }

    let spec = BatchSpec {
        prior,
        model,
        config: FitConfig {
            mcmc,
            ..FitConfig::default()
        },
        options: RunOptions {
            retry: RetryPolicy {
                max_retries: args.get_parsed("max-retries", 3usize)?,
            },
            fault_plan: FaultPlan::none(),
            threads: args.get_parsed("threads", 0usize)?,
            checkpoint_every: 0,
            profiler: obs.profiler(),
        },
    };
    let batch_id = format!(
        "batch-{}",
        path.file_name()
            .map_or_else(|| "dir".into(), |n| n.to_string_lossy())
    );

    let profile_guard = srm_obs::profile::install(spec.options.profiler.as_ref());
    let report = run_batch_traced(&spec, &load.items, &batch_id, obs.recorder())
        .map_err(|e| ArgError(format!("batch failed: {e}")))?;
    drop(profile_guard);
    obs.finish_profile();

    let mut out = String::new();
    out.push_str(&format!(
        "batch     : {} dataset(s) from {dir}\n",
        report.items.len()
    ));
    out.push_str(&format!(
        "model     : {} | prior: {}\n",
        model,
        prior.label()
    ));
    out.push_str(&format!(
        "master    : seed {} | {} chains x {} samples\n",
        report.master_seed, mcmc.chains, mcmc.samples
    ));
    for err in &load.errors {
        out.push_str(&format!("warning   : skipped {err}\n"));
    }
    out.push_str(&format!(
        "\n  {:<20} {:>12} {:>8} {:>6} {:>12} {:>10} {:>12}\n",
        "label", "seed", "status", "cached", "resid.mean", "resid.sd", "waic"
    ));
    for item in &report.items {
        let (mean, sd, waic) = item.fit.as_ref().map_or_else(
            || ("-".to_string(), "-".to_string(), "-".to_string()),
            |f| {
                (
                    format!("{:.3}", f.fit.residual.mean),
                    format!("{:.3}", f.fit.residual.sd),
                    format!("{:.3}", f.fit.waic.total()),
                )
            },
        );
        out.push_str(&format!(
            "  {:<20} {:>12} {:>8} {:>6} {:>12} {:>10} {:>12}\n",
            item.label,
            item.seed,
            item.status.as_str(),
            if item.cached { "yes" } else { "no" },
            mean,
            sd,
            waic
        ));
        if let Some(error) = &item.error {
            out.push_str(&format!("      error: {error}\n"));
        }
    }
    out.push_str(&format!(
        "\nitems     : {} | failed {} | cache hits {} | skipped files {}\n",
        report.items.len(),
        report.failed(),
        report.cache_hits,
        load.errors.len()
    ));
    if report.all_failed() {
        return Err(ArgError(format!("batch failed: every item failed\n{out}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_csv() -> std::path::PathBuf {
        let path = std::env::temp_dir().join("srm_cli_fit_test.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "day,count").unwrap();
        for (day, count) in srm_data::datasets::musa_cc96()
            .truncated(30)
            .unwrap()
            .iter()
        {
            writeln!(f, "{day},{count}").unwrap();
        }
        path
    }

    #[test]
    fn fit_renders_summary() {
        let path = write_csv();
        let raw: Vec<String> = [
            "fit",
            "--data",
            path.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "300",
            "--burn-in",
            "100",
            "--diagnostics",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("posterior of the residual bug count"));
        assert!(out.contains("WAIC"));
        assert!(out.contains("PSRF"));
        assert!(out.contains("model0 | prior: poisson"));
        // Fault-free run with no injection: no fault section.
        assert!(!out.contains("fault report"));
    }

    #[test]
    fn fit_with_injected_faults_reports_counters() {
        let path = write_csv();
        let raw: Vec<String> = [
            "fit",
            "--data",
            path.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "200",
            "--burn-in",
            "80",
            "--seed",
            "9",
            "--inject-faults",
            "2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        // The plan cycles panic/nan-rate/slice kinds, so at most one
        // of the two chains is lost; the fit must still succeed and
        // name the faults it saw.
        let out = run(&raw).unwrap();
        assert!(out.contains("fault report (per chain)"));
        assert!(out.contains("fault counters:"));
        assert!(out.contains("posterior of the residual bug count"));
    }

    #[test]
    fn fit_writes_trace_and_manifest() {
        let path = write_csv();
        let trace = std::env::temp_dir().join("srm_cli_fit_trace.jsonl");
        let manifest = std::env::temp_dir().join("srm_cli_fit_manifest.json");
        let raw: Vec<String> = [
            "fit",
            "--data",
            path.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "200",
            "--burn-in",
            "80",
            "--seed",
            "11",
            "--inject-faults",
            "1",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            manifest.to_str().unwrap(),
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("accepted  :"), "no acceptance line in:\n{out}");

        // The trace holds typed events including the injection.
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().any(|l| l.contains("\"run-start\"")));
        assert!(text.lines().any(|l| l.contains("\"fault-injected\"")));
        assert!(text.lines().any(|l| l.contains("\"chain-report\"")));

        // The manifest carries the run identity and counters.
        let doc = srm_obs::json::parse(&std::fs::read_to_string(&manifest).unwrap()).unwrap();
        assert_eq!(doc.get("command").unwrap().as_str(), Some("fit"));
        assert_eq!(doc.get("model").unwrap().as_str(), Some("model0"));
        assert_eq!(doc.get("seed").unwrap().as_f64(), Some(11.0));
        assert_eq!(doc.get("faults_injected").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            doc.get("mcmc").unwrap().get("chains").unwrap().as_f64(),
            Some(2.0)
        );
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert!(
            phases
                .iter()
                .any(|p| p.get("phase").unwrap().as_str() == Some("sampling")),
            "manifest has no sampling phase"
        );
        assert!(doc.get("draws_per_sec").unwrap().as_f64() > Some(0.0));
        let chains = doc.get("chains_report").unwrap().as_arr().unwrap();
        assert_eq!(chains.len(), 2);
        // The injected panic loses one of the two chains, so no PSRF
        // is computable — the field must still be present (empty).
        assert!(doc.get("diagnostics").unwrap().as_arr().is_some());
        assert_eq!(
            doc.get("fault_counters")
                .unwrap()
                .get("chain-panicked")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    fn batch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("srm_cli_batch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_args(dir: &std::path::Path) -> Vec<String> {
        [
            "fit",
            "--batch",
            dir.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "150",
            "--burn-in",
            "50",
            "--seed",
            "7",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect()
    }

    #[test]
    fn batch_renders_per_item_table_and_warns_on_bad_files() {
        let dir = batch_dir("table");
        std::fs::write(dir.join("alpha.csv"), "1,5\n2,3\n3,4\n4,1\n5,2\n").unwrap();
        std::fs::write(dir.join("beta.csv"), "1,2\n2,2\n3,1\n4,0\n5,1\n6,1\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "1,5\n4,2\n").unwrap(); // day gap
        let out = run(&batch_args(&dir)).unwrap();
        assert!(out.contains("batch     : 2 dataset(s)"), "{out}");
        assert!(out.contains("alpha"), "{out}");
        assert!(out.contains("beta"), "{out}");
        assert!(out.contains("warning   : skipped broken.csv"), "{out}");
        assert!(
            out.contains("items     : 2 | failed 0 | cache hits 0"),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_item_matches_a_lone_fit_with_the_derived_seed() {
        let dir = batch_dir("derived");
        let csv = "1,5\n2,3\n3,4\n4,1\n5,2\n";
        std::fs::write(dir.join("only.csv"), csv).unwrap();
        let out = run(&batch_args(&dir)).unwrap();

        // Recompute the content-keyed seed the batch derived and fit
        // the same file alone with it: the summary statistics must
        // agree to the table's full printed precision.
        let data = srm_data::BugCountData::new(vec![5, 3, 4, 1, 2]).unwrap();
        let seed = srm_batch::item_seed(7, &data);
        assert!(out.contains(&format!(" {seed} ")), "{out}");
        let single = dir.join("only.csv");
        let raw: Vec<String> = [
            "fit",
            "--data",
            single.to_str().unwrap(),
            "--model",
            "model0",
            "--chains",
            "2",
            "--samples",
            "150",
            "--burn-in",
            "50",
            "--seed",
            &seed.to_string(),
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let lone = run(&raw).unwrap();
        let mean = lone
            .lines()
            .find(|l| l.starts_with("  mean"))
            .unwrap()
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .to_string();
        let sd = lone
            .lines()
            .find(|l| l.starts_with("  sd"))
            .unwrap()
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .to_string();
        assert!(out.contains(&mean), "mean {mean} not in:\n{out}");
        assert!(out.contains(&sd), "sd {sd} not in:\n{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_coalesces_duplicate_datasets_and_is_rerun_stable() {
        let dir = batch_dir("dup");
        let csv = "1,4\n2,2\n3,3\n4,1\n5,0\n6,2\n";
        std::fs::write(dir.join("twin_a.csv"), csv).unwrap();
        std::fs::write(dir.join("twin_b.csv"), csv).unwrap();
        let out = run(&batch_args(&dir)).unwrap();
        assert!(out.contains("cache hits 1"), "{out}");
        assert!(out.contains("yes"), "no cached item marker in:\n{out}");
        // Same directory, same spec: the whole table is reproducible.
        let again = run(&batch_args(&dir)).unwrap();
        assert_eq!(out, again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rejects_conflicting_flags_and_empty_dirs() {
        let dir = batch_dir("conflict");
        std::fs::write(dir.join("a.csv"), "1,1\n").unwrap();
        let mut raw = batch_args(&dir);
        raw.extend(["--dataset".to_owned(), "short_campaign_25".to_owned()]);
        let err = run(&raw).unwrap_err();
        assert!(err.0.contains("--batch replaces --data/--dataset"), "{err}");

        let mut faulty = batch_args(&dir);
        faulty.extend(["--inject-faults".to_owned(), "1".to_owned()]);
        let err = run(&faulty).unwrap_err();
        assert!(err.0.contains("does not compose with --batch"), "{err}");

        let empty = batch_dir("emptydir");
        let err = run(&batch_args(&empty)).unwrap_err();
        assert!(err.0.contains("no CSV files"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn failed_fit_appends_cli_diagnostic_to_trace() {
        let trace = std::env::temp_dir().join("srm_cli_fit_err_trace.jsonl");
        let _ = std::fs::remove_file(&trace);
        let raw: Vec<String> = [
            "fit",
            "--data",
            "/no/such/file.csv",
            "--trace-out",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let err = crate::run(&raw).unwrap_err();
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.contains("\"cli-diagnostic\""));
        // Single formatting path: the trace carries the exact line
        // the terminal shows.
        let doc = srm_obs::json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(
            doc.get("message").unwrap().as_str(),
            Some(crate::diagnostic_line(&err).as_str())
        );
        assert_eq!(doc.get("level").unwrap().as_str(), Some("error"));
    }
}
