//! The CLI subcommands.

pub mod bench;
pub mod fit;
pub mod predict;
pub mod sbc;
pub mod select;
pub mod serve;
pub mod simulate;
pub mod trace;
pub mod trend;
pub mod version;

use crate::args::{ArgError, Args};
use srm_data::BugCountData;
use srm_mcmc::gibbs::PriorSpec;
use srm_mcmc::runner::McmcConfig;
use srm_model::DetectionModel;

/// The help text shown by `srm help`.
#[must_use]
pub fn help_text() -> String {
    "srm — Bayesian estimation of the residual number of software bugs

USAGE:
    srm <command> [flags]

COMMANDS:
    fit       Fit one model/prior and report the residual-bug posterior
    select    WAIC comparison of all five detection models
    predict   Reliability and expected detections over a future horizon
    trend     Laplace trend test and dataset summary
    simulate  Generate synthetic bug-count data (CSV on stdout)
    sbc       Simulation-based calibration battery over (prior, curve) cells
    serve     Long-running HTTP estimation service (job queue + fit cache)
    trace     Analyse JSONL traces: summarize | diff | lint | profile
    bench     Compare benchmark reports: diff [--check]
    version   Print crate and schema versions
    help      Show this message

COMMON FLAGS:
    --data <file.csv>       day,count input data (fit/select/predict/trend)
    --batch <dir/>          fit every *.csv in a directory as one batch
                            (fit only; per-item seeds derive from --seed)
    --dataset <name>        bundled dataset instead of --data
                            (musa_cc96, decaying_growth_60, s_shaped_80,
                             short_campaign_25, plateau_100, late_surge_50,
                             ntds_26, tandem_20w, ohba_sshape_22w,
                             musa_ss3_28)
    --model model0..model4  detection model        [default: model1]
    --prior poisson|negbinom                        [default: poisson]
    --chains N --samples N --burn-in N --thin N --seed N
    --threads N             worker threads for parallel chains (fit/select)
                            [default: 0 = min(chains, cores)]; any value
                            yields bit-identical results for a given seed
    --lambda-max X --alpha-max X
    --max-retries N         per-chain sweep retries on faults (fit) [default: 3]
    --inject-faults N       inject N seed-deterministic faults (fit; testing)

OBSERVABILITY (fit/select/trend):
    --trace-out <run.jsonl>    typed JSONL event stream of the run
    --metrics-out <run.json>   run manifest: seed, dataset hash, timings,
                               acceptance, fault/retry counters, diagnostics
    --progress                 throttled per-chain progress lines on stderr
    --verbosity 0|1|2          progress detail                  [default: 1]
    --checkpoint-every K       streaming convergence checkpoints every K
                               sweeps (0 = off; never changes the draws)
    --profile                  hierarchical phase-time profile: table on
                               stderr, `profile` event in the trace
                               (never changes the draws)

TRACE ANALYSIS (srm trace):
    srm trace summarize --file run.jsonl     counts, phase timings, and the
                                             convergence trajectory
    srm trace diff --a run1.jsonl --b run2.jsonl
    srm trace lint --file run.jsonl --strict schema validation (CI gate)
    srm trace profile --file run.jsonl --top N
                                             phase-time table from a
                                             profiled run's trace

CALIBRATION (srm sbc):
    --grid <spec.json>      grid spec: days, priors, models, hyper-prior
                            limits, bins, alpha  [default: full 5x2 battery]
    --reps R                replications per (prior, curve) cell [default: 20]
    --out <sbc.json>        deterministic report (byte-identical per seed)
    --check                 exit non-zero when any cell fails the
                            chi-square rank-uniformity gate (CI gate)
    --inject-bias X         add X to posterior N draws before ranking
                            (testing: proves the gate trips)
    --chains/--samples/--burn-in/--thin/--seed/--threads as above
                            [sbc defaults: 2 chains, 500 samples,
                             300 burn-in, seed 2024]

BENCH REGRESSION (srm bench):
    srm bench diff OLD.json NEW.json [--check] [--threshold PCT]
                                             compare BENCH_mcmc.json reports;
                                             --check exits non-zero on any
                                             regression beyond PCT% (CI gate)

SERVING (srm serve):
    --addr <ip:port>        bind address            [default: 127.0.0.1:8377]
                            (port 0 picks an ephemeral port)
    --workers N             job worker threads                  [default: 2]
    --queue-capacity N      bounded queue; overflow gets 429    [default: 16]
    --trace-dir <dir>       per-job JSONL traces and run manifests
    --port-file <file>      write the bound port here (for scripts)
    --retry-after N         Retry-After seconds on 429          [default: 1]
    --job-history N         terminal job records retained       [default: 1024]
    --cache-capacity N      cached result documents (LRU)       [default: 256]
    --state-dir <dir>       crash-durable state: WAL + snapshots; jobs and
                            cache survive kill -9 and are recovered on boot
    --wal-sync always|off   fsync the WAL on every append       [default: off]
                            (off survives SIGKILL; always also power loss)
    --snapshot-every N      WAL records between snapshots       [default: 256]
    --shards N              job-store/cache lock shards         [default: 8]
    --http-handlers N       reusable connection handler threads [default: 8]
    --conn-backlog N        accepted-connection queue; overflow
                            is shed with 503                    [default: 256]

EXAMPLES:
    srm fit --data counts.csv --model model1 --prior poisson
    srm fit --data counts.csv --trace-out run.jsonl --metrics-out run.json
    srm fit --batch projects/ --model model0 --seed 7
    srm simulate --bugs 200 --days 60 --p 0.05 --seed 1 > synth.csv
    srm serve --addr 127.0.0.1:0 --port-file srm.port --trace-dir runs/
"
    .to_owned()
}

/// Loads input data: `--data <file.csv>` or `--dataset <name>` (one of
/// the bundled named datasets). Exactly one must be given.
pub(crate) fn load_data(args: &Args) -> Result<BugCountData, ArgError> {
    match (args.get("data"), args.get("dataset")) {
        (Some(_), Some(_)) => Err(ArgError(
            "`--data` and `--dataset` are mutually exclusive".into(),
        )),
        (Some(path), None) => {
            let file = std::fs::File::open(path)
                .map_err(|e| ArgError(format!("cannot open `{path}`: {e}")))?;
            srm_data::csv::read_counts(file)
                .map_err(|e| ArgError(format!("bad data in `{path}`: {e}")))
        }
        (None, Some(name)) => srm_data::datasets::all_named()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d)
            .ok_or_else(|| {
                let names: Vec<&str> = srm_data::datasets::all_named()
                    .into_iter()
                    .map(|(n, _)| n)
                    .collect();
                ArgError(format!(
                    "unknown dataset `{name}` (one of: {})",
                    names.join(", ")
                ))
            }),
        (None, None) => Err(ArgError(
            "missing required flag `--data` (or `--dataset <name>`)".into(),
        )),
    }
}

/// Parses `--model`.
pub(crate) fn parse_model(args: &Args) -> Result<DetectionModel, ArgError> {
    let name = args.get("model").unwrap_or("model1");
    DetectionModel::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| ArgError(format!("unknown model `{name}` (model0..model4)")))
}

/// Parses `--prior` plus its limit flag.
pub(crate) fn parse_prior(args: &Args) -> Result<PriorSpec, ArgError> {
    match args.get("prior").unwrap_or("poisson") {
        "poisson" => Ok(PriorSpec::Poisson {
            lambda_max: args.get_parsed("lambda-max", 2_000.0)?,
        }),
        "negbinom" => Ok(PriorSpec::NegBinomial {
            alpha_max: args.get_parsed("alpha-max", 100.0)?,
        }),
        other => Err(ArgError(format!(
            "unknown prior `{other}` (poisson|negbinom)"
        ))),
    }
}

/// Parses the MCMC run-length flags, rejecting configurations the
/// sampler cannot run (zero chains, zero samples, zero thinning).
pub(crate) fn parse_mcmc(args: &Args) -> Result<McmcConfig, ArgError> {
    let mcmc = McmcConfig {
        chains: args.get_parsed("chains", 4usize)?,
        burn_in: args.get_parsed("burn-in", 1_000usize)?,
        samples: args.get_parsed("samples", 4_000usize)?,
        thin: args.get_parsed("thin", 1usize)?,
        seed: args.get_parsed("seed", 2_024u64)?,
    };
    for (flag, value) in [
        ("chains", mcmc.chains),
        ("samples", mcmc.samples),
        ("thin", mcmc.thin),
    ] {
        if value == 0 {
            return Err(ArgError(format!("`--{flag}` must be at least 1")));
        }
    }
    Ok(mcmc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_from(parts: &[&str]) -> Args {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(
            &raw,
            &[
                "data",
                "dataset",
                "model",
                "prior",
                "chains",
                "samples",
                "burn-in",
                "thin",
                "seed",
                "lambda-max",
                "alpha-max",
            ],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn model_and_prior_defaults() {
        let args = args_from(&["fit"]);
        assert_eq!(parse_model(&args).unwrap(), DetectionModel::PadgettSpurrier);
        assert!(matches!(
            parse_prior(&args).unwrap(),
            PriorSpec::Poisson { lambda_max } if lambda_max == 2_000.0
        ));
    }

    #[test]
    fn explicit_model_and_prior() {
        let args = args_from(&[
            "fit",
            "--model",
            "model3",
            "--prior",
            "negbinom",
            "--alpha-max",
            "40",
        ]);
        assert_eq!(parse_model(&args).unwrap(), DetectionModel::Pareto);
        assert!(matches!(
            parse_prior(&args).unwrap(),
            PriorSpec::NegBinomial { alpha_max } if alpha_max == 40.0
        ));
    }

    #[test]
    fn rejects_unknown_model_and_prior() {
        assert!(parse_model(&args_from(&["fit", "--model", "model9"])).is_err());
        assert!(parse_prior(&args_from(&["fit", "--prior", "cauchy"])).is_err());
    }

    #[test]
    fn mcmc_flags_round_trip() {
        let args = args_from(&[
            "fit",
            "--chains",
            "2",
            "--samples",
            "100",
            "--burn-in",
            "50",
            "--seed",
            "9",
        ]);
        let mcmc = parse_mcmc(&args).unwrap();
        assert_eq!(mcmc.chains, 2);
        assert_eq!(mcmc.samples, 100);
        assert_eq!(mcmc.burn_in, 50);
        assert_eq!(mcmc.seed, 9);
        assert_eq!(mcmc.thin, 1);
    }

    #[test]
    fn zero_run_lengths_rejected() {
        for flag in ["--chains", "--samples", "--thin"] {
            let err = parse_mcmc(&args_from(&["fit", flag, "0"])).unwrap_err();
            assert!(
                err.to_string().contains("must be at least 1"),
                "{flag}: {err}"
            );
        }
    }

    #[test]
    fn missing_data_file_reported() {
        let args = args_from(&["fit", "--data", "/no/such/file.csv"]);
        let err = load_data(&args).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
    }

    #[test]
    fn every_registry_dataset_resolves_by_name() {
        for (name, data) in srm_data::datasets::all_named() {
            let args = args_from(&["fit", "--dataset", name]);
            let loaded = load_data(&args).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(loaded.total(), data.total(), "{name}");
            assert_eq!(loaded.len(), data.len(), "{name}");
        }
    }

    #[test]
    fn unknown_dataset_error_lists_the_registry() {
        let args = args_from(&["fit", "--dataset", "no_such_series"]);
        let err = load_data(&args).unwrap_err().to_string();
        assert!(err.contains("unknown dataset `no_such_series`"), "{err}");
        for name in [
            "musa_cc96",
            "ntds_26",
            "tandem_20w",
            "ohba_sshape_22w",
            "musa_ss3_28",
        ] {
            assert!(err.contains(name), "error should list {name}: {err}");
        }
    }

    #[test]
    fn help_mentions_all_commands() {
        let h = help_text();
        for cmd in ["fit", "select", "predict", "trend", "simulate", "sbc"] {
            assert!(h.contains(cmd), "missing {cmd}");
        }
    }
}
