//! `srm predict` — release-readiness prediction: reliability and
//! expected detections over a future horizon.

use crate::args::{ArgError, Args};
use crate::commands::{load_data, parse_mcmc, parse_model, parse_prior};
use srm_core::{predict_from_fit, Fit, FitConfig};

const FLAGS: &[&str] = &[
    "data",
    "dataset",
    "model",
    "prior",
    "horizon",
    "chains",
    "samples",
    "burn-in",
    "thin",
    "seed",
    "lambda-max",
    "alpha-max",
];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags or unreadable data.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, FLAGS, &[])?;
    let data = load_data(&args)?;
    let model = parse_model(&args)?;
    let prior = parse_prior(&args)?;
    let mcmc = parse_mcmc(&args)?;
    let horizon: usize = args.get_parsed("horizon", 30usize)?;
    if horizon == 0 {
        return Err(ArgError("`--horizon` must be positive".into()));
    }

    let fit = Fit::run(
        prior,
        model,
        &data,
        &FitConfig {
            mcmc,
            ..FitConfig::default()
        },
    );

    let prediction = predict_from_fit(&fit, &data, horizon)
        .map_err(|e| ArgError(format!("prediction failed: {e}")))?;
    let curve = &prediction.reliability;
    let expected = prediction.expected_detections;

    let mut out = String::new();
    out.push_str(&format!(
        "posterior residual after day {}: mean {:.2}, sd {:.2}\n",
        data.len(),
        fit.residual.mean,
        fit.residual.sd
    ));
    out.push_str(&format!(
        "expected detections in the next {horizon} days: {expected:.2}\n\n"
    ));
    out.push_str("reliability R(h) = P(no detection within h days):\n");
    for (h, r) in curve.iter().enumerate() {
        if (h + 1) % 5 == 0 || h == 0 || h + 1 == horizon {
            out.push_str(&format!("  h = {:3}: {:.4}\n", h + 1, r));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn predict_reports_reliability() {
        let path = std::env::temp_dir().join("srm_cli_predict_test.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        for (day, count) in srm_data::datasets::musa_cc96().iter() {
            writeln!(f, "{day},{count}").unwrap();
        }
        let raw: Vec<String> = [
            "predict",
            "--data",
            path.to_str().unwrap(),
            "--model",
            "model1",
            "--horizon",
            "10",
            "--chains",
            "1",
            "--samples",
            "300",
            "--burn-in",
            "100",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("reliability R(h)"));
        assert!(out.contains("h =  10"));
    }

    #[test]
    fn zero_horizon_rejected() {
        let raw: Vec<String> = ["predict", "--data", "x.csv", "--horizon", "0"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        // The data flag is checked after horizon parsing? No: data is
        // loaded first, so use an existing file to reach the check.
        let path = std::env::temp_dir().join("srm_cli_predict_zero.csv");
        std::fs::write(&path, "1,2\n2,1\n").unwrap();
        let raw2: Vec<String> = [
            "predict",
            "--data",
            path.to_str().unwrap(),
            "--horizon",
            "0",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        assert!(run(&raw2).is_err());
        let _ = raw;
    }
}
