//! `srm sbc` — the simulation-based calibration battery.

use crate::args::{ArgError, Args};
use crate::obs::{with_obs_flags, with_obs_switches, Observability};
use srm_mcmc::runner::McmcConfig;
use srm_obs::{Event, RunManifest};
use srm_sbc::{run_sbc, GridSpec, SbcConfig};

const FLAGS: &[&str] = &[
    "grid",
    "reps",
    "out",
    "threads",
    "chains",
    "samples",
    "burn-in",
    "thin",
    "seed",
    "inject-bias",
];
const SWITCHES: &[&str] = &["check"];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags, an unreadable or invalid grid
/// spec, an unwritable `--out` path — and, under `--check`, when any
/// cell fails the uniformity gate (after the report is written), so
/// the process exits nonzero for CI.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, &with_obs_flags(FLAGS), &with_obs_switches(SWITCHES))?;
    let grid = load_grid(&args)?;
    let config = SbcConfig {
        grid,
        reps: args.get_parsed("reps", 20usize)?,
        mcmc: McmcConfig {
            chains: args.get_parsed("chains", 2usize)?,
            burn_in: args.get_parsed("burn-in", 300usize)?,
            samples: args.get_parsed("samples", 500usize)?,
            thin: args.get_parsed("thin", 1usize)?,
            seed: args.get_parsed("seed", 2024u64)?,
        },
        threads: args.get_parsed("threads", 0usize)?,
        inject_bias: args.get_parsed("inject-bias", 0.0f64)?,
    };

    let obs = Observability::from_args(&args)?;
    let models: Vec<&str> = config.grid.models.iter().map(|m| m.name()).collect();
    let priors: Vec<&str> = config.grid.priors.iter().map(|p| p.label()).collect();
    if obs.recorder().enabled() {
        // The battery generates its own data per replication, so the
        // run identity hashes an empty series.
        obs.recorder().record(&Event::RunStart {
            command: "sbc".into(),
            model: models.join("+"),
            prior: priors.join("+"),
            seed: config.mcmc.seed,
            dataset_hash: srm_obs::dataset_hash(&[]),
        });
    }

    let report =
        run_sbc(&config, obs.recorder()).map_err(|e| ArgError(format!("sbc failed: {e}")))?;

    let document = report.to_value().to_json_pretty();
    if let Some(path) = args.get("out") {
        std::fs::write(path, &document)
            .map_err(|e| ArgError(format!("cannot write `{path}`: {e}")))?;
    }

    let successes: usize = report.cells.iter().map(|c| c.reps - c.failures).sum();
    obs.finish_manifest(
        RunManifest {
            command: "sbc".into(),
            model: models.join("+"),
            prior: priors.join("+"),
            seed: config.mcmc.seed,
            dataset_hash: srm_obs::dataset_hash(&[]),
            chains: config.mcmc.chains,
            burn_in: config.mcmc.burn_in,
            samples: config.mcmc.samples,
            thin: config.mcmc.thin,
            threads: config.threads,
            converged: Some(report.all_passed()),
            ..RunManifest::default()
        },
        successes as u64,
    )?;

    let mut out = String::new();
    out.push_str(&format!(
        "sbc battery: {} cells x {} reps, {} bins, alpha {}\n",
        report.cells.len(),
        report.reps,
        report.bins,
        report.alpha
    ));
    out.push_str(&format!(
        "mcmc       : {} chains, {} burn-in, {} samples, seed {}\n\n",
        config.mcmc.chains, config.mcmc.burn_in, config.mcmc.samples, config.mcmc.seed
    ));
    out.push_str(&report.summary_table());
    if args.get("out").is_some() {
        out.push_str(&format!(
            "report     : {}\n",
            args.get("out").unwrap_or_default()
        ));
    }

    if args.has_switch("check") && !report.all_passed() {
        let failed: Vec<String> = report
            .cells
            .iter()
            .filter(|c| !c.passed)
            .map(|c| format!("{}/{}", c.prior, c.model))
            .collect();
        return Err(ArgError(format!(
            "sbc calibration gate failed for {}\n{out}",
            failed.join(", ")
        )));
    }
    Ok(out)
}

/// Loads `--grid spec.json` (defaults to the full battery grid).
fn load_grid(args: &Args) -> Result<GridSpec, ArgError> {
    let Some(path) = args.get("grid") else {
        return Ok(GridSpec::default());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read grid spec `{path}`: {e}")))?;
    let doc = srm_obs::json::parse(&text)
        .map_err(|e| ArgError(format!("bad JSON in grid spec `{path}`: {e}")))?;
    GridSpec::from_value(&doc).map_err(|e| ArgError(format!("bad grid spec `{path}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_grid(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    fn base_args(grid: &std::path::Path, extra: &[&str]) -> Vec<String> {
        let mut raw = vec![
            "sbc".to_owned(),
            "--grid".to_owned(),
            grid.to_str().unwrap_or_default().to_owned(),
            "--reps".to_owned(),
            "4".to_owned(),
            "--chains".to_owned(),
            "2".to_owned(),
            "--samples".to_owned(),
            "40".to_owned(),
            "--burn-in".to_owned(),
            "40".to_owned(),
            "--seed".to_owned(),
            "31".to_owned(),
        ];
        raw.extend(extra.iter().map(|s| (*s).to_owned()));
        raw
    }

    #[test]
    fn sbc_renders_summary_and_writes_byte_identical_reports() {
        let grid = write_grid(
            "srm_cli_sbc_grid.json",
            r#"{"models": ["model0"], "priors": ["poisson"], "days": 10,
                "lambda_max": 40, "bins": 4}"#,
        );
        let out_a = std::env::temp_dir().join("srm_cli_sbc_a.json");
        let out_b = std::env::temp_dir().join("srm_cli_sbc_b.json");
        let summary = run(&base_args(
            &grid,
            &["--out", out_a.to_str().unwrap_or_default()],
        ))
        .unwrap_or_else(|e| panic!("sbc failed: {e}"));
        assert!(summary.contains("sbc battery: 1 cells x 4 reps"));
        assert!(summary.contains("poisson/model0"));
        run(&base_args(
            &grid,
            &["--out", out_b.to_str().unwrap_or_default()],
        ))
        .unwrap_or_else(|e| panic!("sbc rerun failed: {e}"));
        let a = std::fs::read(&out_a).unwrap();
        let b = std::fs::read(&out_b).unwrap();
        assert_eq!(a, b, "same-seed reruns must be byte-identical");
        // The report parses and carries the grid echo.
        let doc = srm_obs::json::parse(std::str::from_utf8(&a).unwrap()).unwrap();
        assert_eq!(doc.get("master_seed").and_then(|v| v.as_f64()), Some(31.0));
    }

    #[test]
    fn check_fails_on_injected_bias_but_still_writes_the_report() {
        let grid = write_grid(
            "srm_cli_sbc_bias_grid.json",
            r#"{"models": ["model0"], "priors": ["poisson"], "days": 10,
                "lambda_max": 40, "bins": 4}"#,
        );
        let out = std::env::temp_dir().join("srm_cli_sbc_bias.json");
        let _ = std::fs::remove_file(&out);
        let err = run(&base_args(
            &grid,
            &[
                "--reps",
                "16",
                "--inject-bias",
                "1e6",
                "--check",
                "--out",
                out.to_str().unwrap_or_default(),
            ],
        ))
        .unwrap_err();
        assert!(err.0.contains("calibration gate failed"), "{}", err.0);
        // The report landed on disk before the gate returned the error.
        let doc = srm_obs::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            doc.get("all_passed"),
            Some(&srm_obs::json::Value::Bool(false))
        );
    }

    #[test]
    fn bad_grid_specs_are_clean_errors() {
        let raw: Vec<String> = ["sbc", "--grid", "/no/such/spec.json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run(&raw).unwrap_err().0.contains("cannot read grid spec"));

        let grid = write_grid("srm_cli_sbc_bad_grid.json", r#"{"models": ["model9"]}"#);
        let raw: Vec<String> = ["sbc", "--grid", grid.to_str().unwrap_or_default()]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run(&raw).unwrap_err().0.contains("unknown model"));
    }

    #[test]
    fn sbc_emits_sbc_events_to_the_trace() {
        let grid = write_grid(
            "srm_cli_sbc_trace_grid.json",
            r#"{"models": ["model0"], "priors": ["poisson"], "days": 10,
                "lambda_max": 40, "bins": 4}"#,
        );
        let trace = std::env::temp_dir().join("srm_cli_sbc_trace.jsonl");
        let _ = std::fs::remove_file(&trace);
        run(&base_args(
            &grid,
            &["--trace-out", trace.to_str().unwrap_or_default()],
        ))
        .unwrap_or_else(|e| panic!("sbc failed: {e}"));
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().any(|l| l.contains("\"run-start\"")));
        assert!(text.lines().any(|l| l.contains("\"sbc-cell-start\"")));
        assert!(text.lines().any(|l| l.contains("\"sbc-rep-done\"")));
        assert!(text.lines().any(|l| l.contains("\"sbc-cell-done\"")));
    }
}
