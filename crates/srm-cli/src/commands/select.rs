//! `srm select` — WAIC comparison across the five detection models.

use crate::args::{ArgError, Args};
use crate::commands::{load_data, parse_mcmc, parse_prior};
use crate::obs::{with_obs_flags, with_obs_switches, Observability};
use srm_mcmc::gibbs::GibbsSampler;
use srm_mcmc::runner::RunOptions;
use srm_model::{DetectionModel, ZetaBounds};
use srm_obs::RunManifest;
use srm_report::Table;
use srm_select::waic::waic_parallel_traced;

const FLAGS: &[&str] = &[
    "data",
    "dataset",
    "prior",
    "chains",
    "samples",
    "burn-in",
    "thin",
    "seed",
    "lambda-max",
    "alpha-max",
    "theta-max",
    "threads",
];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags or unreadable data.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, &with_obs_flags(FLAGS), &with_obs_switches(&[]))?;
    let data = load_data(&args)?;
    let prior = parse_prior(&args)?;
    let mcmc = parse_mcmc(&args)?;
    let theta_max: f64 = args.get_parsed("theta-max", 10.0)?;
    let bounds = ZetaBounds {
        theta_max,
        gamma_max: theta_max.max(1.0),
    };
    let threads: usize = args.get_parsed("threads", 0usize)?;
    let mut options = RunOptions::with_threads(threads);
    options.checkpoint_every = args.get_parsed("checkpoint-every", 0usize)?;
    let obs = Observability::from_args(&args)?;
    options.profiler = obs.profiler();
    obs.emit_run_start("select", "all", prior.label(), mcmc.seed, &data);
    // Main-thread install so WAIC scoring shares the workers' sink.
    let profile_guard = srm_obs::profile::install(options.profiler.as_ref());

    let mut table = Table::new(
        &format!(
            "WAIC model comparison — {} prior ({} bugs / {} days)",
            prior.label(),
            data.total(),
            data.len()
        ),
        &["WAIC", "se", "T_k", "V_k"],
    );
    let mut best = (DetectionModel::Constant, f64::INFINITY);
    for model in DetectionModel::ALL {
        let sampler = GibbsSampler::new(prior, model, bounds, &data);
        let waic = waic_parallel_traced(&sampler, &mcmc, &options, obs.recorder())
            .map_err(|e| ArgError(format!("select failed on {model}: {e}")))?;
        if waic.total() < best.1 {
            best = (model, waic.total());
        }
        table.row(
            model.name(),
            &[
                waic.total(),
                waic.se(),
                waic.learning_loss,
                waic.functional_variance,
            ],
        );
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nbest model: {} (WAIC {:.3}); smaller is better\n",
        best.0, best.1
    ));
    drop(profile_guard);
    obs.finish_profile();

    obs.finish_manifest(
        RunManifest {
            command: "select".into(),
            model: best.0.name().into(),
            prior: prior.label().into(),
            seed: mcmc.seed,
            dataset_hash: srm_obs::dataset_hash(data.counts()),
            chains: mcmc.chains,
            burn_in: mcmc.burn_in,
            samples: mcmc.samples,
            thin: mcmc.thin,
            threads: srm_mcmc::effective_threads(threads, mcmc.chains),
            waic: Some(best.1),
            ..RunManifest::default()
        },
        (mcmc.samples * mcmc.chains * DetectionModel::ALL.len()) as u64,
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn select_ranks_models() {
        let path = std::env::temp_dir().join("srm_cli_select_test.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        for (day, count) in srm_data::datasets::musa_cc96()
            .truncated(48)
            .unwrap()
            .iter()
        {
            writeln!(f, "{day},{count}").unwrap();
        }
        let raw: Vec<String> = [
            "select",
            "--data",
            path.to_str().unwrap(),
            "--chains",
            "1",
            "--samples",
            "300",
            "--burn-in",
            "100",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("model4"));
        assert!(out.contains("best model"));
    }
}
