//! `srm serve` — run the long-lived estimation service.
//!
//! Binds the srm-serve HTTP server, writes the chosen port to
//! `--port-file` (so scripts can bind port 0 and discover the real
//! port), and blocks until SIGTERM/SIGINT. Shutdown is graceful: the
//! listener stops, every accepted job finishes, then the drain
//! summary is printed.
//!
//! With `--state-dir` the server is also crash-durable: completed
//! jobs, the fit cache, and in-flight work are logged to a WAL and
//! recovered after a kill — see the srm-serve `store` module.
//!
//! Request correlation (DESIGN.md §17): `--access-log FILE` writes
//! one JSONL line per request with the trace id and a latency
//! breakdown (rotated at `--access-log-max-mb`), and
//! `--flight-recorder` keeps a bounded in-memory ring of recent
//! events (`--flightrec-capacity` per thread) that is dumped to the
//! state dir on panic, engine failure, drain, or on demand via
//! `POST /v1/debug/flightrec`.

use crate::args::{ArgError, Args};
use srm_serve::{signal, Server, ServerConfig, ServerState};
use srm_store::SyncPolicy;

const FLAGS: &[&str] = &[
    "addr",
    "workers",
    "queue-capacity",
    "trace-dir",
    "port-file",
    "retry-after",
    "job-history",
    "cache-capacity",
    "state-dir",
    "wal-sync",
    "snapshot-every",
    "shards",
    "http-handlers",
    "conn-backlog",
    "access-log",
    "access-log-max-mb",
    "flightrec-capacity",
];

const SWITCHES: &[&str] = &["flight-recorder"];

/// Runs the subcommand. Blocks until a termination signal arrives.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags or when the listener cannot
/// bind.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, FLAGS, SWITCHES)?;
    let config = build_config(&args)?;
    serve(config, args.get("port-file"))
}

/// Maps parsed flags onto a [`ServerConfig`]; split from [`run`] so
/// tests can check the mapping without binding a listener.
fn build_config(args: &Args) -> Result<ServerConfig, ArgError> {
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8377").to_owned(),
        workers: args.get_parsed("workers", 2usize)?.max(1),
        queue_capacity: args.get_parsed("queue-capacity", 16usize)?,
        trace_dir: args.get("trace-dir").map(str::to_owned),
        retry_after_secs: args.get_parsed("retry-after", 1u64)?,
        job_history_limit: args.get_parsed("job-history", 1_024usize)?.max(1),
        cache_capacity: args.get_parsed("cache-capacity", 256usize)?.max(1),
        state_dir: args.get("state-dir").map(str::to_owned),
        wal_sync: SyncPolicy::parse(args.get("wal-sync").unwrap_or("off")).map_err(ArgError)?,
        snapshot_every: args
            .get_parsed("snapshot-every", srm_serve::store::DEFAULT_SNAPSHOT_EVERY)?
            .max(1),
        shards: args
            .get_parsed("shards", srm_serve::job::DEFAULT_SHARDS)?
            .max(1),
        http_handlers: args.get_parsed("http-handlers", 8usize)?.max(1),
        conn_backlog: args.get_parsed("conn-backlog", 256usize)?.max(1),
        access_log: args.get("access-log").map(str::to_owned),
        access_log_max_bytes: args
            .get_parsed(
                "access-log-max-mb",
                srm_serve::DEFAULT_ACCESS_LOG_MAX_BYTES / (1024 * 1024),
            )?
            .max(1)
            * 1024
            * 1024,
        flight_recorder: args.has_switch("flight-recorder"),
        flightrec_capacity: args
            .get_parsed("flightrec-capacity", srm_obs::DEFAULT_FLIGHTREC_CAPACITY)?
            .max(1),
        watch_signals: true,
        gate: None,
    })
}

/// Starts the server and blocks until the process-wide signal flag
/// raises; split from [`run`] so tests can drive it with an ephemeral
/// port and a programmatic shutdown.
pub(crate) fn serve(config: ServerConfig, port_file: Option<&str>) -> Result<String, ArgError> {
    // Clear any stale flag first: a handler is not installed yet, so
    // a real signal in this window still takes the default action.
    signal::reset();
    signal::install_handlers();
    let server =
        Server::start(config).map_err(|e| ArgError(format!("cannot start server: {e}")))?;
    let addr = server.addr();
    if let Some(path) = port_file {
        // Atomic (tmp + rename): a watcher polling the file never
        // observes a half-written port.
        srm_store::atomic_write_file(
            std::path::Path::new(path),
            format!("{}\n", addr.port()).as_bytes(),
        )
        .map_err(|e| ArgError(format!("cannot write port file `{path}`: {e}")))?;
    }
    eprintln!("srm serve: listening on http://{addr} (SIGTERM/SIGINT to drain)");
    let state = server.join();
    Ok(summary(&state))
}

fn summary(state: &ServerState) -> String {
    let (queued, running, done, failed, cancelled) = state.store.counts();
    let mut out = format!(
        "srm serve: drained and stopped\n\
         jobs      : {done} done, {failed} failed, {cancelled} cancelled, \
         {queued} queued, {running} running\n\
         cache     : {} hits, {} misses, {} entries\n\
         rejected  : {} (queue full)\n",
        state.cache.hits(),
        state.cache.misses(),
        state.cache.len(),
        state.metrics.jobs_rejected.get(),
    );
    if let Some(wal) = state.wal_stats() {
        out.push_str(&format!(
            "store     : {} wal records appended, {} snapshots, {} errors\n",
            wal.appended, wal.snapshots, wal.errors,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    #[test]
    fn serves_until_signalled_and_prints_drain_summary() {
        let port_file = std::env::temp_dir().join(format!("srm_serve_port_{}", std::process::id()));
        let port_path = port_file.to_str().unwrap().to_owned();
        let handle = std::thread::spawn(move || {
            serve(
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    watch_signals: true,
                    ..ServerConfig::default()
                },
                Some(&port_path),
            )
        });

        // Discover the ephemeral port the way scripts do.
        let deadline = Instant::now() + Duration::from_secs(10);
        let port: u16 = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "port file never appeared");
            std::thread::sleep(Duration::from_millis(10));
        };

        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: srm\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("crate_version"), "{response}");

        // A raised signal flag is exactly what SIGTERM would leave.
        signal::request();
        let out = handle.join().unwrap().unwrap();
        signal::reset();
        assert!(out.contains("drained and stopped"), "{out}");
        assert!(out.contains("cache"), "{out}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn maps_tracing_flags_onto_server_config() {
        let raw: Vec<String> = [
            "serve",
            "--access-log",
            "/tmp/access.jsonl",
            "--access-log-max-mb",
            "4",
            "--flight-recorder",
            "--flightrec-capacity",
            "128",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let args = Args::parse(&raw, FLAGS, SWITCHES).unwrap();
        let config = build_config(&args).unwrap();
        assert_eq!(config.access_log.as_deref(), Some("/tmp/access.jsonl"));
        assert_eq!(config.access_log_max_bytes, 4 * 1024 * 1024);
        assert!(config.flight_recorder);
        assert_eq!(config.flightrec_capacity, 128);

        // Defaults: tracing extras are off unless asked for.
        let bare = Args::parse(&["serve".to_owned()], FLAGS, SWITCHES).unwrap();
        let config = build_config(&bare).unwrap();
        assert_eq!(config.access_log, None);
        assert_eq!(
            config.access_log_max_bytes,
            srm_serve::DEFAULT_ACCESS_LOG_MAX_BYTES
        );
        assert!(!config.flight_recorder);
        assert_eq!(
            config.flightrec_capacity,
            srm_obs::DEFAULT_FLIGHTREC_CAPACITY
        );
    }

    #[test]
    fn rejects_unknown_flags() {
        let raw: Vec<String> = ["serve", "--bogus", "1"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run(&raw).is_err());
    }
}
