//! `srm simulate` — generate synthetic grouped bug-count data.

use crate::args::{ArgError, Args};
use crate::commands::parse_model;
use srm_data::DetectionSimulator;
use srm_model::DetectionModel;

const FLAGS: &[&str] = &["bugs", "days", "p", "model", "params", "seed"];

/// Runs the subcommand. The schedule is either constant (`--p`) or a
/// detection model with comma-separated `--params`.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, FLAGS, &[])?;
    let bugs: u64 = args.get_parsed("bugs", 200u64)?;
    let days: usize = args.get_parsed("days", 60usize)?;
    let seed: u64 = args.get_parsed("seed", 1u64)?;
    if days == 0 {
        return Err(ArgError("`--days` must be positive".into()));
    }

    let schedule: Vec<f64> = if let Some(p) = args.get("p") {
        let p: f64 = p
            .parse()
            .map_err(|_| ArgError(format!("invalid probability `{p}`")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(ArgError("`--p` must be in [0, 1]".into()));
        }
        vec![p; days]
    } else {
        let model: DetectionModel = parse_model(&args)?;
        let params_raw = args.require("params")?;
        let zeta: Vec<f64> = params_raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("invalid parameter `{s}`")))
            })
            .collect::<Result<_, _>>()?;
        model
            .probs(&zeta, days)
            .map_err(|e| ArgError(format!("invalid parameters: {e}")))?
    };

    let project = DetectionSimulator::new(bugs, schedule).run(seed);
    let mut out = Vec::new();
    srm_data::csv::write_counts(&project.data, &mut out)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    // The writer above only emits ASCII digits, commas, and newlines.
    let mut text = String::from_utf8(out).unwrap_or_else(|_| unreachable!());
    text.push_str(&format!(
        "# true initial bugs: {bugs}, residual after day {days}: {}\n",
        project.true_residual
    ));
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn constant_schedule_emits_csv() {
        let out = run(&raw(&[
            "simulate", "--bugs", "100", "--days", "10", "--p", "0.1", "--seed", "5",
        ]))
        .unwrap();
        assert!(out.starts_with("day,count\n"));
        assert_eq!(
            out.lines().filter(|l| !l.starts_with(['d', '#'])).count(),
            10
        );
        assert!(out.contains("# true initial bugs: 100"));
    }

    #[test]
    fn model_schedule_accepted() {
        let out = run(&raw(&[
            "simulate", "--bugs", "50", "--days", "8", "--model", "model1", "--params", "0.9,0.1",
        ]))
        .unwrap();
        assert!(out.contains("day,count"));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(run(&raw(&["simulate", "--days", "0"])).is_err());
        assert!(run(&raw(&["simulate", "--p", "1.5"])).is_err());
        assert!(run(&raw(&["simulate", "--model", "model1"])).is_err()); // params missing
        assert!(run(&raw(&["simulate", "--model", "model1", "--params", "x"])).is_err());
    }

    #[test]
    fn output_round_trips_through_reader() {
        let out = run(&raw(&[
            "simulate", "--bugs", "80", "--days", "12", "--p", "0.07",
        ]))
        .unwrap();
        let data = srm_data::csv::read_counts(out.as_bytes()).unwrap();
        assert_eq!(data.len(), 12);
    }
}
