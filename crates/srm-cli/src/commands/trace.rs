//! `srm trace` — offline analysis of JSONL trace files.
//!
//! Three modes over the typed event stream the instrumented commands
//! write with `--trace-out`:
//!
//! * `srm trace summarize --file run.jsonl` — event counts, per-phase
//!   timings, and the convergence trajectory reconstructed from the
//!   streaming `diagnostic-checkpoint` events;
//! * `srm trace diff --a run1.jsonl --b run2.jsonl` — side-by-side
//!   event counts, phase timings, and final convergence state;
//! * `srm trace lint --file run.jsonl [--strict]` — schema validation:
//!   unknown event kinds, missing required fields, missing/invalid
//!   `ms` timestamps, missing/malformed `trace_id` correlation ids
//!   (schema v7), unparseable lines. `--strict` turns any issue into
//!   a non-zero exit;
//! * `srm trace profile --file run.jsonl [--top N]` — the hierarchical
//!   phase-time table from the trace's `profile` event (written by
//!   runs with `--profile --trace-out`);
//! * `srm trace grep --trace-id <hex> [--access-log F] [--trace-dir D]
//!   [--file F]` — stitch every line carrying one correlation id into
//!   a single causal timeline across the access log, per-job traces,
//!   and any extra trace file (DESIGN.md §17).

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::args::{ArgError, Args};
use crate::obs::{render_profile_table, PROFILE_TABLE_TOP};
use srm_obs::json::{parse, Value};
use srm_obs::{
    aggregate, required_fields, AggregateDiagnostic, ChainCheckpoint, PhaseSnapshot, TraceId,
    EVENT_KINDS,
};

const FLAGS: &[&str] = &[
    "file",
    "a",
    "b",
    "top",
    "trace-id",
    "access-log",
    "trace-dir",
];
const SWITCHES: &[&str] = &["strict"];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on a missing/unknown mode, unreadable trace
/// files, or (for `lint --strict`) any schema violation.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let mode = raw.get(1).map(String::as_str).ok_or_else(|| {
        ArgError("usage: srm trace <summarize|diff|lint|profile|grep> [flags]".into())
    })?;
    let args = Args::parse(&raw[1..], FLAGS, SWITCHES)?;
    match mode {
        "summarize" => summarize(args.require("file")?),
        "diff" => diff(args.require("a")?, args.require("b")?),
        "lint" => lint(args.require("file")?, args.has_switch("strict")),
        "profile" => profile(
            args.require("file")?,
            args.get_parsed("top", PROFILE_TABLE_TOP)?,
        ),
        "grep" => grep(
            args.require("trace-id")?,
            args.get("access-log"),
            args.get("trace-dir"),
            args.get("file"),
        ),
        other => Err(ArgError(format!(
            "unknown trace mode `{other}` (summarize|diff|lint|profile|grep)"
        ))),
    }
}

fn read_lines(path: &str) -> Result<Vec<String>, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read trace `{path}`: {e}")))?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_owned)
        .collect())
}

/// Parses every line of a trace, failing on the first malformed one
/// (lint mode tolerates and counts these instead).
fn read_events(path: &str) -> Result<Vec<Value>, ArgError> {
    read_lines(path)?
        .iter()
        .enumerate()
        .map(|(i, line)| {
            parse(line).map_err(|e| {
                ArgError(format!(
                    "`{path}` line {}: not valid JSON: {e} (run `srm trace lint`)",
                    i + 1
                ))
            })
        })
        .collect()
}

fn kind_of(event: &Value) -> Option<&str> {
    event.get("type").and_then(Value::as_str)
}

fn kind_counts(events: &[Value]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for event in events {
        let kind = kind_of(event).unwrap_or("<untyped>");
        *counts.entry(kind.to_owned()).or_insert(0) += 1;
    }
    counts
}

/// Cumulative wall time per phase, from `phase-end` events.
fn phase_timings(events: &[Value]) -> BTreeMap<String, f64> {
    let mut timings = BTreeMap::new();
    for event in events {
        if kind_of(event) != Some("phase-end") {
            continue;
        }
        if let (Some(phase), Some(ms)) = (
            event.get("phase").and_then(Value::as_str),
            event.get("wall_ms").and_then(Value::as_f64),
        ) {
            *timings.entry(phase.to_owned()).or_insert(0.0) += ms;
        }
    }
    timings
}

/// Checkpoints grouped by sweep index, one entry per chain within a
/// group (a later event for the same chain and sweep wins, matching
/// the live collector's last-write semantics).
fn checkpoints_by_sweep(events: &[Value]) -> BTreeMap<usize, BTreeMap<usize, ChainCheckpoint>> {
    let mut by_sweep: BTreeMap<usize, BTreeMap<usize, ChainCheckpoint>> = BTreeMap::new();
    for event in events {
        if kind_of(event) != Some("diagnostic-checkpoint") {
            continue;
        }
        if let Some(checkpoint) = ChainCheckpoint::from_value(event) {
            by_sweep
                .entry(checkpoint.sweep)
                .or_default()
                .insert(checkpoint.chain, checkpoint);
        }
    }
    by_sweep
}

/// The headline parameter for one-line trajectory output: `residual`
/// when present, otherwise the first parameter of the aggregate.
fn headline(diagnostics: &[AggregateDiagnostic]) -> Option<&AggregateDiagnostic> {
    diagnostics
        .iter()
        .find(|d| d.parameter == "residual")
        .or_else(|| diagnostics.first())
}

fn trajectory_section(events: &[Value]) -> String {
    let by_sweep = checkpoints_by_sweep(events);
    let mut out = String::from("convergence trajectory (streaming diagnostic checkpoints)\n");
    if by_sweep.is_empty() {
        out.push_str("  (no diagnostic-checkpoint events; rerun with --checkpoint-every K)\n");
        return out;
    }
    for (sweep, chains) in &by_sweep {
        let refs: Vec<&ChainCheckpoint> = chains.values().collect();
        let diagnostics = aggregate(&refs);
        let Some(d) = headline(&diagnostics) else {
            continue;
        };
        out.push_str(&format!(
            "  sweep {sweep:>6} ({} chains): {} R-hat {:>7.4}  split {:>7.4}  ESS {:>8.1}  MCSE {:.4}\n",
            refs.len(),
            d.parameter,
            d.rhat,
            d.split_rhat,
            d.ess,
            d.mcse
        ));
    }
    out
}

fn summarize(path: &str) -> Result<String, ArgError> {
    let events = read_events(path)?;
    let mut out = format!("trace summary — {path}\n");
    out.push_str(&format!("  events : {}\n", events.len()));

    out.push_str("\nevent counts\n");
    for (kind, count) in kind_counts(&events) {
        out.push_str(&format!("  {kind:22} {count:>8}\n"));
    }

    let timings = phase_timings(&events);
    if !timings.is_empty() {
        out.push_str("\nphase timings\n");
        for (phase, ms) in &timings {
            out.push_str(&format!("  {phase:22} {ms:>10.1} ms\n"));
        }
    }

    out.push('\n');
    out.push_str(&trajectory_section(&events));
    Ok(out)
}

/// The final (highest-sweep) checkpoint per chain, across the trace.
fn final_checkpoints(events: &[Value]) -> Vec<ChainCheckpoint> {
    let mut latest: BTreeMap<usize, ChainCheckpoint> = BTreeMap::new();
    for chains in checkpoints_by_sweep(events).into_values() {
        for (chain, checkpoint) in chains {
            latest.insert(chain, checkpoint);
        }
    }
    latest.into_values().collect()
}

fn diff(path_a: &str, path_b: &str) -> Result<String, ArgError> {
    let a = read_events(path_a)?;
    let b = read_events(path_b)?;
    let mut out = format!("trace diff — {path_a} vs {path_b}\n");

    let counts_a = kind_counts(&a);
    let counts_b = kind_counts(&b);
    let kinds: std::collections::BTreeSet<&String> =
        counts_a.keys().chain(counts_b.keys()).collect();
    out.push_str("\nevent counts (a / b)\n");
    for kind in kinds {
        let ca = counts_a.get(kind).copied().unwrap_or(0);
        let cb = counts_b.get(kind).copied().unwrap_or(0);
        let marker = if ca == cb { " " } else { "*" };
        out.push_str(&format!("{marker} {kind:22} {ca:>8} / {cb:<8}\n"));
    }

    let timings_a = phase_timings(&a);
    let timings_b = phase_timings(&b);
    if !timings_a.is_empty() || !timings_b.is_empty() {
        out.push_str("\nphase timings (ms, a / b)\n");
        let phases: std::collections::BTreeSet<&String> =
            timings_a.keys().chain(timings_b.keys()).collect();
        for phase in phases {
            let ta = timings_a.get(phase).copied().unwrap_or(0.0);
            let tb = timings_b.get(phase).copied().unwrap_or(0.0);
            out.push_str(&format!("  {phase:22} {ta:>10.1} / {tb:<10.1}\n"));
        }
    }

    out.push_str("\nfinal convergence (a / b)\n");
    for (label, events) in [("a", &a), ("b", &b)] {
        let finals = final_checkpoints(events);
        let refs: Vec<&ChainCheckpoint> = finals.iter().collect();
        let diagnostics = aggregate(&refs);
        match headline(&diagnostics) {
            Some(d) => out.push_str(&format!(
                "  {label}: {} R-hat {:.4}  split {:.4}  ESS {:.1}  MCSE {:.4}\n",
                d.parameter, d.rhat, d.split_rhat, d.ess, d.mcse
            )),
            None => out.push_str(&format!("  {label}: no diagnostic checkpoints\n")),
        }
    }
    Ok(out)
}

/// Renders the phase-time table from a trace's `profile` event. When
/// a trace holds several (e.g. a concatenated log), the last one wins
/// — it is the most complete picture of the run.
fn profile(path: &str, top: usize) -> Result<String, ArgError> {
    let events = read_events(path)?;
    let phases: Vec<PhaseSnapshot> = events
        .iter()
        .rev()
        .find(|e| kind_of(e) == Some("profile"))
        .and_then(|e| e.get("phases").and_then(Value::as_arr))
        .map(|arr| arr.iter().filter_map(PhaseSnapshot::from_value).collect())
        .ok_or_else(|| {
            ArgError(format!(
                "`{path}` has no profile event; rerun the command with --profile --trace-out"
            ))
        })?;
    let mut out = format!("phase-time profile — {path}\n");
    out.push_str(&render_profile_table(&phases, top));
    Ok(out)
}

/// One line of the stitched timeline: the sink's monotonic `ms` stamp,
/// the event kind, and every remaining field as compact `k=v` pairs
/// (the matched `trace_id` itself is elided — it is the section
/// header's job).
fn timeline_line(event: &Value) -> String {
    let ms = event
        .get("ms")
        .and_then(Value::as_f64)
        .map_or_else(|| "       ?".to_owned(), |ms| format!("{ms:>10.3}"));
    let kind = kind_of(event).unwrap_or("<untyped>");
    let mut detail = String::new();
    if let Some(pairs) = event.as_obj() {
        for (key, value) in pairs {
            if matches!(key.as_str(), "type" | "ms" | "trace_id") {
                continue;
            }
            let rendered = match value {
                Value::Str(s) => s.clone(),
                other => other.to_json(),
            };
            if !detail.is_empty() {
                detail.push(' ');
            }
            detail.push_str(&format!("{key}={rendered}"));
            if detail.len() > 120 {
                detail.truncate(120);
                detail.push('…');
                break;
            }
        }
    }
    format!("  {ms}  {kind:<22} {detail}\n")
}

/// Collects the lines of one source whose `trace_id` canonicalises to
/// `target`; lines that fail to parse or carry no id never match.
fn grep_source(path: &str, target: TraceId) -> Result<Vec<String>, ArgError> {
    let mut matches = Vec::new();
    for line in read_lines(path)? {
        let Ok(event) = parse(&line) else { continue };
        let id = event
            .get("trace_id")
            .and_then(Value::as_str)
            .and_then(TraceId::parse);
        if id == Some(target) {
            matches.push(timeline_line(&event));
        }
    }
    Ok(matches)
}

/// `*.jsonl` files under a trace directory, sorted by name so per-job
/// traces appear in a stable order.
fn trace_dir_files(dir: &str) -> Result<Vec<PathBuf>, ArgError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ArgError(format!("cannot read trace dir `{dir}`: {e}")))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().and_then(std::ffi::OsStr::to_str) == Some("jsonl"))
        .collect();
    files.sort();
    Ok(files)
}

fn grep(
    target: &str,
    access_log: Option<&str>,
    trace_dir: Option<&str>,
    file: Option<&str>,
) -> Result<String, ArgError> {
    let id = TraceId::parse(target).ok_or_else(|| {
        ArgError(format!(
            "invalid value `{target}` for `--trace-id` (want 1-32 hex digits)"
        ))
    })?;
    if access_log.is_none() && trace_dir.is_none() && file.is_none() {
        return Err(ArgError(
            "srm trace grep needs at least one source: --access-log, --trace-dir, or --file".into(),
        ));
    }
    // Access log first (the request's point of entry), then per-job
    // traces, then any explicit file; within a source, file order is
    // write order, so each section reads as a causal timeline.
    let mut sources: Vec<String> = Vec::new();
    if let Some(path) = access_log {
        sources.push(path.to_owned());
    }
    if let Some(dir) = trace_dir {
        for path in trace_dir_files(dir)? {
            sources.push(path.to_string_lossy().into_owned());
        }
    }
    if let Some(path) = file {
        sources.push(path.to_owned());
    }
    // Keep first occurrence when one path is named through several
    // flags (e.g. an access log living inside the trace dir).
    let mut seen = std::collections::BTreeSet::new();
    sources.retain(|p| seen.insert(p.clone()));

    let mut out = format!("trace grep — id {}\n", id.to_hex());
    let mut total = 0usize;
    let mut sources_with_matches = 0usize;
    for path in &sources {
        let matches = grep_source(path, id)?;
        if matches.is_empty() {
            continue;
        }
        total += matches.len();
        sources_with_matches += 1;
        out.push_str(&format!("\n{path} ({} line(s))\n", matches.len()));
        for line in matches {
            out.push_str(&line);
        }
    }
    out.push_str(&format!(
        "\ntotal: {total} line(s) across {sources_with_matches} of {} source(s)\n",
        sources.len()
    ));
    Ok(out)
}

fn lint(path: &str, strict: bool) -> Result<String, ArgError> {
    let lines = read_lines(path)?;
    let mut parse_errors = 0usize;
    let mut unknown_kinds = 0usize;
    let mut missing_fields = 0usize;
    let mut bad_ms = 0usize;
    let mut missing_trace_ids = 0usize;
    let mut examples: Vec<String> = Vec::new();
    let mut note = |counter: &mut usize, example: String| {
        *counter += 1;
        if examples.len() < 5 {
            examples.push(example);
        }
    };

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let Ok(event) = parse(line) else {
            note(&mut parse_errors, format!("line {lineno}: not valid JSON"));
            continue;
        };
        // Every JSONL record carries the sink's monotonic `ms` stamp.
        if event.get("ms").and_then(Value::as_f64).is_none() {
            note(
                &mut bad_ms,
                format!("line {lineno}: missing or non-numeric `ms`"),
            );
        }
        // Schema v7: every record carries its run's correlation id so
        // `srm trace grep --trace-id` can stitch it into a timeline.
        let id_ok = event
            .get("trace_id")
            .and_then(Value::as_str)
            .is_some_and(|id| TraceId::parse(id).is_some());
        if !id_ok {
            note(
                &mut missing_trace_ids,
                format!("line {lineno}: missing or malformed `trace_id`"),
            );
        }
        let Some(kind) = kind_of(&event).map(str::to_owned) else {
            note(
                &mut unknown_kinds,
                format!("line {lineno}: no `type` field"),
            );
            continue;
        };
        if !EVENT_KINDS.contains(&kind.as_str()) {
            note(
                &mut unknown_kinds,
                format!("line {lineno}: unknown kind `{kind}`"),
            );
            continue;
        }
        if let Some(required) = required_fields(&kind) {
            for field in required {
                if event.get(field).is_none() {
                    note(
                        &mut missing_fields,
                        format!("line {lineno}: `{kind}` missing field `{field}`"),
                    );
                }
            }
        }
    }

    let issues = parse_errors + unknown_kinds + missing_fields + bad_ms + missing_trace_ids;
    let mut out = format!("trace lint — {path}\n");
    out.push_str(&format!("  lines checked  : {}\n", lines.len()));
    out.push_str(&format!("  parse errors   : {parse_errors}\n"));
    out.push_str(&format!("  unknown kinds  : {unknown_kinds}\n"));
    out.push_str(&format!("  missing fields : {missing_fields}\n"));
    out.push_str(&format!("  bad ms stamps  : {bad_ms}\n"));
    out.push_str(&format!("  bad trace ids  : {missing_trace_ids}\n"));
    if !examples.is_empty() {
        out.push_str("  first issues:\n");
        for example in &examples {
            out.push_str(&format!("    {example}\n"));
        }
    }
    out.push_str(if issues == 0 {
        "  result: clean\n"
    } else {
        "  result: issues found\n"
    });
    if strict && issues > 0 {
        return Err(ArgError(format!(
            "trace lint failed: {issues} issue(s) in `{path}`\n{out}"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_obs::{Event, JsonlSink, Recorder as _};

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    /// Writes a small but realistic trace through the production sink
    /// by running an actual checkpointed fit (the full pipeline, so
    /// the trace carries phase events and streaming checkpoints).
    fn write_fit_trace(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let data = srm_data::datasets::musa_cc96().truncated(30).unwrap();
        let config = srm_core::FitConfig {
            mcmc: srm_mcmc::runner::McmcConfig {
                chains: 2,
                burn_in: 60,
                samples: 140,
                thin: 1,
                seed: 31,
            },
            ..srm_core::FitConfig::default()
        };
        let options = srm_mcmc::runner::RunOptions {
            checkpoint_every: 50,
            ..srm_mcmc::runner::RunOptions::none()
        };
        let sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
        srm_core::Fit::try_run_traced(
            srm_mcmc::gibbs::PriorSpec::Poisson {
                lambda_max: 2_000.0,
            },
            srm_model::DetectionModel::Constant,
            &data,
            &config,
            &options,
            &sink,
        )
        .unwrap();
        sink.flush().unwrap();
        path
    }

    #[test]
    fn summarize_renders_counts_phases_and_trajectory() {
        let path = write_fit_trace("srm_trace_summarize.jsonl");
        let out = run(&raw(&[
            "trace",
            "summarize",
            "--file",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("event counts"), "{out}");
        assert!(out.contains("diagnostic-checkpoint"), "{out}");
        assert!(out.contains("phase timings"), "{out}");
        assert!(out.contains("sampling"), "{out}");
        assert!(out.contains("convergence trajectory"), "{out}");
        assert!(out.contains("residual R-hat"), "{out}");
        // 200 sweeps with K = 50: the burn-in (60 sweeps) keeps no
        // draws, so checkpoints land at sweeps 99, 149, and 199 (the
        // final sweep coincides with the stride).
        for sweep in ["99", "149", "199"] {
            assert!(out.contains(&format!("sweep {sweep:>6}")), "{sweep}: {out}");
        }
        assert!(!out.contains("sweep     49"), "{out}");
    }

    #[test]
    fn lint_accepts_a_production_trace_strictly() {
        let path = write_fit_trace("srm_trace_lint_ok.jsonl");
        let out = run(&raw(&[
            "trace",
            "lint",
            "--file",
            path.to_str().unwrap(),
            "--strict",
        ]))
        .unwrap();
        assert!(out.contains("result: clean"), "{out}");
        assert!(out.contains("parse errors   : 0"), "{out}");
    }

    #[test]
    fn lint_counts_schema_violations_and_strict_fails() {
        let path = std::env::temp_dir().join("srm_trace_lint_bad.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"type\":\"phase-start\",\"trace_id\":\"beef\",\"ms\":1.0,\"phase\":\"sampling\"}\n",
                "{\"type\":\"made-up-kind\",\"ms\":2.0}\n",
                "{\"type\":\"phase-end\",\"ms\":3.0}\n",
                "{\"type\":\"sweep-end\",\"chain\":0,\"sweep\":1,\"total\":10,\"kept\":1}\n",
                "not json at all\n",
            ),
        )
        .unwrap();
        let out = lint(path.to_str().unwrap(), false).unwrap();
        assert!(out.contains("parse errors   : 1"), "{out}");
        assert!(out.contains("unknown kinds  : 1"), "{out}");
        // phase-end is missing both `phase` and `wall_ms`.
        assert!(out.contains("missing fields : 2"), "{out}");
        // The sweep-end line has no `ms` stamp.
        assert!(out.contains("bad ms stamps  : 1"), "{out}");
        // Only the phase-start line carries a v7 correlation id; the
        // other three parseable lines don't.
        assert!(out.contains("bad trace ids  : 3"), "{out}");
        assert!(out.contains("result: issues found"), "{out}");

        let err = lint(path.to_str().unwrap(), true).unwrap_err();
        assert!(err.to_string().contains("trace lint failed"), "{err}");
    }

    #[test]
    fn diff_compares_two_traces() {
        let a = write_fit_trace("srm_trace_diff_a.jsonl");
        // Same run plus one extra event → one starred count line.
        let b_path = std::env::temp_dir().join("srm_trace_diff_b.jsonl");
        std::fs::copy(&a, &b_path).unwrap();
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&b_path)
                .unwrap();
            let event = Event::CacheMiss {
                cache_key: "deadbeef".into(),
            };
            writeln!(f, "{}", event.to_value().to_json()).unwrap();
        }
        let out = run(&raw(&[
            "trace",
            "diff",
            "--a",
            a.to_str().unwrap(),
            "--b",
            b_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("event counts (a / b)"), "{out}");
        assert!(out.contains("* cache-miss"), "{out}");
        assert!(out.contains("final convergence (a / b)"), "{out}");
        assert!(out.contains("a: residual R-hat"), "{out}");
    }

    fn snapshot(path: &str, count: u64, total_ns: u64, self_ns: u64) -> PhaseSnapshot {
        PhaseSnapshot {
            path: path.into(),
            count,
            total_ns,
            self_ns,
            min_ns: total_ns / count.max(1),
            max_ns: total_ns / count.max(1),
            buckets: vec![0; srm_obs::HIST_BUCKETS],
        }
    }

    #[test]
    fn profile_mode_renders_phase_table() {
        let path = std::env::temp_dir().join("srm_trace_profile.jsonl");
        let event = Event::Profile {
            phases: vec![
                snapshot("chain", 2, 5_000_000, 1_000_000),
                snapshot("chain/sweep", 400, 4_000_000, 4_000_000),
            ],
        };
        std::fs::write(&path, format!("{}\n", event.to_value().to_json())).unwrap();
        let out = run(&raw(&[
            "trace",
            "profile",
            "--file",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("chain/sweep"), "{out}");
        assert!(out.contains("self%"), "{out}");
        // --top 1 keeps the heaviest phase and reports the cut.
        let out = run(&raw(&[
            "trace",
            "profile",
            "--file",
            path.to_str().unwrap(),
            "--top",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("chain/sweep"), "{out}");
        assert!(out.contains("1 more phase"), "{out}");
    }

    #[test]
    fn profile_mode_requires_a_profile_event() {
        let path = write_fit_trace("srm_trace_profile_none.jsonl");
        let err = run(&raw(&[
            "trace",
            "profile",
            "--file",
            path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no profile event"), "{err}");
    }

    #[test]
    fn grep_stitches_sources_into_one_timeline() {
        let dir = std::env::temp_dir().join(format!("srm_trace_grep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pinned = "00000000000000000000000000000abc";

        // Access log outside the trace dir: one matching line (with a
        // short-form id that canonicalises to `pinned`), one not.
        let access = std::env::temp_dir().join(format!(
            "srm_trace_grep_access_{}.jsonl",
            std::process::id()
        ));
        std::fs::write(
            &access,
            concat!(
                "{\"type\":\"access\",\"trace_id\":\"abc\",\"ms\":1.5,\"method\":\"POST\",\
                 \"path\":\"/v1/jobs\",\"status\":202}\n",
                "{\"type\":\"access\",\"trace_id\":\"def\",\"ms\":2.5,\"method\":\"GET\",\
                 \"path\":\"/healthz\",\"status\":200}\n",
            ),
        )
        .unwrap();

        // Two per-job traces in the dir; only job-1 carries the id.
        let decoy = JsonlSink::create(dir.join("job-0.trace.jsonl").to_str().unwrap())
            .unwrap()
            .with_trace_id("dead");
        decoy.record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 1.0,
        });
        decoy.flush().unwrap();
        let sink = JsonlSink::create(dir.join("job-1.trace.jsonl").to_str().unwrap())
            .unwrap()
            .with_trace_id(pinned);
        sink.record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 3.0,
        });
        sink.record(&Event::PhaseEnd {
            phase: "report",
            wall_ms: 0.5,
        });
        sink.flush().unwrap();

        let out = run(&raw(&[
            "trace",
            "grep",
            "--trace-id",
            "abc",
            "--access-log",
            access.to_str().unwrap(),
            "--trace-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains(&format!("trace grep — id {pinned}")), "{out}");
        assert!(
            out.contains("access") && out.contains("(1 line(s))"),
            "{out}"
        );
        assert!(out.contains("method=POST"), "{out}");
        assert!(out.contains("path=/v1/jobs"), "{out}");
        assert!(!out.contains("method=GET"), "{out}");
        assert!(out.contains("job-1.trace.jsonl (2 line(s))"), "{out}");
        assert!(!out.contains("job-0.trace.jsonl"), "{out}");
        assert!(out.contains("phase=report"), "{out}");
        assert!(
            out.contains("total: 3 line(s) across 2 of 3 source(s)"),
            "{out}"
        );
        // The access-log section comes before the per-job trace.
        let access_at = out.find("method=POST").unwrap();
        let job_at = out.find("phase=report").unwrap();
        assert!(access_at < job_at, "{out}");

        let _ = std::fs::remove_file(&access);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grep_requires_a_source_and_a_well_formed_id() {
        let err = run(&raw(&["trace", "grep", "--trace-id", "abc"])).unwrap_err();
        assert!(err.to_string().contains("at least one source"), "{err}");
        let err = run(&raw(&[
            "trace",
            "grep",
            "--trace-id",
            "zz-not-hex",
            "--file",
            "whatever.jsonl",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--trace-id"), "{err}");
        assert!(run(&raw(&["trace", "grep", "--file", "x.jsonl"])).is_err());
    }

    #[test]
    fn bad_modes_and_missing_flags_error_cleanly() {
        assert!(run(&raw(&["trace"])).is_err());
        assert!(run(&raw(&["trace", "dance"])).is_err());
        assert!(run(&raw(&["trace", "summarize"])).is_err());
        assert!(run(&raw(&["trace", "diff", "--a", "x"])).is_err());
        let err = run(&raw(&["trace", "summarize", "--file", "/no/such.jsonl"])).unwrap_err();
        assert!(err.to_string().contains("cannot read trace"));
    }
}
