//! `srm trend` — Laplace trend test and dataset summary.

use crate::args::{ArgError, Args};
use crate::commands::load_data;
use crate::obs::{with_obs_flags, with_obs_switches, Observability};
use srm_data::analysis::{laplace_trend, running_laplace_trend, summarize, TrendVerdict};
use srm_obs::{RunManifest, Span};
use srm_report::ascii::{bar_chart, line_chart};

const FLAGS: &[&str] = &["data", "dataset"];
const SWITCHES: &[&str] = &["chart"];

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on bad flags or unreadable data.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, &with_obs_flags(FLAGS), &with_obs_switches(SWITCHES))?;
    let data = load_data(&args)?;
    let obs = Observability::from_args(&args)?;
    obs.emit_run_start("trend", "-", "-", 0, &data);
    let span = Span::enter(obs.recorder(), "trend");
    let s = summarize(&data);

    let mut out = String::new();
    out.push_str(&format!(
        "days {} | bugs {} | mean/day {:.3} | dispersion {:.3} | zero days {:.0}%\n",
        s.days,
        s.total,
        s.mean_per_day,
        s.dispersion,
        s.zero_fraction * 100.0
    ));
    match laplace_trend(&data) {
        Some(t) => {
            let verdict = match t.verdict() {
                TrendVerdict::Growth => "reliability growth (fit a decaying-hazard model)",
                TrendVerdict::Stable => "no significant trend (model0 may suffice)",
                TrendVerdict::Decay => "reliability decay (use a time-aware model: model1/model2)",
            };
            out.push_str(&format!(
                "Laplace trend: u = {:.3}, p = {:.4} — {verdict}\n",
                t.statistic, t.p_value
            ));
        }
        None => out.push_str("Laplace trend: not enough data\n"),
    }

    if args.has_switch("chart") {
        out.push_str("\ndaily counts:\n");
        out.push_str(&bar_chart(data.counts(), 6));
        let running = running_laplace_trend(&data);
        if running.len() >= 2 {
            out.push_str("\nrunning Laplace statistic:\n");
            out.push_str(&line_chart(&running, 8));
        }
    }
    span.end();
    obs.finish_manifest(
        RunManifest {
            command: "trend".into(),
            model: "-".into(),
            prior: "-".into(),
            dataset_hash: srm_obs::dataset_hash(data.counts()),
            ..RunManifest::default()
        },
        0,
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn trend_reports_verdict_and_charts() {
        let path = std::env::temp_dir().join("srm_cli_trend_test.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        for (day, count) in srm_data::datasets::decaying_growth_60().iter() {
            writeln!(f, "{day},{count}").unwrap();
        }
        let raw: Vec<String> = ["trend", "--data", path.to_str().unwrap(), "--chart"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("Laplace trend"));
        assert!(out.contains("growth"));
        assert!(out.contains('#'));
    }
}
