//! `srm version` — build and schema versions.
//!
//! The same three numbers appear in the `/healthz` build block and in
//! every run manifest (see [`srm_obs::build_info_value`]), so any
//! artifact can be matched to the binary that produced it.

use crate::args::{ArgError, Args};
use srm_obs::{EVENT_SCHEMA_VERSION, MANIFEST_SCHEMA_VERSION, SCHEMA_VERSION};

/// Runs the subcommand.
///
/// # Errors
///
/// Returns [`ArgError`] on stray flags (the command takes none).
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let _ = Args::parse(raw, &[], &[])?;
    Ok(format!(
        "srm {}\nschema: {SCHEMA_VERSION}\nmanifest schema: {MANIFEST_SCHEMA_VERSION}\nevent schema: {EVENT_SCHEMA_VERSION}\n",
        env!("CARGO_PKG_VERSION"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn prints_crate_and_schema_versions() {
        let out = run(&raw(&["version"])).unwrap();
        assert!(out.starts_with(&format!("srm {}\n", env!("CARGO_PKG_VERSION"))));
        assert!(out.contains(&format!("manifest schema: {MANIFEST_SCHEMA_VERSION}")));
        assert!(out.contains(&format!("event schema: {EVENT_SCHEMA_VERSION}")));
    }

    #[test]
    fn matches_the_shared_build_info_block() {
        let out = run(&raw(&["version"])).unwrap();
        let build = srm_obs::build_info_value();
        let version = build.get("crate_version").unwrap().as_str().unwrap();
        assert!(out.contains(version));
    }

    // One constant, three surfaces: `srm version`, the `/healthz`
    // build block, and every run manifest must agree on the schema
    // version (the build-info block is what /healthz and manifests
    // embed verbatim).
    #[test]
    fn schema_version_is_centralized_across_surfaces() {
        let out = run(&raw(&["version"])).unwrap();
        assert!(
            out.contains(&format!("schema: {SCHEMA_VERSION}\n")),
            "{out}"
        );

        let build = srm_obs::build_info_value();
        for key in ["event_schema_version", "manifest_schema_version"] {
            let surfaced = build.get(key).and_then(srm_obs::json::Value::as_f64);
            assert_eq!(surfaced, Some(SCHEMA_VERSION as f64), "{key}");
        }

        let manifest = srm_obs::RunManifest::default().to_value();
        let in_manifest = manifest
            .get("schema_version")
            .and_then(srm_obs::json::Value::as_f64);
        assert_eq!(in_manifest, Some(SCHEMA_VERSION as f64));
        assert_eq!(MANIFEST_SCHEMA_VERSION, SCHEMA_VERSION);
        assert_eq!(EVENT_SCHEMA_VERSION, SCHEMA_VERSION);
    }

    #[test]
    fn rejects_flags() {
        assert!(run(&raw(&["version", "--data", "x.csv"])).is_err());
    }
}
