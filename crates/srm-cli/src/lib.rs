//! Library backing the `srm` command-line tool.
//!
//! The CLI wraps the workspace's Bayesian SRM pipeline for users who
//! have grouped bug-count data in a CSV file and want estimates
//! without writing Rust:
//!
//! ```text
//! srm fit      --data counts.csv --model model1 --prior poisson
//! srm select   --data counts.csv --prior poisson
//! srm predict  --data counts.csv --model model1 --horizon 30
//! srm trend    --data counts.csv
//! srm simulate --bugs 200 --days 60 --p 0.05 --seed 1
//! srm serve    --addr 127.0.0.1:0 --port-file srm.port
//! srm trace    summarize --file run.jsonl
//! srm bench    diff BENCH_old.json BENCH_new.json --check
//! srm version
//! ```
//!
//! Everything is implemented as library functions returning strings,
//! so the commands are unit-testable without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod obs;

pub use args::{ArgError, Args};

/// Formats a top-level error exactly as the terminal shows it — the
/// single formatting path shared by stderr and the `cli-diagnostic`
/// trace event.
#[must_use]
pub fn diagnostic_line(e: &ArgError) -> String {
    format!("srm: {e}")
}

/// Exit-status-friendly runner: dispatches a raw argument vector and
/// returns the rendered output or a user-facing error. Failures are
/// also appended to the `--trace-out` file (when one was requested)
/// as `cli-diagnostic` events.
///
/// # Errors
///
/// Returns [`ArgError`] for parse failures and command errors.
pub fn run(raw: &[String]) -> Result<String, ArgError> {
    let result = dispatch(raw);
    if let Err(e) = &result {
        obs::log_cli_diagnostic(raw, "error", &diagnostic_line(e));
    }
    result
}

fn dispatch(raw: &[String]) -> Result<String, ArgError> {
    let command = raw.first().map(String::as_str).unwrap_or("");
    match command {
        "fit" => commands::fit::run(raw),
        "select" => commands::select::run(raw),
        "predict" => commands::predict::run(raw),
        "trend" => commands::trend::run(raw),
        "simulate" => commands::simulate::run(raw),
        "sbc" => commands::sbc::run(raw),
        "serve" => commands::serve::run(raw),
        "trace" => commands::trace::run(raw),
        "bench" => commands::bench::run(raw),
        "version" | "--version" | "-V" => commands::version::run(raw),
        "help" | "--help" | "-h" | "" => Ok(commands::help_text()),
        other => Err(ArgError(format!(
            "unknown command `{other}` (try `srm help`)"
        ))),
    }
}
