//! The `srm` command-line entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match srm_cli::run(&raw) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", srm_cli::diagnostic_line(&e));
            eprintln!("try `srm help`");
            ExitCode::FAILURE
        }
    }
}
