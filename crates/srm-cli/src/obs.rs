//! CLI wiring for the observability layer.
//!
//! Every estimation command accepts the same five controls:
//!
//! * `--trace-out <file.jsonl>` — typed event stream, one JSON object
//!   per line ([`srm_obs::JsonlSink`]);
//! * `--metrics-out <file.json>` — run manifest written on completion
//!   ([`srm_obs::RunManifest`]);
//! * `--progress` — throttled per-chain progress lines on stderr;
//! * `--verbosity <0|1|2>` — how chatty `--progress` is;
//! * `--checkpoint-every <K>` — emit a streaming
//!   `diagnostic-checkpoint` per chain every K sweeps (0 disables;
//!   never perturbs the sampled values);
//! * `--profile` — collect the hierarchical phase-time profile,
//!   print its table to stderr, and append a `profile` event to the
//!   trace (never perturbs the sampled values);
//! * `--trace-id <hex>` — pin the run's correlation id (derived from
//!   the invocation content when absent); every trace line and the
//!   manifest carry it, so `srm trace grep --trace-id` can stitch a
//!   CLI run into the same causal timeline as served jobs.
//!
//! With none of them given, the assembled recorder is disabled and
//! the pipeline runs on its zero-cost no-op path.

use std::sync::Arc;

use crate::args::{ArgError, Args};
use srm_data::BugCountData;
use srm_obs::{
    boot_nonce, dataset_hash, Event, JsonlSink, PhaseSnapshot, Profiler, ProgressSink, Recorder,
    RunManifest, StatsCollector, Tee, TraceId,
};

/// Flags every instrumented subcommand accepts.
pub const OBS_FLAGS: &[&str] = &[
    "trace-out",
    "metrics-out",
    "verbosity",
    "checkpoint-every",
    "trace-id",
];

/// Switches every instrumented subcommand accepts.
pub const OBS_SWITCHES: &[&str] = &["progress", "profile"];

/// Default row cap for rendered phase-time tables.
pub const PROFILE_TABLE_TOP: usize = 20;

/// Renders a phase-time table: one row per span path, sorted by self
/// time, with total/self milliseconds and the share of the run's
/// accumulated self time. `top` caps the rows (0 means unlimited).
#[must_use]
pub fn render_profile_table(phases: &[PhaseSnapshot], top: usize) -> String {
    let total_self: u64 = phases.iter().map(|p| p.self_ns).sum();
    let mut rows: Vec<&PhaseSnapshot> = phases.iter().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    let shown = if top == 0 {
        rows.len()
    } else {
        rows.len().min(top)
    };
    let width = rows
        .iter()
        .take(shown)
        .map(|p| p.path.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>9}  {:>12}  {:>12}  {:>6}\n",
        "phase", "count", "total(ms)", "self(ms)", "self%"
    ));
    for p in &rows[..shown] {
        let pct = if total_self > 0 {
            p.self_ns as f64 / total_self as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<width$}  {:>9}  {:>12.3}  {:>12.3}  {:>5.1}%\n",
            p.path,
            p.count,
            p.total_ns as f64 / 1e6,
            p.self_ns as f64 / 1e6,
            pct
        ));
    }
    if rows.len() > shown {
        out.push_str(&format!("… {} more phases\n", rows.len() - shown));
    }
    out
}

/// Appends the shared observability flag vocabulary to a command's
/// own (both are 'static literals).
#[must_use]
pub fn with_obs_flags(own: &[&'static str]) -> Vec<&'static str> {
    let mut all = Vec::with_capacity(own.len() + OBS_FLAGS.len());
    all.extend_from_slice(own);
    all.extend_from_slice(OBS_FLAGS);
    all
}

/// Appends the shared observability switches to a command's own.
#[must_use]
pub fn with_obs_switches(own: &[&'static str]) -> Vec<&'static str> {
    let mut all = Vec::with_capacity(own.len() + OBS_SWITCHES.len());
    all.extend_from_slice(own);
    all.extend_from_slice(OBS_SWITCHES);
    all
}

/// Routes a top-level CLI diagnostic through the event sink when the
/// raw argument vector names a `--trace-out` file: the exact line the
/// terminal shows is appended as a `cli-diagnostic` event, so the
/// trace and stderr share one formatting path. Best-effort — an
/// unwritable trace file never masks the original error.
pub fn log_cli_diagnostic(raw: &[String], level: &'static str, message: &str) {
    let Some(path) = trace_out_path(raw) else {
        return;
    };
    let event = Event::CliDiagnostic {
        level,
        message: message.to_owned(),
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        use std::io::Write as _;
        let _ = writeln!(file, "{}", event.to_value().to_json());
    }
}

fn trace_out_path(raw: &[String]) -> Option<&str> {
    raw.iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| raw.get(i + 1))
        .map(String::as_str)
}

/// The sinks assembled for one CLI invocation.
#[derive(Debug)]
pub struct Observability {
    recorder: Tee,
    stats: Arc<StatsCollector>,
    metrics_out: Option<String>,
    profiler: Option<Arc<Profiler>>,
    trace_id: TraceId,
}

impl Observability {
    /// Builds the sink stack from the parsed arguments.
    ///
    /// The run's correlation id is `--trace-id` when given (any 1–32
    /// hex digits, canonicalised to 32), otherwise derived from the
    /// invocation's [`Args::content_hash`] and the per-boot nonce —
    /// the same recipe srm-serve uses for headerless requests, so
    /// repeating a command within one boot yields the same id while
    /// different invocations (or boots) get distinct ones. Every
    /// `--trace-out` line is stamped with it (schema v7).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when `--trace-out` cannot be created or
    /// `--verbosity` / `--trace-id` is malformed.
    pub fn from_args(args: &Args) -> Result<Self, ArgError> {
        let verbosity: u8 = args.get_parsed("verbosity", 1u8)?;
        let trace_id = match args.get("trace-id") {
            Some(raw) => TraceId::parse(raw).ok_or_else(|| {
                ArgError(format!(
                    "invalid value `{raw}` for `--trace-id` (want 1-32 hex digits)"
                ))
            })?,
            None => TraceId::derive(args.content_hash(), boot_nonce()),
        };
        let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
        if let Some(path) = args.get("trace-out") {
            let sink = JsonlSink::create(path)
                .map_err(|e| ArgError(format!("cannot create trace file `{path}`: {e}")))?
                .with_trace_id(&trace_id.to_hex());
            sinks.push(Arc::new(sink));
        }
        if args.has_switch("progress") {
            sinks.push(Arc::new(ProgressSink::stderr(verbosity)));
        }
        let stats = Arc::new(StatsCollector::new());
        let metrics_out = args.get("metrics-out").map(str::to_owned);
        if metrics_out.is_some() {
            sinks.push(Arc::clone(&stats) as Arc<dyn Recorder>);
        }
        let profiler = args
            .has_switch("profile")
            .then(|| Arc::new(Profiler::new()));
        Ok(Self {
            recorder: Tee::new(sinks),
            stats,
            metrics_out,
            profiler,
            trace_id,
        })
    }

    /// The recorder to thread into the pipeline.
    #[must_use]
    pub fn recorder(&self) -> &dyn Recorder {
        &self.recorder
    }

    /// The correlation id for this invocation (pinned or derived).
    #[must_use]
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// The aggregating collector backing the manifest.
    #[must_use]
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Whether a manifest will be written.
    #[must_use]
    pub fn writes_manifest(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// The phase-time profiler, when `--profile` was given — hand it
    /// to `RunOptions` so worker threads feed the same sink.
    #[must_use]
    pub fn profiler(&self) -> Option<Arc<Profiler>> {
        self.profiler.clone()
    }

    /// Finishes a `--profile` run: appends the aggregate `profile`
    /// event to the trace and prints the phase-time table to stderr.
    /// Call after any main-thread install guard has been dropped, so
    /// the snapshot includes this thread's spans. No-op without
    /// `--profile`.
    pub fn finish_profile(&self) {
        let Some(profiler) = &self.profiler else {
            return;
        };
        let phases = profiler.snapshot();
        if self.recorder.enabled() {
            self.recorder.record(&Event::Profile {
                phases: phases.clone(),
            });
        }
        eprintln!(
            "phase-time profile (top {PROFILE_TABLE_TOP} by self time)\n{}",
            render_profile_table(&phases, PROFILE_TABLE_TOP)
        );
    }

    /// Emits the `run-start` event identifying the invocation.
    pub fn emit_run_start(
        &self,
        command: &str,
        model: &str,
        prior: &str,
        seed: u64,
        data: &BugCountData,
    ) {
        if self.recorder.enabled() {
            self.recorder.record(&Event::RunStart {
                command: command.to_owned(),
                model: model.to_owned(),
                prior: prior.to_owned(),
                seed,
                dataset_hash: dataset_hash(data.counts()),
            });
        }
    }

    /// Fills the stats-derived manifest fields (phases, acceptance,
    /// fault/retry counters, diagnostics, WAIC, throughput) and
    /// writes the document when `--metrics-out` was given.
    ///
    /// `kept_draws` is the total number of posterior draws the run
    /// kept, for the draws/sec figure.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the manifest file cannot be written.
    pub fn finish_manifest(
        &self,
        mut manifest: RunManifest,
        kept_draws: u64,
    ) -> Result<(), ArgError> {
        let Some(path) = &self.metrics_out else {
            return Ok(());
        };
        if manifest.trace_id.is_empty() {
            manifest.trace_id = self.trace_id.to_hex();
        }
        manifest.fill_from_stats(&self.stats, kept_draws);
        manifest
            .write(path)
            .map_err(|e| ArgError(format!("cannot write manifest `{path}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_flags_means_disabled_recorder() {
        let args = Args::parse(&raw(&["fit"]), OBS_FLAGS, OBS_SWITCHES).unwrap();
        let obs = Observability::from_args(&args).unwrap();
        assert!(!obs.recorder().enabled());
        assert!(!obs.writes_manifest());
    }

    #[test]
    fn metrics_out_enables_the_stats_sink() {
        let path = std::env::temp_dir().join("srm_cli_obs_manifest.json");
        let args = Args::parse(
            &raw(&["fit", "--metrics-out", path.to_str().unwrap()]),
            OBS_FLAGS,
            OBS_SWITCHES,
        )
        .unwrap();
        let obs = Observability::from_args(&args).unwrap();
        assert!(obs.recorder().enabled());
        obs.recorder().record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 100.0,
        });
        let manifest = RunManifest {
            command: "fit".into(),
            ..RunManifest::default()
        };
        obs.finish_manifest(manifest, 500).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = srm_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("command").unwrap().as_str(), Some("fit"));
        assert_eq!(doc.get("draws_per_sec").unwrap().as_f64(), Some(5_000.0));
    }

    #[test]
    fn pinned_trace_id_stamps_every_trace_line_and_the_manifest() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("srm_cli_obs_trace_{}.jsonl", std::process::id()));
        let manifest_path = dir.join(format!("srm_cli_obs_tm_{}.json", std::process::id()));
        let pinned = "00112233445566778899aabbccddeeff";
        let args = Args::parse(
            &raw(&[
                "fit",
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                manifest_path.to_str().unwrap(),
                "--trace-id",
                pinned,
            ]),
            OBS_FLAGS,
            OBS_SWITCHES,
        )
        .unwrap();
        let obs = Observability::from_args(&args).unwrap();
        assert_eq!(obs.trace_id().to_hex(), pinned);
        obs.recorder().record(&Event::PhaseEnd {
            phase: "sampling",
            wall_ms: 10.0,
        });
        obs.recorder().record(&Event::PhaseEnd {
            phase: "report",
            wall_ms: 2.0,
        });
        obs.finish_manifest(RunManifest::default(), 0).unwrap();
        drop(obs);

        let text = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = srm_obs::json::parse(line).unwrap();
            assert_eq!(v.get("trace_id").unwrap().as_str(), Some(pinned), "{line}");
        }
        let doc = srm_obs::json::parse(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
        assert_eq!(doc.get("trace_id").unwrap().as_str(), Some(pinned));
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&manifest_path);
    }

    #[test]
    fn derived_trace_id_is_content_stable_within_a_boot() {
        let same = ["fit", "--verbosity", "2"];
        let a = Args::parse(&raw(&same), OBS_FLAGS, OBS_SWITCHES).unwrap();
        let b = Args::parse(&raw(&same), OBS_FLAGS, OBS_SWITCHES).unwrap();
        let c = Args::parse(&raw(&["fit", "--verbosity", "1"]), OBS_FLAGS, OBS_SWITCHES).unwrap();
        let id_a = Observability::from_args(&a).unwrap().trace_id();
        let id_b = Observability::from_args(&b).unwrap().trace_id();
        let id_c = Observability::from_args(&c).unwrap().trace_id();
        assert_eq!(id_a, id_b);
        assert_ne!(id_a, id_c);
    }

    #[test]
    fn malformed_trace_id_is_a_clean_error() {
        let args = Args::parse(
            &raw(&["fit", "--trace-id", "not-hex"]),
            OBS_FLAGS,
            OBS_SWITCHES,
        )
        .unwrap();
        let err = Observability::from_args(&args).unwrap_err();
        assert!(err.to_string().contains("--trace-id"), "{err}");
    }

    #[test]
    fn bad_trace_path_is_a_clean_error() {
        let args = Args::parse(
            &raw(&["fit", "--trace-out", "/no/such/dir/run.jsonl"]),
            OBS_FLAGS,
            OBS_SWITCHES,
        )
        .unwrap();
        let err = Observability::from_args(&args).unwrap_err();
        assert!(err.to_string().contains("cannot create trace file"));
    }
}
