//! Batch kill/restart fault harness: SIGKILLs a live `srm serve`
//! mid-batch (and aborts one at the exact WAL append that records the
//! batch), restarts on the same `--state-dir`, and asserts the batch
//! recovery invariants:
//!
//! - the batch registry itself survives (`GET /v1/batches/{id}` keeps
//!   answering with every item),
//! - items that completed before the crash come back byte-for-byte,
//! - interrupted items are re-queued and re-fit to results
//!   byte-identical to a crash-free run of the same batch.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use srm_obs::json::{parse, Value};

const SRM: &str = env!("CARGO_BIN_EXE_srm");

/// One quick item and one slow one: with a single worker the quick
/// item is done (and persisted) while the slow one is still sampling
/// when the kill lands.
const MIXED_BATCH: &str = r#"{"model":"model0","chains":1,"seed":7,
    "items":[
      {"label":"quick","dataset":"short_campaign_25","samples":200,"burn_in":60},
      {"label":"slow","dataset":"s_shaped_80","samples":6000,"burn_in":1000,"chains":2}
    ]}"#;

/// Two quick items for the crash-point path, where the abort fires
/// before any sampling starts.
const QUICK_BATCH: &str = r#"{"model":"model0","chains":1,"samples":200,"burn_in":60,"seed":11,
    "items":[
      {"label":"a","dataset":"short_campaign_25"},
      {"label":"b","dataset":"ntds_26"}
    ]}"#;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm_batchkill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(state_dir: &Path, port_file: &Path, env: &[(&str, &str)]) -> Child {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(SRM);
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--state-dir",
        state_dir.to_str().unwrap(),
        "--port-file",
        port_file.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.spawn().unwrap()
}

fn wait_for_port(port_file: &Path, child: &mut Child) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("server exited before writing the port file: {status}");
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http(port: u16, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, payload))
}

/// The item's job id, by label, from a batch rollup document.
fn item_job(rollup: &Value, label: &str) -> String {
    rollup
        .get("items")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|i| i.get("label").unwrap().as_str() == Some(label))
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

/// Polls the batch until its rollup reports `status: done`; returns
/// the parsed rollup.
fn wait_batch_done(port: u16, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok((status, body)) = http(port, "GET", &format!("/v1/batches/{id}"), "") {
            assert_eq!(status, 200, "{body}");
            let doc = parse(&body).unwrap();
            if doc.get("status").unwrap().as_str() == Some("done") {
                return doc;
            }
        }
        assert!(Instant::now() < deadline, "batch {id} never finished");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Polls `/v1/results/{id}` until 200 and returns the exact bytes.
fn wait_for_result(port: u16, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok((status, body)) = http(port, "GET", &format!("/v1/results/{id}"), "") {
            if status == 200 {
                return body;
            }
            assert!(status == 202, "job {id} failed: {body}");
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Crash-free reference: runs `batch` on a throwaway server and
/// returns `(label, result bytes)` for every item.
fn reference_batch(tag: &str, batch: &str) -> Vec<(String, String)> {
    let root = temp_root(tag);
    let state = root.join("state");
    let port_file = root.join("srm.port");
    let mut child = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut child);
    let (status, body) = http(port, "POST", "/v1/batches", batch).unwrap();
    assert_eq!(status, 202, "{body}");
    let id = parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let rollup = wait_batch_done(port, &id);
    let results = rollup
        .get("items")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|item| {
            let label = item.get("label").unwrap().as_str().unwrap().to_owned();
            let job = item.get("job").unwrap().as_str().unwrap();
            (label, wait_for_result(port, job))
        })
        .collect();
    child.kill().unwrap();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
    results
}

#[test]
fn sigkill_mid_batch_then_restart_completes_it_byte_identically() {
    let root = temp_root("sigkill");
    let state = root.join("state");
    let port_file = root.join("srm.port");

    let mut first = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut first);

    let (status, body) = http(port, "POST", "/v1/batches", MIXED_BATCH).unwrap();
    assert_eq!(status, 202, "{body}");
    let submit = parse(&body).unwrap();
    let batch_id = submit.get("id").unwrap().as_str().unwrap().to_owned();
    let quick_job = item_job(&submit, "quick");
    let slow_job = item_job(&submit, "slow");

    // Wait until the quick item has landed, then kill while the slow
    // one is still sampling.
    let quick_result = wait_for_result(port, &quick_job);
    first.kill().unwrap(); // SIGKILL — no drain, no snapshot
    let _ = first.wait();

    let mut second = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut second);

    // The batch registry survived the crash with every item intact.
    let (status, body) = http(port, "GET", &format!("/v1/batches/{batch_id}"), "").unwrap();
    assert_eq!(status, 200, "{body}");
    let rollup = parse(&body).unwrap();
    assert_eq!(item_job(&rollup, "quick"), quick_job);
    assert_eq!(item_job(&rollup, "slow"), slow_job);

    // The completed item's bytes come back from the log as-is.
    let (status, recovered_quick) =
        http(port, "GET", &format!("/v1/results/{quick_job}"), "").unwrap();
    assert_eq!(status, 200, "{recovered_quick}");
    assert_eq!(
        recovered_quick, quick_result,
        "completed item must recover byte-identical"
    );

    // The interrupted item is re-fit; the whole batch drains to done
    // and every item matches a crash-free run of the same batch.
    let rollup = wait_batch_done(port, &batch_id);
    assert_eq!(
        rollup
            .get("progress")
            .unwrap()
            .get("done")
            .unwrap()
            .as_f64(),
        Some(2.0),
        "{}",
        rollup.to_json()
    );
    let reference = reference_batch("sigkill_ref", MIXED_BATCH);
    for (label, expected) in &reference {
        let job = item_job(&rollup, label);
        let recovered = wait_for_result(port, &job);
        assert_eq!(
            &recovered, expected,
            "item {label} must be bit-identical to a crash-free batch"
        );
    }

    second.kill().unwrap();
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_point_at_the_batch_wal_append_recovers_and_finishes() {
    let root = temp_root("crashpoint");
    let state = root.join("state");
    let port_file = root.join("srm.port");

    // Submit order on a fresh store: append #1 and #2 are the two
    // item submits, append #3 is the batch record itself — the items
    // only reach the queue after that, so the abort lands with the
    // batch durable but nothing claimed.
    let mut first = spawn_server(&state, &port_file, &[("SRM_CRASH_POINT", "wal-appended:3")]);
    let port = wait_for_port(&port_file, &mut first);
    // The abort can race the 202, so the submit's outcome is ignored;
    // ids are deterministic on a fresh store.
    let _ = http(port, "POST", "/v1/batches", QUICK_BATCH);
    let status = first.wait().unwrap();
    assert!(!status.success(), "armed crash point must abort: {status}");

    // Restart unarmed: batch-1 is recovered with both items pending,
    // the jobs are re-queued, and the batch drains to done with
    // results bit-identical to a crash-free run.
    let mut second = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut second);
    let rollup = wait_batch_done(port, "batch-1");
    let reference = reference_batch("crashpoint_ref", QUICK_BATCH);
    assert_eq!(reference.len(), 2);
    for (label, expected) in &reference {
        let job = item_job(&rollup, label);
        let recovered = wait_for_result(port, &job);
        assert_eq!(
            &recovered, expected,
            "item {label} must be bit-identical to a crash-free batch"
        );
    }

    second.kill().unwrap();
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}
