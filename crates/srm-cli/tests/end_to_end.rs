//! End-to-end CLI workflows exercised through the library entry
//! point (`srm_cli::run`), covering the full simulate → trend →
//! select → fit → predict loop a practitioner would run.

use std::io::Write as _;

fn run(parts: &[&str]) -> Result<String, srm_cli::ArgError> {
    let raw: Vec<String> = parts.iter().map(|s| (*s).to_owned()).collect();
    srm_cli::run(&raw)
}

fn temp_csv(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(body.as_bytes()).unwrap();
    path
}

#[test]
fn full_workflow_simulate_to_predict() {
    // 1. Simulate a project.
    let csv = run(&[
        "simulate", "--bugs", "250", "--days", "40", "--p", "0.05", "--seed", "11",
    ])
    .unwrap();
    let path = temp_csv("srm_cli_e2e.csv", &csv);
    let path = path.to_str().unwrap();

    // 2. Trend: simulated constant-p data on a finite pool exhibits
    // reliability growth (the pool drains).
    let trend = run(&["trend", "--data", path]).unwrap();
    assert!(trend.contains("Laplace trend"));

    // 3. Select with short chains: the output lists all models.
    let select = run(&[
        "select", "--data", path, "--chains", "1", "--samples", "200", "--burn-in", "80",
    ])
    .unwrap();
    for m in ["model0", "model1", "model2", "model3", "model4"] {
        assert!(select.contains(m), "missing {m}");
    }
    assert!(select.contains("best model"));

    // 4. Fit the homogeneous model (matching the generator).
    let fit = run(&[
        "fit", "--data", path, "--model", "model0", "--chains", "2", "--samples", "400",
        "--burn-in", "150", "--seed", "3",
    ])
    .unwrap();
    assert!(fit.contains("posterior of the residual bug count"));
    assert!(fit.contains("95% CI"));

    // 5. Predict over a horizon.
    let predict = run(&[
        "predict", "--data", path, "--model", "model0", "--horizon", "15", "--chains", "1",
        "--samples", "300", "--burn-in", "100",
    ])
    .unwrap();
    assert!(predict.contains("expected detections in the next 15 days"));
    assert!(predict.contains("h =  15"));
}

#[test]
fn help_and_unknown_command() {
    let help = run(&["help"]).unwrap();
    assert!(help.contains("USAGE"));
    let empty = run(&[]).unwrap();
    assert!(empty.contains("USAGE"));
    let err = run(&["frobnicate"]).unwrap_err();
    assert!(err.to_string().contains("unknown command"));
}

#[test]
fn fit_rejects_malformed_csv() {
    let path = temp_csv("srm_cli_bad.csv", "day,count\n1,2\n5,1\n");
    let err = run(&["fit", "--data", path.to_str().unwrap()]).unwrap_err();
    assert!(err.to_string().contains("bad data"));
}

#[test]
fn deterministic_across_invocations() {
    let csv = run(&[
        "simulate", "--bugs", "120", "--days", "25", "--p", "0.06", "--seed", "77",
    ])
    .unwrap();
    let path = temp_csv("srm_cli_det.csv", &csv);
    let args = [
        "fit",
        "--data",
        path.to_str().unwrap(),
        "--model",
        "model0",
        "--chains",
        "1",
        "--samples",
        "200",
        "--burn-in",
        "100",
        "--seed",
        "5",
    ];
    assert_eq!(run(&args).unwrap(), run(&args).unwrap());
}
