//! End-to-end CLI workflows exercised through the library entry
//! point (`srm_cli::run`), covering the full simulate → trend →
//! select → fit → predict loop a practitioner would run.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use std::io::Write as _;

fn run(parts: &[&str]) -> Result<String, srm_cli::ArgError> {
    let raw: Vec<String> = parts.iter().map(|s| (*s).to_owned()).collect();
    srm_cli::run(&raw)
}

fn temp_csv(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(body.as_bytes()).unwrap();
    path
}

#[test]
fn full_workflow_simulate_to_predict() {
    // 1. Simulate a project.
    let csv = run(&[
        "simulate", "--bugs", "250", "--days", "40", "--p", "0.05", "--seed", "11",
    ])
    .unwrap();
    let path = temp_csv("srm_cli_e2e.csv", &csv);
    let path = path.to_str().unwrap();

    // 2. Trend: simulated constant-p data on a finite pool exhibits
    // reliability growth (the pool drains).
    let trend = run(&["trend", "--data", path]).unwrap();
    assert!(trend.contains("Laplace trend"));

    // 3. Select with short chains: the output lists all models.
    let select = run(&[
        "select",
        "--data",
        path,
        "--chains",
        "1",
        "--samples",
        "200",
        "--burn-in",
        "80",
    ])
    .unwrap();
    for m in ["model0", "model1", "model2", "model3", "model4"] {
        assert!(select.contains(m), "missing {m}");
    }
    assert!(select.contains("best model"));

    // 4. Fit the homogeneous model (matching the generator).
    let fit = run(&[
        "fit",
        "--data",
        path,
        "--model",
        "model0",
        "--chains",
        "2",
        "--samples",
        "400",
        "--burn-in",
        "150",
        "--seed",
        "3",
    ])
    .unwrap();
    assert!(fit.contains("posterior of the residual bug count"));
    assert!(fit.contains("95% CI"));

    // 5. Predict over a horizon.
    let predict = run(&[
        "predict",
        "--data",
        path,
        "--model",
        "model0",
        "--horizon",
        "15",
        "--chains",
        "1",
        "--samples",
        "300",
        "--burn-in",
        "100",
    ])
    .unwrap();
    assert!(predict.contains("expected detections in the next 15 days"));
    assert!(predict.contains("h =  15"));
}

#[test]
fn help_and_unknown_command() {
    let help = run(&["help"]).unwrap();
    assert!(help.contains("USAGE"));
    let empty = run(&[]).unwrap();
    assert!(empty.contains("USAGE"));
    let err = run(&["frobnicate"]).unwrap_err();
    assert!(err.to_string().contains("unknown command"));
}

#[test]
fn fit_rejects_malformed_csv() {
    let path = temp_csv("srm_cli_bad.csv", "day,count\n1,2\n5,1\n");
    let err = run(&["fit", "--data", path.to_str().unwrap()]).unwrap_err();
    assert!(err.to_string().contains("bad data"));
}

#[test]
fn fit_rejects_unknown_model_with_one_line_diagnostic() {
    let path = temp_csv("srm_cli_badmodel.csv", "day,count\n1,5\n2,3\n3,2\n");
    let err = run(&["fit", "--data", path.to_str().unwrap(), "--model", "model9"]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown model"), "{msg}");
    assert!(!msg.contains('\n'), "diagnostic must be one line: {msg}");
}

#[test]
fn fit_rejects_unknown_prior_with_one_line_diagnostic() {
    let path = temp_csv("srm_cli_badprior.csv", "day,count\n1,5\n2,3\n3,2\n");
    let err = run(&["fit", "--data", path.to_str().unwrap(), "--prior", "cauchy"]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown prior"), "{msg}");
    assert!(!msg.contains('\n'), "diagnostic must be one line: {msg}");
}

#[test]
fn fit_rejects_zero_chain_config() {
    let path = temp_csv("srm_cli_zerochain.csv", "day,count\n1,5\n2,3\n3,2\n");
    for flag in ["--chains", "--samples", "--thin"] {
        let err = run(&["fit", "--data", path.to_str().unwrap(), flag, "0"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("must be at least 1"), "{flag}: {msg}");
        assert!(!msg.contains('\n'), "diagnostic must be one line: {msg}");
    }
}

#[test]
fn fit_survives_injected_faults_end_to_end() {
    let csv = run(&[
        "simulate", "--bugs", "150", "--days", "30", "--p", "0.05", "--seed", "41",
    ])
    .unwrap();
    let path = temp_csv("srm_cli_faulty.csv", &csv);
    let out = run(&[
        "fit",
        "--data",
        path.to_str().unwrap(),
        "--model",
        "model0",
        "--chains",
        "2",
        "--samples",
        "200",
        "--burn-in",
        "80",
        "--seed",
        "13",
        "--inject-faults",
        "2",
    ])
    .unwrap();
    assert!(out.contains("fault report (per chain)"));
    assert!(out.contains("posterior of the residual bug count"));
}

#[test]
fn deterministic_across_invocations() {
    let csv = run(&[
        "simulate", "--bugs", "120", "--days", "25", "--p", "0.06", "--seed", "77",
    ])
    .unwrap();
    let path = temp_csv("srm_cli_det.csv", &csv);
    let args = [
        "fit",
        "--data",
        path.to_str().unwrap(),
        "--model",
        "model0",
        "--chains",
        "1",
        "--samples",
        "200",
        "--burn-in",
        "100",
        "--seed",
        "5",
    ];
    assert_eq!(run(&args).unwrap(), run(&args).unwrap());
}
