//! Kill/restart fault harness: SIGKILLs a live `srm serve` process
//! mid-job, restarts it on the same `--state-dir`, and asserts the
//! recovered state is byte-identical to what a crash-free run would
//! have produced.
//!
//! Two fault injectors are exercised:
//!
//! - a raw `SIGKILL` delivered from outside at an arbitrary moment
//!   (the in-flight job is somewhere between queued and done), and
//! - the seed-deterministic crash-point hook (`SRM_CRASH_POINT`),
//!   which aborts the process *at* a WAL boundary, pinning down the
//!   exact torn state recovery must handle.
//!
//! Both paths assert the two recovery invariants from DESIGN.md §13:
//! completed results come back byte-for-byte, and interrupted jobs
//! are re-fit to bit-identical results (content-addressed cache keys
//! and seed-deterministic samplers make "re-run" and "recover"
//! indistinguishable).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test helpers

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SRM: &str = env!("CARGO_BIN_EXE_srm");

/// A fast job: done in well under a second even in debug builds.
const QUICK_JOB: &str = r#"{"kind":"fit","dataset":"short_campaign_25","model":"model0",
    "chains":1,"samples":200,"burn_in":60,"seed":7}"#;

/// A slow job: enough sweeps that a kill signal sent right after the
/// 202 lands while the sampler is still running.
const SLOW_JOB: &str = r#"{"kind":"fit","dataset":"s_shaped_80","model":"model1",
    "chains":2,"samples":6000,"burn_in":1000,"seed":42}"#;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(state_dir: &Path, port_file: &Path, env: &[(&str, &str)]) -> Child {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(SRM);
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--state-dir",
        state_dir.to_str().unwrap(),
        "--port-file",
        port_file.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.spawn().unwrap()
}

fn wait_for_port(port_file: &Path, child: &mut Child) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("server exited before writing the port file: {status}");
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http(port: u16, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: srm\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, payload))
}

/// Extracts a top-level string field from a flat JSON response
/// without pulling in a parser: `"field":"value"`.
fn json_str_field(body: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Polls `/v1/results/{id}` until 200 and returns the exact result
/// bytes.
fn wait_for_result(port: u16, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok((status, body)) = http(port, "GET", &format!("/v1/results/{id}"), "") {
            if status == 200 {
                return body;
            }
            assert!(status == 202, "job {id} failed: {body}");
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// The crash-free reference: runs `spec` on a throwaway server and
/// returns the result bytes a client would fetch.
fn reference_result(tag: &str, spec: &str) -> String {
    let root = temp_root(tag);
    let state = root.join("state");
    let port_file = root.join("srm.port");
    let mut child = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut child);
    let (status, body) = http(port, "POST", "/v1/jobs", spec).unwrap();
    assert!(status == 202 || status == 201, "{body}");
    let id = json_str_field(&body, "id").unwrap();
    let result = wait_for_result(port, &id);
    child.kill().unwrap();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
    result
}

#[test]
fn sigkill_mid_job_then_restart_recovers_byte_identical_results() {
    let root = temp_root("sigkill");
    let state = root.join("state");
    let port_file = root.join("srm.port");

    let mut first = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut first);

    // Job A completes before the kill; its bytes must survive as-is.
    let (status, body) = http(port, "POST", "/v1/jobs", QUICK_JOB).unwrap();
    assert_eq!(status, 202, "{body}");
    let id_a = json_str_field(&body, "id").unwrap();
    let result_a = wait_for_result(port, &id_a);

    // Job B is still sampling when the SIGKILL lands.
    let (status, body) = http(port, "POST", "/v1/jobs", SLOW_JOB).unwrap();
    assert_eq!(status, 202, "{body}");
    let id_b = json_str_field(&body, "id").unwrap();

    first.kill().unwrap(); // SIGKILL on unix — no drain, no snapshot
    let _ = first.wait();

    // Restart on the same state dir: A's result comes back from the
    // log byte-for-byte; B is re-queued and re-fit deterministically.
    let mut second = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut second);

    let (status, recovered_a) = http(port, "GET", &format!("/v1/results/{id_a}"), "").unwrap();
    assert_eq!(status, 200, "{recovered_a}");
    assert_eq!(
        recovered_a, result_a,
        "recovered result must be byte-identical"
    );

    let recovered_b = wait_for_result(port, &id_b);
    assert_eq!(
        recovered_b,
        reference_result("sigkill_ref", SLOW_JOB),
        "re-fit after crash must be bit-identical to a crash-free run"
    );

    // The repeat submission hits the recovered fit cache.
    let (status, body) = http(port, "POST", "/v1/jobs", QUICK_JOB).unwrap();
    assert_eq!(status, 201, "expected a cache hit: {body}");
    assert!(body.contains("\"cached\":true"), "{body}");

    second.kill().unwrap();
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_point_abort_at_wal_boundary_recovers_the_claimed_job() {
    let root = temp_root("crashpoint");
    let state = root.join("state");
    let port_file = root.join("srm.port");

    // Abort the instant the claim record reaches the WAL: append #1
    // is the submit, append #2 the worker's claim. The job dies
    // mid-handoff — exactly the torn state replay must tolerate.
    let mut first = spawn_server(&state, &port_file, &[("SRM_CRASH_POINT", "wal-appended:2")]);
    let port = wait_for_port(&port_file, &mut first);
    // The abort can race the 202 response, so ignore the submit's
    // outcome; the id is deterministic (`job-1` on a fresh store).
    let _ = http(port, "POST", "/v1/jobs", QUICK_JOB);

    let status = first.wait().unwrap();
    assert!(!status.success(), "armed crash point must abort: {status}");

    // Restart (unarmed): the submitted-and-claimed job is re-queued,
    // re-fit, and indistinguishable from a crash-free run.
    let mut second = spawn_server(&state, &port_file, &[]);
    let port = wait_for_port(&port_file, &mut second);
    let recovered = wait_for_result(port, "job-1");
    assert_eq!(
        recovered,
        reference_result("crashpoint_ref", QUICK_JOB),
        "recovered fit must be bit-identical to a crash-free run"
    );

    second.kill().unwrap();
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}
