//! Trend analysis of grouped bug-count data.
//!
//! Before fitting a reliability-growth model it is standard practice
//! to test whether the data exhibit growth at all. The Laplace trend
//! test is the classic tool: for grouped counts `x_1..x_k` with total
//! `s`, the statistic
//!
//! ```text
//! u = ( Σ_i i·x_i / s  −  (k+1)/2 ) / sqrt( (k² − 1) / (12 s) )
//! ```
//!
//! is asymptotically standard normal under a homogeneous Poisson
//! process. `u < −1.96` indicates significant reliability growth
//! (detections drifting earlier), `u > 1.96` significant decay.

use crate::dataset::BugCountData;

/// The outcome of a Laplace trend test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceTrend {
    /// The test statistic `u`.
    pub statistic: f64,
    /// Two-sided p-value under the standard normal reference.
    pub p_value: f64,
}

/// The qualitative verdict at the 5 % level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendVerdict {
    /// `u < −1.96`: detections concentrate early — reliability growth.
    Growth,
    /// `|u| ≤ 1.96`: no significant trend (stable).
    Stable,
    /// `u > 1.96`: detections concentrate late — reliability decay.
    Decay,
}

impl LaplaceTrend {
    /// The 5 %-level verdict.
    #[must_use]
    pub fn verdict(&self) -> TrendVerdict {
        if self.statistic < -1.96 {
            TrendVerdict::Growth
        } else if self.statistic > 1.96 {
            TrendVerdict::Decay
        } else {
            TrendVerdict::Stable
        }
    }
}

/// Runs the Laplace trend test on grouped data.
///
/// Returns `None` when fewer than two days or fewer than two bugs are
/// available (the statistic is undefined).
///
/// # Examples
///
/// ```
/// use srm_data::analysis::{laplace_trend, TrendVerdict};
/// use srm_data::datasets;
///
/// // The primary dataset back-loads its detections (activity rises
/// // mid-campaign), so the test reports decay — exactly why the
/// // heterogeneous models with a time axis (model1/model2) win.
/// let trend = laplace_trend(&datasets::musa_cc96()).unwrap();
/// assert_eq!(trend.verdict(), TrendVerdict::Decay);
/// ```
#[must_use]
pub fn laplace_trend(data: &BugCountData) -> Option<LaplaceTrend> {
    let k = data.len();
    let s = data.total();
    if k < 2 || s < 2 {
        return None;
    }
    let kf = k as f64;
    let sf = s as f64;
    let weighted: f64 = data.iter().map(|(day, x)| day as f64 * x as f64).sum();
    let mean_day = weighted / sf;
    let statistic = (mean_day - (kf + 1.0) / 2.0) / ((kf * kf - 1.0) / (12.0 * sf)).sqrt();
    let p_value = 2.0 * (1.0 - srm_math::norm_cdf(statistic.abs()));
    Some(LaplaceTrend { statistic, p_value })
}

/// The Laplace statistic evaluated at every prefix of the data — the
/// running trend chart practitioners plot to spot change points.
///
/// Index `i` holds the statistic for days `1..=i+2` (prefixes shorter
/// than 2 days are skipped).
#[must_use]
pub fn running_laplace_trend(data: &BugCountData) -> Vec<f64> {
    (2..=data.len())
        .filter_map(|day| {
            let prefix = data.truncated(day).ok()?;
            laplace_trend(&prefix).map(|t| t.statistic)
        })
        .collect()
}

/// Simple descriptive statistics of a grouped dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSummary {
    /// Number of testing days.
    pub days: usize,
    /// Total bugs detected.
    pub total: u64,
    /// Mean bugs per day.
    pub mean_per_day: f64,
    /// Sample variance of the daily counts.
    pub variance_per_day: f64,
    /// Index of dispersion (variance / mean); > 1 suggests
    /// over-dispersion relative to a homogeneous Poisson process.
    pub dispersion: f64,
    /// Fraction of days with zero detections.
    pub zero_fraction: f64,
}

/// Computes [`DatasetSummary`].
///
/// # Examples
///
/// ```
/// let s = srm_data::analysis::summarize(&srm_data::datasets::musa_cc96());
/// assert_eq!(s.days, 96);
/// assert_eq!(s.total, 136);
/// assert!(s.mean_per_day > 1.0 && s.mean_per_day < 2.0);
/// ```
#[must_use]
pub fn summarize(data: &BugCountData) -> DatasetSummary {
    let days = data.len();
    let total = data.total();
    let mean = total as f64 / days as f64;
    let variance = data
        .counts()
        .iter()
        .map(|&x| (x as f64 - mean).powi(2))
        .sum::<f64>()
        / (days as f64 - 1.0).max(1.0);
    let zeros = data.counts().iter().filter(|&&x| x == 0).count();
    DatasetSummary {
        days,
        total,
        mean_per_day: mean,
        variance_per_day: variance,
        dispersion: if mean > 0.0 { variance / mean } else { 0.0 },
        zero_fraction: zeros as f64 / days as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn decaying_series_shows_growth() {
        let t = laplace_trend(&datasets::decaying_growth_60()).unwrap();
        assert_eq!(t.verdict(), TrendVerdict::Growth, "u = {}", t.statistic);
        assert!(t.p_value < 0.05);
    }

    #[test]
    fn late_surge_shows_decay() {
        let t = laplace_trend(&datasets::late_surge_50()).unwrap();
        assert_eq!(t.verdict(), TrendVerdict::Decay, "u = {}", t.statistic);
    }

    #[test]
    fn flat_series_is_stable() {
        let data = BugCountData::new(vec![2; 50]).unwrap();
        let t = laplace_trend(&data).unwrap();
        assert_eq!(t.verdict(), TrendVerdict::Stable, "u = {}", t.statistic);
        assert!(t.statistic.abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(laplace_trend(&BugCountData::new(vec![5]).unwrap()).is_none());
        assert!(laplace_trend(&BugCountData::new(vec![1, 0]).unwrap()).is_none());
        assert!(laplace_trend(&BugCountData::new(vec![0, 0, 0]).unwrap()).is_none());
    }

    #[test]
    fn statistic_sign_matches_mass_location() {
        // All bugs on day 1 → strongly negative; all on the last day
        // → strongly positive.
        let early = BugCountData::new(vec![20, 0, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let late = BugCountData::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 20]).unwrap();
        assert!(laplace_trend(&early).unwrap().statistic < -3.0);
        assert!(laplace_trend(&late).unwrap().statistic > 3.0);
    }

    #[test]
    fn running_trend_has_one_entry_per_prefix() {
        let data = datasets::musa_cc96();
        let running = running_laplace_trend(&data);
        // Prefixes with fewer than two bugs are skipped (the primary
        // dataset opens with three empty days), so the series is at
        // most len − 1 and close to it.
        assert!(running.len() < data.len());
        assert!(running.len() >= data.len() - 6, "len = {}", running.len());
        // The final entry equals the full-data statistic.
        let full = laplace_trend(&data).unwrap().statistic;
        assert!((running.last().unwrap() - full).abs() < 1e-12);
    }

    #[test]
    fn summary_consistency() {
        let s = summarize(&datasets::musa_cc96());
        assert_eq!(s.days, 96);
        assert_eq!(s.total, 136);
        assert!((s.mean_per_day - 136.0 / 96.0).abs() < 1e-12);
        assert!(s.zero_fraction > 0.0 && s.zero_fraction < 1.0);
        assert!(s.dispersion > 0.0);
    }

    #[test]
    fn p_value_in_unit_interval() {
        for (_, data) in datasets::all_named() {
            if let Some(t) = laplace_trend(&data) {
                assert!((0.0..=1.0).contains(&t.p_value));
            }
        }
    }
}
