//! Bootstrap resampling of grouped bug-count data.
//!
//! Used by the robustness extension: re-run the model ranking on
//! bootstrap replicates of the dataset and check that the WAIC winner
//! is stable. Daily counts are serially dependent (reliability
//! growth), so a *moving-block* bootstrap is used: blocks of
//! consecutive days are resampled with replacement and concatenated,
//! preserving short-range structure while randomising the long-range
//! arrangement.

use crate::dataset::BugCountData;
use srm_rand::{Pcg64, Rng};

/// Moving-block bootstrap resampler.
///
/// # Examples
///
/// ```
/// use srm_data::bootstrap::BlockBootstrap;
/// use srm_data::datasets;
///
/// let data = datasets::musa_cc96();
/// let boot = BlockBootstrap::new(12);
/// let replicate = boot.resample(&data, 7);
/// assert_eq!(replicate.len(), data.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBootstrap {
    block_len: usize,
}

impl BlockBootstrap {
    /// Creates a resampler with the given block length.
    ///
    /// # Panics
    ///
    /// Panics if `block_len == 0`.
    #[must_use]
    pub fn new(block_len: usize) -> Self {
        assert!(block_len > 0, "block length must be positive");
        Self { block_len }
    }

    /// A common default: `⌈k^{1/3}⌉` blocks of roughly cube-root
    /// length, the standard rate for moving-block bootstraps.
    #[must_use]
    pub fn with_default_block(data: &BugCountData) -> Self {
        let len = (data.len() as f64).powf(1.0 / 3.0).ceil() as usize;
        Self::new(len.max(1))
    }

    /// The block length.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// One bootstrap replicate of the same length as `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than the block length.
    #[must_use]
    pub fn resample(&self, data: &BugCountData, seed: u64) -> BugCountData {
        let mut rng = Pcg64::seed_stream(seed, 0xB00);
        self.resample_with(data, &mut rng)
    }

    /// One replicate drawing from the supplied RNG.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than the block length.
    pub fn resample_with<R: Rng + ?Sized>(&self, data: &BugCountData, rng: &mut R) -> BugCountData {
        let counts = data.counts();
        let k = counts.len();
        assert!(
            k >= self.block_len,
            "dataset ({k} days) shorter than block ({})",
            self.block_len
        );
        let starts = (k - self.block_len + 1) as u64;
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let start = rng.next_below(starts) as usize;
            let take = self.block_len.min(k - out.len());
            out.extend_from_slice(&counts[start..start + take]);
        }
        // Non-empty by the block-length assertion above.
        BugCountData::new(out).unwrap_or_else(|_| unreachable!())
    }

    /// `n` replicates with consecutive seeds.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than the block length.
    #[must_use]
    pub fn replicates(&self, data: &BugCountData, base_seed: u64, n: usize) -> Vec<BugCountData> {
        (0..n)
            .map(|i| self.resample(data, base_seed + i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_block_panics() {
        let _ = BlockBootstrap::new(0);
    }

    #[test]
    fn replicate_preserves_length() {
        let data = datasets::musa_cc96();
        let boot = BlockBootstrap::new(10);
        for seed in 0..5 {
            assert_eq!(boot.resample(&data, seed).len(), 96);
        }
    }

    #[test]
    fn replicates_differ_but_resemble_original() {
        let data = datasets::musa_cc96();
        let boot = BlockBootstrap::with_default_block(&data);
        let reps = boot.replicates(&data, 11, 30);
        // Not all identical.
        assert!(reps.windows(2).any(|w| w[0] != w[1]));
        // Totals fluctuate around the original.
        let mean_total: f64 =
            reps.iter().map(|r| r.total() as f64).sum::<f64>() / reps.len() as f64;
        assert!(
            (mean_total - 136.0).abs() < 20.0,
            "mean total = {mean_total}"
        );
    }

    #[test]
    fn blocks_are_contiguous_slices_of_original() {
        // With block length 4 every aligned block in the replicate
        // must occur contiguously somewhere in the original.
        let data = BugCountData::new((1..=20u64).collect()).unwrap();
        let boot = BlockBootstrap::new(4);
        let rep = boot.resample(&data, 3);
        let original = data.counts();
        for chunk in rep.counts().chunks(4) {
            let found = original.windows(chunk.len()).any(|w| w == chunk);
            assert!(found, "chunk {chunk:?} not a contiguous slice");
        }
    }

    #[test]
    fn default_block_scales_with_cube_root() {
        let data = datasets::musa_cc96(); // 96 days
        let boot = BlockBootstrap::with_default_block(&data);
        assert_eq!(boot.block_len(), 5); // ceil(96^(1/3)) = 5
    }

    #[test]
    fn deterministic_given_seed() {
        let data = datasets::musa_cc96();
        let boot = BlockBootstrap::new(8);
        assert_eq!(boot.resample(&data, 42), boot.resample(&data, 42));
        assert_ne!(boot.resample(&data, 42), boot.resample(&data, 43));
    }
}
