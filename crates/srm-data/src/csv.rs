//! Minimal CSV import/export for bug-count data.
//!
//! The format is two columns, `day,count`, with an optional header
//! row. Days must be the consecutive integers `1..=k` — grouped SRM
//! data has no gaps (a day with no findings is an explicit zero).

use crate::dataset::BugCountData;
use std::io::{BufRead, BufReader, Read, Write};

/// Error raised while parsing CSV bug-count data.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads `day,count` rows from `reader`. A first row whose fields are
/// not numeric is treated as a header and skipped.
///
/// Pass `&mut reader` if you need the reader back afterwards.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure, malformed rows, non-consecutive
/// days or an empty body.
///
/// # Examples
///
/// ```
/// let csv = "day,count\n1,3\n2,0\n3,2\n";
/// let data = srm_data::csv::read_counts(csv.as_bytes()).unwrap();
/// assert_eq!(data.counts(), &[3, 0, 2]);
/// ```
pub fn read_counts<R: Read>(reader: R) -> Result<BugCountData, CsvError> {
    let buf = BufReader::new(reader);
    let mut counts: Vec<u64> = Vec::new();
    let mut expected_day = 1u64;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',').map(str::trim);
        let day_field = fields.next().unwrap_or("");
        let count_field = fields.next().ok_or_else(|| CsvError::Parse {
            line: line_no,
            message: "expected two comma-separated fields".into(),
        })?;
        if fields.next().is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                message: "expected exactly two fields".into(),
            });
        }
        let day: u64 = match day_field.parse() {
            Ok(d) => d,
            Err(_) if counts.is_empty() && expected_day == 1 => continue, // header
            Err(_) => {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("invalid day `{day_field}`"),
                })
            }
        };
        let count: u64 = count_field.parse().map_err(|_| CsvError::Parse {
            line: line_no,
            message: format!("invalid count `{count_field}`"),
        })?;
        if day != expected_day {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected day {expected_day}, found {day}"),
            });
        }
        expected_day += 1;
        counts.push(count);
    }
    BugCountData::new(counts).map_err(|_| CsvError::Empty)
}

/// Writes `data` as `day,count` rows with a header.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Examples
///
/// ```
/// use srm_data::BugCountData;
/// let data = BugCountData::new(vec![1, 2]).unwrap();
/// let mut out = Vec::new();
/// srm_data::csv::write_counts(&data, &mut out).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "day,count\n1,1\n2,2\n");
/// ```
pub fn write_counts<W: Write>(data: &BugCountData, writer: &mut W) -> std::io::Result<()> {
    writeln!(writer, "day,count")?;
    for (day, count) in data.iter() {
        writeln!(writer, "{day},{count}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = BugCountData::new(vec![3, 0, 5, 1]).unwrap();
        let mut out = Vec::new();
        write_counts(&data, &mut out).unwrap();
        let back = read_counts(out.as_slice()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn headerless_input_accepted() {
        let data = read_counts("1,2\n2,3\n".as_bytes()).unwrap();
        assert_eq!(data.counts(), &[2, 3]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# project X\nday,count\n\n1,4\n# mid comment\n2,1\n";
        let data = read_counts(src.as_bytes()).unwrap();
        assert_eq!(data.counts(), &[4, 1]);
    }

    #[test]
    fn rejects_gap_in_days() {
        let err = read_counts("1,2\n3,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_count() {
        let err = read_counts("1,-2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid count"));
    }

    #[test]
    fn rejects_extra_fields() {
        let err = read_counts("1,2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exactly two"));
    }

    #[test]
    fn rejects_empty_body() {
        let err = read_counts("day,count\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn rejects_second_header() {
        let err = read_counts("1,2\nday,count\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid day"));
    }

    #[test]
    fn rejects_completely_empty_file() {
        let err = read_counts("".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn rejects_comment_only_file() {
        let err = read_counts("# nothing here\n\n# still nothing\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn rejects_out_of_order_days() {
        // Days running backwards mean the cumulative series would not
        // be monotone — a typed error, never a silent re-sort.
        let err = read_counts("1,2\n3,1\n2,4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("expected day 2"));
    }

    #[test]
    fn rejects_duplicate_day() {
        let err = read_counts("1,2\n1,3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_day_zero_start() {
        let err = read_counts("0,2\n1,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected day 1, found 0"));
    }

    #[test]
    fn rejects_negative_day_past_header() {
        let err = read_counts("1,2\n-2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid day"));
    }

    #[test]
    fn rejects_count_overflow() {
        // One digit past u64::MAX must be a parse error, not a wrap.
        let err = read_counts("1,184467440737095516160\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid count"));
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let data = read_counts("day,count\r\n1,4\r\n2,0\r\n".as_bytes()).unwrap();
        assert_eq!(data.counts(), &[4, 0]);
    }

    #[test]
    fn parse_errors_carry_line_numbers_through_display() {
        let err = read_counts("day,count\n1,4\n2,oops\n".as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "line 3: invalid count `oops`");
    }
}
