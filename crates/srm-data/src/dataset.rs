//! The grouped bug-count container.

/// Error raised when constructing or manipulating [`BugCountData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The daily count vector was empty.
    Empty,
    /// A requested observation day lies outside the data.
    DayOutOfRange {
        /// The requested day (1-based).
        day: usize,
        /// The number of days available.
        len: usize,
    },
    /// The cumulative count `s_i` exceeds `u64::MAX`.
    Overflow {
        /// The (1-based) day whose count overflowed the running sum.
        day: usize,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "dataset has no testing days"),
            Self::DayOutOfRange { day, len } => {
                write!(f, "day {day} outside dataset of {len} days")
            }
            Self::Overflow { day } => {
                write!(f, "cumulative bug count overflows u64 at day {day}")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// Grouped software bug-count data: `x_i` bugs detected on testing day
/// `i` (1-based, as in the paper).
///
/// The container owns the daily counts and precomputes the cumulative
/// series `s_i = Σ_{j ≤ i} x_j` that the likelihood (Eq. (2)) and the
/// posterior updates (Props. 1–2) consume.
///
/// # Examples
///
/// ```
/// use srm_data::BugCountData;
///
/// let data = BugCountData::new(vec![3, 0, 2, 1]).unwrap();
/// assert_eq!(data.total(), 6);
/// assert_eq!(data.cumulative(), &[3, 3, 5, 6]);
/// assert_eq!(data.detected_by(2), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugCountData {
    counts: Vec<u64>,
    cumulative: Vec<u64>,
}

impl BugCountData {
    /// Wraps a vector of daily counts.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] for an empty vector and
    /// [`DataError::Overflow`] when the cumulative sum exceeds
    /// `u64::MAX`.
    pub fn new(counts: Vec<u64>) -> Result<Self, DataError> {
        if counts.is_empty() {
            return Err(DataError::Empty);
        }
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut running = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            running = running
                .checked_add(c)
                .ok_or(DataError::Overflow { day: i + 1 })?;
            cumulative.push(running);
        }
        Ok(Self { counts, cumulative })
    }

    /// Number of testing days `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the dataset is empty (never true for a constructed
    /// value; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Daily counts `x_1, …, x_k`.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts `s_1, …, s_k`.
    #[must_use]
    pub fn cumulative(&self) -> &[u64] {
        &self.cumulative
    }

    /// Total number of bugs detected, `s_k`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cumulative
            .last()
            .copied()
            .unwrap_or_else(|| unreachable!())
    }

    /// Count on day `day` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `day` is 0 or beyond the last day.
    #[must_use]
    pub fn count_on(&self, day: usize) -> u64 {
        assert!(day >= 1 && day <= self.len(), "day {day} out of range");
        self.counts[day - 1]
    }

    /// Cumulative bugs detected by the end of `day` (1-based);
    /// `detected_by(0)` is 0 (`s_0`).
    ///
    /// # Panics
    ///
    /// Panics if `day` exceeds the last day.
    #[must_use]
    pub fn detected_by(&self, day: usize) -> u64 {
        assert!(day <= self.len(), "day {day} out of range");
        if day == 0 {
            0
        } else {
            self.cumulative[day - 1]
        }
    }

    /// The data truncated to the first `day` days (an observation
    /// point in the paper's protocol).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DayOutOfRange`] if `day` is 0 or beyond
    /// the dataset.
    pub fn truncated(&self, day: usize) -> Result<Self, DataError> {
        if day == 0 || day > self.len() {
            return Err(DataError::DayOutOfRange {
                day,
                len: self.len(),
            });
        }
        Ok(Self {
            counts: self.counts[..day].to_vec(),
            cumulative: self.cumulative[..day].to_vec(),
        })
    }

    /// The data extended with `extra` zero-count days — the paper's
    /// *virtual testing* hypothesis that no bug is found after release
    /// (§5.1).
    #[must_use]
    pub fn extended_with_zeros(&self, extra: usize) -> Self {
        let mut counts = self.counts.clone();
        counts.extend(std::iter::repeat_n(0, extra));
        let mut cumulative = self.cumulative.clone();
        let last = self.total();
        cumulative.extend(std::iter::repeat_n(last, extra));
        Self { counts, cumulative }
    }

    /// Iterates over `(day, count)` pairs with 1-based days.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| (i + 1, c))
    }

    /// Re-groups the data into periods of `width` days (the paper's
    /// models work on any grouping — "calendar day or week"); a
    /// trailing partial period is kept.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn aggregated(&self, width: usize) -> Self {
        assert!(width > 0, "aggregation width must be positive");
        let counts: Vec<u64> = self.counts.chunks(width).map(|c| c.iter().sum()).collect();
        Self::new(counts).unwrap_or_else(|_| unreachable!())
    }

    /// Number of days with at least one detection.
    #[must_use]
    pub fn active_days(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Largest single-day count.
    #[must_use]
    pub fn max_daily(&self) -> u64 {
        self.counts
            .iter()
            .max()
            .copied()
            .unwrap_or_else(|| unreachable!())
    }
}

impl TryFrom<Vec<u64>> for BugCountData {
    type Error = DataError;

    fn try_from(counts: Vec<u64>) -> Result<Self, Self::Error> {
        Self::new(counts)
    }
}

impl std::fmt::Display for BugCountData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BugCountData({} bugs over {} days, peak {}/day)",
            self.total(),
            self.len(),
            self.max_daily()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BugCountData {
        BugCountData::new(vec![2, 0, 3, 1, 0, 4]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(BugCountData::new(vec![]), Err(DataError::Empty));
    }

    #[test]
    fn rejects_cumulative_overflow() {
        let err = BugCountData::new(vec![1, u64::MAX]).unwrap_err();
        assert_eq!(err, DataError::Overflow { day: 2 });
        assert!(err.to_string().contains("overflows u64 at day 2"));
        // The boundary itself is fine.
        let d = BugCountData::new(vec![u64::MAX - 1, 1]).unwrap();
        assert_eq!(d.total(), u64::MAX);
    }

    #[test]
    fn cumulative_is_prefix_sum() {
        let d = sample();
        assert_eq!(d.cumulative(), &[2, 2, 5, 6, 6, 10]);
        assert_eq!(d.total(), 10);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn detected_by_day_zero_is_zero() {
        assert_eq!(sample().detected_by(0), 0);
        assert_eq!(sample().detected_by(3), 5);
        assert_eq!(sample().detected_by(6), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn detected_by_beyond_end_panics() {
        let _ = sample().detected_by(7);
    }

    #[test]
    fn truncation_preserves_prefix() {
        let d = sample();
        let t = d.truncated(3).unwrap();
        assert_eq!(t.counts(), &[2, 0, 3]);
        assert_eq!(t.total(), 5);
        assert_eq!(d.truncated(6).unwrap(), d);
    }

    #[test]
    fn truncation_out_of_range() {
        let d = sample();
        assert!(matches!(
            d.truncated(0),
            Err(DataError::DayOutOfRange { day: 0, .. })
        ));
        assert!(d.truncated(7).is_err());
    }

    #[test]
    fn zero_extension_models_virtual_testing() {
        let d = sample().extended_with_zeros(4);
        assert_eq!(d.len(), 10);
        assert_eq!(d.total(), 10);
        assert_eq!(d.detected_by(10), 10);
        assert_eq!(d.count_on(8), 0);
        // Extending by zero days is the identity.
        assert_eq!(sample().extended_with_zeros(0), sample());
    }

    #[test]
    fn iteration_is_one_based() {
        let pairs: Vec<(usize, u64)> = sample().iter().collect();
        assert_eq!(pairs[0], (1, 2));
        assert_eq!(pairs[5], (6, 4));
    }

    #[test]
    fn summary_statistics() {
        let d = sample();
        assert_eq!(d.active_days(), 4);
        assert_eq!(d.max_daily(), 4);
        let shown = d.to_string();
        assert!(shown.contains("10 bugs") && shown.contains("6 days"));
    }

    #[test]
    fn aggregation_preserves_total() {
        let d = sample(); // 6 days
        let weekly = d.aggregated(7);
        assert_eq!(weekly.len(), 1);
        assert_eq!(weekly.total(), d.total());
        let pairs = d.aggregated(2);
        assert_eq!(pairs.counts(), &[2, 4, 4]);
        let with_tail = d.aggregated(4);
        assert_eq!(with_tail.counts(), &[6, 4]); // trailing partial kept
    }

    #[test]
    fn aggregation_by_one_is_identity() {
        let d = sample();
        assert_eq!(d.aggregated(1), d);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn aggregation_zero_width_panics() {
        let _ = sample().aggregated(0);
    }

    #[test]
    fn try_from_round_trip() {
        let d: BugCountData = vec![1, 2, 3].try_into().unwrap();
        assert_eq!(d.total(), 6);
        let err: Result<BugCountData, _> = Vec::<u64>::new().try_into();
        assert!(err.is_err());
    }
}
