//! Embedded datasets.
//!
//! The primary series, [`musa_cc96`], is a deterministic synthetic
//! stand-in for the Musa RADC dataset (136 bugs over 96 testing days
//! of a real-time command & control system; Musa, *Software
//! Reliability Data*, RADC TR, 1979) which is not redistributable.
//! It preserves every invariant of the original that the paper's
//! tables expose:
//!
//! * 96 testing days, 136 bugs in total;
//! * cumulative counts 42 by day 48, 84 by day 67 and 132 by day 86
//!   (recoverable from the parenthesised deviations in Tables II–IV);
//! * a reliability-growth shape with a quiet tail after day 86.
//!
//! The remaining datasets fall in two groups:
//!
//! * synthetic series with distinct growth shapes used by the
//!   multi-dataset extension experiment (§6 of the paper lists this
//!   as future work) — [`decaying_growth_60`] through
//!   [`late_surge_50`];
//! * documented synthetic stand-ins for classic SRM series from the
//!   literature, each preserving the day count, total bug count and
//!   overall growth shape of its namesake while using fabricated
//!   daily counts (the originals are not redistributable) —
//!   [`ntds_26`], [`tandem_20w`], [`ohba_sshape_22w`] and
//!   [`musa_ss3_28`].

use crate::dataset::BugCountData;

/// Daily counts of the primary dataset (see module docs).
const MUSA_CC96: [u64; 96] = [
    0, 0, 0, 2, 1, 0, 1, 0, 0, 0, 1, 0, 0, 3, 0, 0, 1, 1, 1, 0, 0, 1, 1, 3, 1, 0, 2, 1, 1, 1, 1, 0,
    0, 1, 3, 1, 1, 2, 3, 0, 2, 1, 0, 1, 1, 0, 1, 2, 2, 1, 2, 2, 4, 3, 2, 2, 1, 3, 3, 5, 3, 1, 2, 3,
    0, 2, 1, 3, 5, 1, 4, 4, 2, 5, 3, 3, 3, 2, 3, 3, 1, 1, 3, 1, 1, 0, 1, 0, 1, 0, 0, 0, 2, 0, 0, 0,
];

/// The primary dataset: 136 bugs over 96 testing days (synthetic
/// stand-in for the Musa command & control data; see module docs).
///
/// # Examples
///
/// ```
/// let d = srm_data::datasets::musa_cc96();
/// assert_eq!(d.len(), 96);
/// assert_eq!(d.total(), 136);
/// assert_eq!(d.detected_by(48), 42);
/// assert_eq!(d.detected_by(67), 84);
/// assert_eq!(d.detected_by(86), 132);
/// ```
#[must_use]
pub fn musa_cc96() -> BugCountData {
    BugCountData::new(MUSA_CC96.to_vec()).unwrap_or_else(|_| unreachable!())
}

/// A steadily decaying series (classic exponential reliability
/// growth): 78 bugs over 60 days, most found early.
#[must_use]
pub fn decaying_growth_60() -> BugCountData {
    let counts: Vec<u64> = (0..60)
        .map(|i| {
            // Deterministic decay with small oscillation.
            let base = 5.0 * (-0.06 * i as f64).exp();
            let wobble = ((i * 7 + 3) % 5) as f64 * 0.2;
            (base + wobble).floor() as u64
        })
        .collect();
    BugCountData::new(counts).unwrap_or_else(|_| unreachable!())
}

/// An S-shaped series (slow start, burst, saturation): 94 bugs over
/// 80 days — the delayed-S-shape often seen when test cases mature.
#[must_use]
pub fn s_shaped_80() -> BugCountData {
    let counts: Vec<u64> = (0..80)
        .map(|i| {
            let t = i as f64 / 80.0;
            // Logistic bump peaked near t = 0.45.
            let rate = 4.2 * (-(t - 0.45).powi(2) / 0.03).exp();
            let wobble = ((i * 11 + 1) % 3) as f64 * 0.3;
            (rate + wobble).floor() as u64
        })
        .collect();
    BugCountData::new(counts).unwrap_or_else(|_| unreachable!())
}

/// A short, intense test campaign: 45 bugs over 25 days.
#[must_use]
pub fn short_campaign_25() -> BugCountData {
    let counts = vec![
        4, 3, 5, 2, 4, 3, 2, 3, 2, 2, 1, 2, 2, 1, 1, 2, 1, 1, 1, 0, 1, 1, 0, 1, 0,
    ];
    BugCountData::new(counts).unwrap_or_else(|_| unreachable!())
}

/// A plateaued series where detection never clearly decays: 150 bugs
/// over 100 days — the adversarial case for reliability-growth models.
#[must_use]
pub fn plateau_100() -> BugCountData {
    let counts: Vec<u64> = (0..100).map(|i| ((i * 13 + 5) % 4) as u64).collect();
    BugCountData::new(counts).unwrap_or_else(|_| unreachable!())
}

/// A late-surge series: quiet start, most bugs near the end — the
/// shape that penalises models assuming monotone growth. 52 bugs over
/// 50 days.
#[must_use]
pub fn late_surge_50() -> BugCountData {
    let counts: Vec<u64> = (0..50)
        .map(|i| {
            let t = i as f64 / 50.0;
            let rate = 3.5 * t * t + ((i % 3) as f64) * 0.4;
            rate.floor() as u64
        })
        .collect();
    BugCountData::new(counts).unwrap_or_else(|_| unreachable!())
}

/// Daily counts of the NTDS stand-in (see [`ntds_26`]).
const NTDS_26: [u64; 26] = [
    3, 4, 3, 2, 3, 2, 2, 1, 2, 1, 1, 1, 1, 1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 1,
];

/// Synthetic stand-in for the NTDS (Naval Tactical Data System)
/// series of Jelinski & Moranda (1972): 34 bugs over 26 periods with
/// the classic near-geometric decay of the earliest SRM dataset.
///
/// # Examples
///
/// ```
/// let d = srm_data::datasets::ntds_26();
/// assert_eq!(d.len(), 26);
/// assert_eq!(d.total(), 34);
/// assert_eq!(d.detected_by(10), 23);
/// ```
#[must_use]
pub fn ntds_26() -> BugCountData {
    BugCountData::new(NTDS_26.to_vec()).unwrap_or_else(|_| unreachable!())
}

/// Weekly counts of the Tandem stand-in (see [`tandem_20w`]).
const TANDEM_20W: [u64; 20] = [
    13, 11, 10, 9, 8, 7, 7, 6, 5, 5, 4, 3, 3, 2, 2, 1, 1, 1, 1, 1,
];

/// Synthetic stand-in for Wood's Tandem Computers release-1 series
/// (1996): 100 bugs over 20 testing weeks with smooth concave
/// (exponential-order) growth — the canonical NHPP benchmark shape.
///
/// # Examples
///
/// ```
/// let d = srm_data::datasets::tandem_20w();
/// assert_eq!(d.len(), 20);
/// assert_eq!(d.total(), 100);
/// assert_eq!(d.detected_by(5), 51);
/// ```
#[must_use]
pub fn tandem_20w() -> BugCountData {
    BugCountData::new(TANDEM_20W.to_vec()).unwrap_or_else(|_| unreachable!())
}

/// Weekly counts of the Ohba stand-in (see [`ohba_sshape_22w`]).
const OHBA_SSHAPE_22W: [u64; 22] = [
    2, 3, 4, 6, 8, 11, 14, 16, 17, 16, 14, 12, 10, 8, 6, 4, 3, 2, 1, 1, 1, 1,
];

/// Synthetic stand-in for Ohba's delayed-S-shaped PL/I database
/// application series (1984): 160 bugs over 22 weeks with the
/// inflected growth that motivated the delayed-S-shaped NHPP model.
///
/// # Examples
///
/// ```
/// let d = srm_data::datasets::ohba_sshape_22w();
/// assert_eq!(d.len(), 22);
/// assert_eq!(d.total(), 160);
/// assert_eq!(d.detected_by(10), 97);
/// ```
#[must_use]
pub fn ohba_sshape_22w() -> BugCountData {
    BugCountData::new(OHBA_SSHAPE_22W.to_vec()).unwrap_or_else(|_| unreachable!())
}

/// Daily counts of the Musa SS3 stand-in (see [`musa_ss3_28`]).
const MUSA_SS3_28: [u64; 28] = [
    1, 2, 3, 2, 4, 3, 5, 4, 6, 5, 6, 7, 6, 5, 6, 5, 4, 5, 4, 3, 4, 3, 2, 3, 2, 2, 2, 1,
];

/// Synthetic stand-in for Musa's SS3 subscriber-system series (1979):
/// 105 bugs over 28 periods with a slow ramp, broad plateau and
/// gentle decay — a weakly S-shaped profile between [`tandem_20w`]
/// and [`ohba_sshape_22w`].
///
/// # Examples
///
/// ```
/// let d = srm_data::datasets::musa_ss3_28();
/// assert_eq!(d.len(), 28);
/// assert_eq!(d.total(), 105);
/// assert_eq!(d.detected_by(14), 59);
/// ```
#[must_use]
pub fn musa_ss3_28() -> BugCountData {
    BugCountData::new(MUSA_SS3_28.to_vec()).unwrap_or_else(|_| unreachable!())
}

/// Every embedded dataset with a short identifying name, for the
/// multi-dataset extension experiment and `--dataset` resolution.
#[must_use]
pub fn all_named() -> Vec<(&'static str, BugCountData)> {
    vec![
        ("musa_cc96", musa_cc96()),
        ("decaying_growth_60", decaying_growth_60()),
        ("s_shaped_80", s_shaped_80()),
        ("short_campaign_25", short_campaign_25()),
        ("plateau_100", plateau_100()),
        ("late_surge_50", late_surge_50()),
        ("ntds_26", ntds_26()),
        ("tandem_20w", tandem_20w()),
        ("ohba_sshape_22w", ohba_sshape_22w()),
        ("musa_ss3_28", musa_ss3_28()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn musa_invariants_match_paper() {
        let d = musa_cc96();
        assert_eq!(d.len(), 96);
        assert_eq!(d.total(), 136);
        // The paper's Tables II–IV imply these cumulative milestones.
        assert_eq!(d.detected_by(48), 42);
        assert_eq!(d.detected_by(67), 84);
        assert_eq!(d.detected_by(86), 132);
        assert_eq!(d.detected_by(96), 136);
    }

    #[test]
    fn musa_has_quiet_tail() {
        let d = musa_cc96();
        // Only 4 bugs in the last 10 days: the growth has saturated.
        assert_eq!(d.total() - d.detected_by(86), 4);
    }

    #[test]
    fn all_datasets_are_nonempty_and_consistent() {
        for (name, d) in all_named() {
            assert!(d.len() >= 20, "{name} too short");
            // Floor 30: ntds_26's namesake genuinely has only 34
            // faults, and the stand-in keeps that scale.
            assert!(d.total() >= 30, "{name} too sparse: {}", d.total());
            assert_eq!(
                d.total(),
                d.counts().iter().sum::<u64>(),
                "{name} cumulative mismatch"
            );
        }
    }

    #[test]
    fn dataset_shapes_differ() {
        // First-half fraction distinguishes decaying / S / late-surge.
        let frac = |d: &crate::BugCountData| d.detected_by(d.len() / 2) as f64 / d.total() as f64;
        let decay = frac(&decaying_growth_60());
        let surge = frac(&late_surge_50());
        assert!(decay > 0.6, "decaying should front-load: {decay}");
        assert!(surge < 0.4, "late surge should back-load: {surge}");
    }

    #[test]
    fn names_are_unique() {
        let named = all_named();
        let mut names: Vec<_> = named.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), named.len());
    }
}
