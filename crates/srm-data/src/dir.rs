//! Directory loader for batch estimation: every `*.csv` file in a
//! directory becomes one labelled dataset.
//!
//! The contract is built for fleets, not single files:
//!
//! * **Deterministic order** — entries are sorted by file name
//!   (byte-wise), so the same directory always yields the same item
//!   order regardless of filesystem enumeration order.
//! * **Per-file errors are collected, not fatal** — one malformed
//!   CSV must not sink a 1 000-project batch; the caller decides how
//!   to report the stragglers.
//! * **Non-CSV files are skipped** silently (READMEs, lockfiles,
//!   editor droppings), as are subdirectories.

use crate::csv::{read_counts, CsvError};
use crate::dataset::BugCountData;
use std::path::Path;

/// One file that failed to load, with the error it raised.
#[derive(Debug)]
pub struct DirEntryError {
    /// The file name (not the full path) that failed.
    pub file: String,
    /// Why it failed.
    pub error: CsvError,
}

impl std::fmt::Display for DirEntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.error)
    }
}

/// The outcome of [`load_dir`]: the datasets that parsed, in sorted
/// file-name order, plus the per-file errors of those that did not.
#[derive(Debug, Default)]
pub struct DirLoad {
    /// `(label, data)` pairs in sorted file-name order. Labels are
    /// file stems, disambiguated with the full file name when two
    /// files share a stem (`a.csv` next to `a.CSV`).
    pub items: Vec<(String, BugCountData)>,
    /// Files that looked like CSV but failed to parse, in sorted
    /// file-name order.
    pub errors: Vec<DirEntryError>,
}

impl DirLoad {
    /// Whether at least one file failed to load.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }
}

/// Loads every `*.csv` file (extension matched case-insensitively)
/// directly under `path`.
///
/// An empty directory (or one with no CSV files) yields an empty
/// [`DirLoad`], not an error — emptiness is the caller's policy call.
///
/// # Errors
///
/// Returns [`std::io::Error`] only when the directory itself cannot
/// be read; individual file failures land in [`DirLoad::errors`].
pub fn load_dir(path: &Path) -> std::io::Result<DirLoad> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(path)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_csv = Path::new(&name)
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("csv"));
        if is_csv {
            names.push(name);
        }
    }
    names.sort();

    let mut load = DirLoad::default();
    let mut seen_stems: Vec<String> = Vec::new();
    for name in names {
        let stem = Path::new(&name)
            .file_stem()
            .map_or_else(|| name.clone(), |s| s.to_string_lossy().into_owned());
        // Duplicate stems (e.g. `a.csv` and `a.CSV`): keep both, but
        // the later file is labelled by its full name so labels stay
        // unique and the first-sorted file keeps the natural label.
        let label = if seen_stems.contains(&stem) {
            name.clone()
        } else {
            stem.clone()
        };
        seen_stems.push(stem);
        match std::fs::File::open(path.join(&name)) {
            Ok(file) => match read_counts(file) {
                Ok(data) => load.items.push((label, data)),
                Err(error) => load.errors.push(DirEntryError { file: name, error }),
            },
            Err(e) => load.errors.push(DirEntryError {
                file: name,
                error: CsvError::Io(e),
            }),
        }
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("srm_dir_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_dir_loads_to_nothing() {
        let dir = temp_dir("empty");
        let load = load_dir(&dir).unwrap();
        assert!(load.items.is_empty());
        assert!(!load.has_errors());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_an_io_error() {
        let dir = temp_dir("missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).is_err());
    }

    #[test]
    fn loads_in_sorted_order_and_skips_non_csv() {
        let dir = temp_dir("sorted");
        std::fs::write(dir.join("b.csv"), "1,2\n2,3\n").unwrap();
        std::fs::write(dir.join("a.csv"), "1,1\n").unwrap();
        std::fs::write(dir.join("README.md"), "not data").unwrap();
        std::fs::write(dir.join("notes.txt"), "1,1\n").unwrap();
        std::fs::create_dir_all(dir.join("sub.csv")).unwrap(); // a directory, not a file
        let load = load_dir(&dir).unwrap();
        let labels: Vec<&str> = load.items.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["a", "b"]);
        assert_eq!(load.items[1].1.counts(), &[2, 3]);
        assert!(!load.has_errors());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_bad_file_among_good_ones_is_collected_not_fatal() {
        let dir = temp_dir("badone");
        std::fs::write(dir.join("good1.csv"), "1,4\n2,0\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "1,4\n3,1\n").unwrap(); // day gap
        std::fs::write(dir.join("good2.csv"), "1,7\n").unwrap();
        let load = load_dir(&dir).unwrap();
        let labels: Vec<&str> = load.items.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["good1", "good2"]);
        assert_eq!(load.errors.len(), 1);
        assert_eq!(load.errors[0].file, "broken.csv");
        assert!(load.errors[0].to_string().contains("expected day 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_stems_get_disambiguated_labels() {
        let dir = temp_dir("dupstem");
        std::fs::write(dir.join("proj.csv"), "1,1\n").unwrap();
        let mixed_case = dir.join("proj.CSV");
        std::fs::write(&mixed_case, "1,2\n").unwrap();
        let load = load_dir(&dir).unwrap();
        if load.items.len() == 2 {
            // Case-sensitive filesystem: both survive with unique
            // labels — `proj.CSV` sorts first and keeps the stem.
            let labels: Vec<&str> = load.items.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(labels, vec!["proj", "proj.csv"]);
        } else {
            // Case-insensitive filesystem: the second write replaced
            // the first file; one item, natural label.
            assert_eq!(load.items.len(), 1);
            assert_eq!(load.items[0].0, "proj");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
