//! Synthetic workload generation.
//!
//! [`DetectionSimulator`] simulates the paper's data-generating
//! process *exactly*: a project starts with `N` bugs, and on testing
//! day `i` every remaining bug is independently detected with
//! probability `p_i`. Synthetic-recovery experiments fit the Bayesian
//! models to such data and check the posterior covers the true `N`.

use crate::dataset::BugCountData;
use srm_rand::{Binomial, Distribution, Pcg64, Rng};

/// Simulates the binomial-thinning bug-detection process.
///
/// # Examples
///
/// ```
/// use srm_data::DetectionSimulator;
///
/// // Constant 5 % detection probability for 30 days.
/// let sim = DetectionSimulator::new(200, (1..=30).map(|_| 0.05).collect());
/// let project = sim.run(12345);
/// assert_eq!(project.data.len(), 30);
/// assert!(project.data.total() <= 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionSimulator {
    initial_bugs: u64,
    detection_probs: Vec<f64>,
}

/// The outcome of one simulated project.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedProject {
    /// The grouped daily counts, ready for model fitting.
    pub data: BugCountData,
    /// The true initial bug content the simulator started from.
    pub true_initial_bugs: u64,
    /// Bugs still undetected after the last day.
    pub true_residual: u64,
}

impl DetectionSimulator {
    /// Creates a simulator with `initial_bugs` bugs and a per-day
    /// detection-probability schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or any probability is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(initial_bugs: u64, detection_probs: Vec<f64>) -> Self {
        assert!(!detection_probs.is_empty(), "schedule must be non-empty");
        for (i, &p) in detection_probs.iter().enumerate() {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "p[{i}] = {p} outside [0, 1]"
            );
        }
        Self {
            initial_bugs,
            detection_probs,
        }
    }

    /// Number of testing days in the schedule.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.detection_probs.len()
    }

    /// The initial bug content.
    #[must_use]
    pub fn initial_bugs(&self) -> u64 {
        self.initial_bugs
    }

    /// Runs one simulation with the given seed (PCG64 stream, kept
    /// disjoint from the MCMC xoshiro streams by construction).
    #[must_use]
    pub fn run(&self, seed: u64) -> SimulatedProject {
        let mut rng = Pcg64::seed_from(seed);
        self.run_with(&mut rng)
    }

    /// Runs one simulation drawing from the supplied RNG.
    pub fn run_with<R: Rng + ?Sized>(&self, rng: &mut R) -> SimulatedProject {
        let mut remaining = self.initial_bugs;
        let mut counts = Vec::with_capacity(self.detection_probs.len());
        for &p in &self.detection_probs {
            let found = if remaining == 0 || p == 0.0 {
                0
            } else {
                // p was validated in (0, 1] at construction.
                Binomial::new(remaining, p)
                    .unwrap_or_else(|_| unreachable!())
                    .sample(rng)
            };
            counts.push(found);
            remaining -= found;
        }
        SimulatedProject {
            data: BugCountData::new(counts).unwrap_or_else(|_| unreachable!()),
            true_initial_bugs: self.initial_bugs,
            true_residual: remaining,
        }
    }

    /// Runs `n` independent replications with consecutive seeds.
    #[must_use]
    pub fn replicate(&self, base_seed: u64, n: usize) -> Vec<SimulatedProject> {
        (0..n).map(|i| self.run(base_seed + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_schedule_panics() {
        let _ = DetectionSimulator::new(10, vec![]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let _ = DetectionSimulator::new(10, vec![0.5, 1.5]);
    }

    #[test]
    fn conservation_of_bugs() {
        let sim = DetectionSimulator::new(500, vec![0.1; 40]);
        let project = sim.run(1);
        assert_eq!(project.data.total() + project.true_residual, 500);
    }

    #[test]
    fn zero_bugs_yield_empty_counts() {
        let sim = DetectionSimulator::new(0, vec![0.5; 10]);
        let project = sim.run(2);
        assert_eq!(project.data.total(), 0);
        assert_eq!(project.true_residual, 0);
    }

    #[test]
    fn certain_detection_drains_first_day() {
        let sim = DetectionSimulator::new(77, vec![1.0, 0.5, 0.5]);
        let project = sim.run(3);
        assert_eq!(project.data.count_on(1), 77);
        assert_eq!(project.true_residual, 0);
    }

    #[test]
    fn zero_probability_finds_nothing() {
        let sim = DetectionSimulator::new(50, vec![0.0; 5]);
        let project = sim.run(4);
        assert_eq!(project.data.total(), 0);
        assert_eq!(project.true_residual, 50);
    }

    #[test]
    fn detection_fraction_matches_theory() {
        // After k days at constant p, E[detected] = N(1 − (1−p)^k).
        let n = 10_000u64;
        let p = 0.05;
        let k = 20;
        let sim = DetectionSimulator::new(n, vec![p; k]);
        let mut total = 0u64;
        for project in sim.replicate(100, 30) {
            total += project.data.total();
        }
        let avg = total as f64 / 30.0;
        let expected = n as f64 * (1.0 - (1.0 - p).powi(k as i32));
        assert!(
            (avg - expected).abs() < 0.02 * expected,
            "avg = {avg}, expected = {expected}"
        );
    }

    #[test]
    fn reproducible_given_seed() {
        let sim = DetectionSimulator::new(300, vec![0.07; 25]);
        assert_eq!(sim.run(42), sim.run(42));
        assert_ne!(sim.run(42), sim.run(43));
    }

    #[test]
    fn replicates_are_distinct_and_counted() {
        let sim = DetectionSimulator::new(100, vec![0.1; 10]);
        let reps = sim.replicate(7, 5);
        assert_eq!(reps.len(), 5);
        assert!(reps.windows(2).any(|w| w[0] != w[1]));
    }
}
