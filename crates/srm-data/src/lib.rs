//! Bug-count datasets, observation windows and workload generation for
//! the `srm-bayes` workspace.
//!
//! The paper's experiments run on *grouped* software bug-count data:
//! the number of bugs found on each testing day. This crate provides
//!
//! * [`BugCountData`] — the validated grouped-count container used by
//!   every model and sampler;
//! * [`datasets`] — embedded datasets, including the primary
//!   [`datasets::musa_cc96`] series (a documented synthetic stand-in
//!   for the Musa RADC 136-bug / 96-day data; see DESIGN.md);
//! * [`observation`] — observation points and the paper's
//!   virtual-testing protocol (zero-count extension after release);
//! * [`generator`] — a simulator of the exact binomial-thinning
//!   detection process, for synthetic-recovery experiments;
//! * [`csv`] — minimal CSV import/export, no external dependency.
//!
//! # Examples
//!
//! ```
//! use srm_data::datasets;
//!
//! let data = datasets::musa_cc96();
//! assert_eq!(data.len(), 96);
//! assert_eq!(data.total(), 136);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bootstrap;
pub mod csv;
pub mod dataset;
pub mod datasets;
pub mod dir;
pub mod generator;
pub mod observation;

pub use dataset::{BugCountData, DataError};
pub use dir::{load_dir, DirEntryError, DirLoad};
pub use generator::{DetectionSimulator, SimulatedProject};
pub use observation::{ObservationPlan, ObservationPoint};
