//! Observation points and the paper's virtual-testing protocol.
//!
//! The paper evaluates at 50 %, 70 %, 90 % and 100 % of the testing
//! horizon, then keeps observing *zero* counts ("virtual testing")
//! at +10, +20, +30, +40 and +50 days past the end. Each observation
//! point therefore maps the full dataset to the series the models are
//! actually fitted on.

use crate::dataset::{BugCountData, DataError};

/// One observation point of the evaluation protocol.
///
/// `day` is the nominal testing day of the point; for days beyond the
/// dataset the gap is filled with zero counts (virtual testing).
///
/// # Examples
///
/// ```
/// use srm_data::{datasets, ObservationPoint};
///
/// let data = datasets::musa_cc96();
/// let point = ObservationPoint::new(106);
/// let window = point.window(&data).unwrap();
/// assert_eq!(window.len(), 106);
/// assert_eq!(window.total(), 136); // zero-count days add no bugs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObservationPoint {
    day: usize,
}

impl ObservationPoint {
    /// Creates an observation point at the given (1-based) day.
    #[must_use]
    pub fn new(day: usize) -> Self {
        Self { day }
    }

    /// The observation day.
    #[must_use]
    pub fn day(&self) -> usize {
        self.day
    }

    /// Whether this point lies beyond `data` and therefore involves
    /// virtual (zero-count) testing days.
    #[must_use]
    pub fn is_virtual_for(&self, data: &BugCountData) -> bool {
        self.day > data.len()
    }

    /// The data window visible at this point: a truncation for points
    /// inside the data, the full data plus zero-count padding beyond.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DayOutOfRange`] for day 0.
    pub fn window(&self, data: &BugCountData) -> Result<BugCountData, DataError> {
        if self.day == 0 {
            return Err(DataError::DayOutOfRange {
                day: 0,
                len: data.len(),
            });
        }
        if self.day <= data.len() {
            data.truncated(self.day)
        } else {
            Ok(data.extended_with_zeros(self.day - data.len()))
        }
    }

    /// The true residual bug count at this point, assuming the
    /// dataset's grand total is the true initial content (the paper
    /// treats 136 as known for its legacy system).
    #[must_use]
    pub fn true_residual(&self, data: &BugCountData) -> u64 {
        let detected = data.detected_by(self.day.min(data.len()));
        data.total() - detected
    }
}

impl std::fmt::Display for ObservationPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}days", self.day)
    }
}

/// The full evaluation plan: which observation points to visit.
///
/// # Examples
///
/// ```
/// use srm_data::{datasets, ObservationPlan};
///
/// let plan = ObservationPlan::paper_default(&datasets::musa_cc96());
/// let days: Vec<usize> = plan.points().iter().map(|p| p.day()).collect();
/// assert_eq!(days, vec![48, 67, 86, 96, 106, 116, 126, 136, 146]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationPlan {
    points: Vec<ObservationPoint>,
}

impl ObservationPlan {
    /// Builds a plan from explicit days.
    #[must_use]
    pub fn from_days(days: &[usize]) -> Self {
        Self {
            points: days.iter().map(|&d| ObservationPoint::new(d)).collect(),
        }
    }

    /// The paper's protocol for a dataset of length `k`: 50 %, 70 %,
    /// 90 % and 100 % of `k`, then `k + 10·j` for `j = 1..=5`.
    #[must_use]
    pub fn paper_default(data: &BugCountData) -> Self {
        let k = data.len();
        let mut days = vec![
            (k as f64 * 0.5).round() as usize,
            (k as f64 * 0.7).round() as usize,
            (k as f64 * 0.9).round() as usize,
            k,
        ];
        // The paper rounds 70% of 96 to 67 and 90% to 86 (floor+1
        // boundary handling); reproduce its exact days for k = 96.
        if k == 96 {
            days = vec![48, 67, 86, 96];
        }
        for j in 1..=5 {
            days.push(k + 10 * j);
        }
        Self::from_days(&days)
    }

    /// The observation points, in order.
    #[must_use]
    pub fn points(&self) -> &[ObservationPoint] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Materialises every `(point, window)` pair against `data`.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from invalid points (day 0).
    pub fn windows(
        &self,
        data: &BugCountData,
    ) -> Result<Vec<(ObservationPoint, BugCountData)>, DataError> {
        self.points
            .iter()
            .map(|p| p.window(data).map(|w| (*p, w)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn paper_plan_matches_table_rows() {
        let plan = ObservationPlan::paper_default(&datasets::musa_cc96());
        let days: Vec<usize> = plan.points().iter().map(ObservationPoint::day).collect();
        assert_eq!(days, vec![48, 67, 86, 96, 106, 116, 126, 136, 146]);
        assert_eq!(plan.len(), 9);
        assert!(!plan.is_empty());
    }

    #[test]
    fn windows_inside_data_truncate() {
        let data = datasets::musa_cc96();
        let w = ObservationPoint::new(48).window(&data).unwrap();
        assert_eq!(w.len(), 48);
        assert_eq!(w.total(), 42);
        assert!(!ObservationPoint::new(48).is_virtual_for(&data));
    }

    #[test]
    fn windows_beyond_data_zero_pad() {
        let data = datasets::musa_cc96();
        let p = ObservationPoint::new(146);
        assert!(p.is_virtual_for(&data));
        let w = p.window(&data).unwrap();
        assert_eq!(w.len(), 146);
        assert_eq!(w.total(), 136);
        assert_eq!(w.count_on(146), 0);
    }

    #[test]
    fn window_at_exact_end_is_identity() {
        let data = datasets::musa_cc96();
        let w = ObservationPoint::new(96).window(&data).unwrap();
        assert_eq!(w, data);
    }

    #[test]
    fn day_zero_rejected() {
        let data = datasets::musa_cc96();
        assert!(ObservationPoint::new(0).window(&data).is_err());
    }

    #[test]
    fn true_residuals_match_paper_deltas() {
        // Tables II–IV imply residuals 94, 52, 4, 0, 0… at the paper
        // observation points.
        let data = datasets::musa_cc96();
        let expect = [
            (48usize, 94u64),
            (67, 52),
            (86, 4),
            (96, 0),
            (106, 0),
            (146, 0),
        ];
        for (day, res) in expect {
            assert_eq!(
                ObservationPoint::new(day).true_residual(&data),
                res,
                "day {day}"
            );
        }
    }

    #[test]
    fn display_matches_paper_row_labels() {
        assert_eq!(ObservationPoint::new(48).to_string(), "48days");
    }

    #[test]
    fn all_windows_materialise() {
        let data = datasets::musa_cc96();
        let plan = ObservationPlan::paper_default(&data);
        let windows = plan.windows(&data).unwrap();
        assert_eq!(windows.len(), 9);
        for (p, w) in &windows {
            assert_eq!(w.len(), p.day());
        }
    }

    #[test]
    fn generic_dataset_percentages() {
        let d = datasets::short_campaign_25();
        let plan = ObservationPlan::paper_default(&d);
        let days: Vec<usize> = plan.points().iter().map(ObservationPoint::day).collect();
        assert_eq!(days[..4], [13, 18, 23, 25]);
        assert_eq!(days[4..], [35, 45, 55, 65, 75]);
    }
}
