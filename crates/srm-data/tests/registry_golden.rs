//! Golden tests pinning every registry dataset: day count, total
//! bugs, cumulative pinch-points, and a CSV round-trip. Any silent
//! edit to an embedded series breaks one of these before it can skew
//! a committed experiment table.

use srm_data::{csv, datasets};

/// `(name, days, total, [(day, cumulative)…])` for every registry
/// entry. The pinch-points sample each series' growth shape at its
/// most characteristic days.
type Golden = (&'static str, usize, u64, &'static [(usize, u64)]);

const GOLDENS: &[Golden] = &[
    (
        "musa_cc96",
        96,
        136,
        &[(48, 42), (67, 84), (86, 132), (96, 136)],
    ),
    (
        "decaying_growth_60",
        60,
        78,
        &[(15, 49), (30, 69), (60, 78)],
    ),
    ("s_shaped_80", 80, 94, &[(20, 2), (40, 61), (60, 94)]),
    ("short_campaign_25", 25, 45, &[(5, 18), (13, 35), (25, 45)]),
    ("plateau_100", 100, 150, &[(25, 37), (50, 75), (75, 114)]),
    ("late_surge_50", 50, 52, &[(13, 0), (25, 5), (38, 22)]),
    ("ntds_26", 26, 34, &[(10, 23), (20, 30), (26, 34)]),
    ("tandem_20w", 20, 100, &[(5, 51), (10, 81), (20, 100)]),
    ("ohba_sshape_22w", 22, 160, &[(5, 23), (10, 97), (22, 160)]),
    ("musa_ss3_28", 28, 105, &[(5, 12), (14, 59), (25, 100)]),
];

#[test]
fn registry_matches_the_golden_table() {
    let named = datasets::all_named();
    assert_eq!(
        named.len(),
        GOLDENS.len(),
        "a dataset was added or removed without a golden entry"
    );
    for (name, days, total, pinches) in GOLDENS {
        let (_, data) = named
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("dataset {name} missing from registry"));
        assert_eq!(data.len(), *days, "{name} day count");
        assert_eq!(data.total(), *total, "{name} total bugs");
        for (day, cumulative) in *pinches {
            assert_eq!(
                data.detected_by(*day),
                *cumulative,
                "{name} cumulative at day {day}"
            );
        }
    }
}

#[test]
fn every_dataset_round_trips_through_csv() {
    for (name, data) in datasets::all_named() {
        let mut out = Vec::new();
        csv::write_counts(&data, &mut out).unwrap_or_else(|e| panic!("{name} write: {e}"));
        let back = csv::read_counts(out.as_slice()).unwrap_or_else(|e| panic!("{name} read: {e}"));
        assert_eq!(back, data, "{name} CSV round-trip");
    }
}

#[test]
fn cumulative_counts_are_monotone_and_bounded() {
    for (name, data) in datasets::all_named() {
        let mut prev = 0;
        for day in 1..=data.len() {
            let cum = data.detected_by(day);
            assert!(cum >= prev, "{name} not monotone at day {day}");
            prev = cum;
        }
        assert_eq!(prev, data.total(), "{name} final cumulative");
    }
}

#[test]
fn stand_in_shapes_are_distinct() {
    // First-half detected fraction orders the classic stand-ins:
    // concave (tandem) front-loads, the S-shape sits near one half,
    // and NTDS decays gently in between.
    let frac = |d: &srm_data::BugCountData| d.detected_by(d.len() / 2) as f64 / d.total() as f64;
    let tandem = frac(&datasets::tandem_20w());
    let ntds = frac(&datasets::ntds_26());
    let ohba = frac(&datasets::ohba_sshape_22w());
    let musa_ss3 = frac(&datasets::musa_ss3_28());
    assert!(tandem > 0.8, "tandem should front-load hardest: {tandem}");
    assert!(tandem > ntds && ntds > ohba, "{tandem} > {ntds} > {ohba}");
    assert!(
        ohba > musa_ss3,
        "the sharp S-shape should outpace the flat one: {ohba} vs {musa_ss3}"
    );
    assert!(
        (0.5..0.6).contains(&musa_ss3),
        "musa_ss3 should balance its halves: {musa_ss3}"
    );
}
