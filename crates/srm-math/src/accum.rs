//! Compensated summation and streaming moments.
//!
//! MCMC summaries average tens of thousands of draws; Neumaier
//! compensation keeps the accumulated error independent of chain
//! length, and Welford's algorithm gives single-pass, numerically
//! stable means and (co)variances for the convergence diagnostics.

/// Neumaier-compensated summation accumulator.
///
/// # Examples
///
/// ```
/// use srm_math::KahanSum;
/// let mut s = KahanSum::new();
/// for _ in 0..10 { s.add(0.1); }
/// assert!((s.sum() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Compensated sum of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(srm_math::accum::kahan_sum(&[1.0, 2.0, 3.0]), 6.0);
/// ```
#[must_use]
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().sum()
}

/// Streaming mean/variance via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use srm_math::RunningMoments;
/// let m: RunningMoments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (divides by `n − 1`); 0 when fewer
    /// than two observations were seen.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator (parallel Welford / Chan's method).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
    }
}

impl FromIterator<f64> for RunningMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for v in iter {
            acc.push(v);
        }
        acc
    }
}

impl Extend<f64> for RunningMoments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_sum() {
        // 1 followed by many tiny terms that naive f64 summation drops.
        let mut naive = 1.0_f64;
        let mut kahan = KahanSum::new();
        kahan.add(1.0);
        let tiny = 1e-16;
        for _ in 0..10_000 {
            naive += tiny;
            kahan.add(tiny);
        }
        let exact = 1.0 + 10_000.0 * tiny;
        assert!((kahan.sum() - exact).abs() < (naive - exact).abs());
        assert!(approx_eq(kahan.sum(), exact, 1e-15));
    }

    #[test]
    fn kahan_handles_cancellation() {
        let mut s = KahanSum::new();
        s.add(1e100);
        s.add(1.0);
        s.add(-1e100);
        assert_eq!(s.sum(), 1.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.173).collect();
        let m: RunningMoments = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!(approx_eq(m.mean(), mean, 1e-12));
        assert!(approx_eq(m.sample_variance(), var, 1e-12));
    }

    #[test]
    fn welford_empty_and_single() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.sample_variance(), 0.0);
        let m: RunningMoments = [5.0].into_iter().collect();
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..700).map(|i| (i as f64).cos() * 3.0).collect();
        let mut left: RunningMoments = a.iter().copied().collect();
        let right: RunningMoments = b.iter().copied().collect();
        left.merge(&right);
        let combined: RunningMoments = a.iter().chain(b.iter()).copied().collect();
        assert!(approx_eq(left.mean(), combined.mean(), 1e-12));
        assert!(approx_eq(
            left.sample_variance(),
            combined.sample_variance(),
            1e-10
        ));
        assert_eq!(left.count(), combined.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: RunningMoments = [1.0, 2.0].into_iter().collect();
        let before = m;
        m.merge(&RunningMoments::new());
        assert_eq!(m, before);
        let mut empty = RunningMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
