//! Error function, complementary error function, and the standard
//! normal CDF/quantile.
//!
//! The quantile (`norm_quantile`) is Acklam's rational approximation
//! refined by one Halley step, giving full double accuracy; it seeds
//! the incomplete-gamma inverse and the Geweke/Gelman diagnostics.

/// Error function `erf(x)`, accurate to ~1e-15 (Abramowitz–Stegun 7.1.26
/// refined via the incomplete-gamma connection for |x| ≥ 0.5).
///
/// # Examples
///
/// ```
/// assert!((srm_math::erf(0.0)).abs() < 1e-15);
/// assert!((srm_math::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    // erf(x) = P(1/2, x²) for x ≥ 0.
    crate::incgamma::inc_gamma_p(0.5, x * x)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in the
/// far tail (uses `Q(1/2, x²)` directly for positive `x`).
///
/// # Examples
///
/// ```
/// let x: f64 = 6.0;
/// let t = srm_math::erfc(x);
/// assert!(t > 0.0 && t < 1e-15);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x == 0.0 {
        return 1.0;
    }
    crate::incgamma::inc_gamma_q(0.5, x * x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// assert!((srm_math::norm_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((srm_math::norm_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
#[must_use]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ^{-1}(p)` (Acklam's algorithm + one
/// Halley refinement step).
///
/// # Panics
///
/// Panics if `p ∉ (0, 1)`; the endpoints map to ±∞ which callers must
/// request explicitly if they want them.
///
/// # Examples
///
/// ```
/// let z = srm_math::norm_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// ```
#[must_use]
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile requires p in (0, 1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the true CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn erf_known_values() {
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for &(x, v) in &cases {
            assert!(approx_eq(erf(x), v, 1e-11), "x = {x}");
            assert!(approx_eq(erf(-x), -v, 1e-11), "x = -{x}");
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for &x in &[-4.0, -1.0, -0.1, 0.0, 0.3, 2.0, 7.0] {
            assert!(approx_eq(erf(x) + erfc(x), 1.0, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn erfc_far_tail_positive() {
        let v = erfc(10.0);
        assert!(v > 0.0 && v < 1e-40);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5, 5.0] {
            assert!(approx_eq(norm_cdf(x) + norm_cdf(-x), 1.0, 1e-12));
        }
    }

    #[test]
    fn quantile_round_trips() {
        for &p in &[1e-10, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-7] {
            let z = norm_quantile(p);
            assert!(approx_eq(norm_cdf(z), p, 1e-10), "p = {p}, z = {z}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(approx_eq(norm_quantile(0.5), 0.0, 1e-12));
        assert!(approx_eq(norm_quantile(0.975), 1.959_963_984_540_054, 1e-9));
        assert!(approx_eq(norm_quantile(0.841_344_746_068_543), 1.0, 1e-8));
    }

    #[test]
    #[should_panic(expected = "requires p in (0, 1)")]
    fn quantile_rejects_endpoints() {
        let _ = norm_quantile(1.0);
    }
}
