//! Regularised incomplete beta function and its inverse.
//!
//! `I_x(a, b)` is the Beta CDF and, through the identity
//! `Binom-CDF(k; n, p) = I_{1−p}(n − k, k + 1)`, the binomial CDF.
//! The inverse is used for Beta quantile sampling and for exact
//! credible intervals of detection probabilities.

use crate::special::ln_gamma;

const MAX_ITER: usize = 500;
const TINY: f64 = 1e-300;
const REL_EPS: f64 = 1e-14;

fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta `I_x(a, b)` for `a, b > 0`, `x ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_math::incbeta::inc_beta_reg;
/// // I_x(1, 1) = x (uniform CDF)
/// assert!((inc_beta_reg(1.0, 1.0, 0.37) - 0.37).abs() < 1e-13);
/// ```
#[must_use]
pub fn inc_beta_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inc_beta_reg requires a, b > 0 (a = {a}, b = {b})"
    );
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_pre = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // The continued fraction converges quickly when x < (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_pre.exp() * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_pre.exp() * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Modified-Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < REL_EPS {
            break;
        }
    }
    h
}

/// Inverse of the regularised incomplete beta in `x`: the `x ∈ [0, 1]`
/// with `I_x(a, b) = p`. Bisection refined by Newton steps.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_math::incbeta::{inc_beta_reg, inv_inc_beta_reg};
/// let x = inv_inc_beta_reg(2.0, 5.0, 0.77);
/// assert!((inc_beta_reg(2.0, 5.0, x) - 0.77).abs() < 1e-10);
/// ```
#[must_use]
pub fn inv_inc_beta_reg(a: f64, b: f64, p: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inv_inc_beta_reg requires a, b > 0 (a = {a}, b = {b})"
    );
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = a / (a + b); // mean as a starting point
    let ln_b = ln_beta(a, b);
    for _ in 0..200 {
        let fx = inc_beta_reg(a, b, x) - p;
        if fx > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_b;
        let mut next = x - fx / ln_pdf.exp();
        if next <= lo || next >= hi || !next.is_finite() {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-15 {
            return next;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn uniform_case_is_identity() {
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!(approx_eq(inc_beta_reg(1.0, 1.0, x), x, 1e-13));
        }
    }

    #[test]
    fn symmetry_identity() {
        for &(a, b) in &[(2.0, 3.0), (0.5, 0.5), (7.0, 1.5), (20.0, 40.0)] {
            for &x in &[0.05, 0.3, 0.5, 0.8, 0.99] {
                let lhs = inc_beta_reg(a, b, x);
                let rhs = 1.0 - inc_beta_reg(b, a, 1.0 - x);
                assert!(approx_eq(lhs, rhs, 1e-11), "a={a} b={b} x={x}");
            }
        }
    }

    #[test]
    fn matches_binomial_cdf() {
        // Binom-CDF(k; n, p) = I_{1−p}(n − k, k + 1).
        let n = 12u64;
        let p: f64 = 0.3;
        for k in 0..n {
            let mut cdf = 0.0;
            for j in 0..=k {
                cdf += crate::special::ln_binomial(n, j).exp()
                    * p.powi(j as i32)
                    * (1.0 - p).powi((n - j) as i32);
            }
            let via_beta = inc_beta_reg((n - k) as f64, k as f64 + 1.0, 1.0 - p);
            assert!(approx_eq(cdf, via_beta, 1e-11), "k = {k}");
        }
    }

    #[test]
    fn arcsine_closed_form() {
        // I_x(1/2, 1/2) = (2/π) arcsin √x.
        for &x in &[0.1f64, 0.25, 0.5, 0.9] {
            let expected = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert!(approx_eq(inc_beta_reg(0.5, 0.5, x), expected, 1e-11));
        }
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = inc_beta_reg(3.3, 1.7, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &(a, b) in &[(1.0, 1.0), (0.5, 2.0), (5.0, 3.0), (40.0, 60.0)] {
            for &p in &[1e-6, 0.1, 0.5, 0.9, 1.0 - 1e-6] {
                let x = inv_inc_beta_reg(a, b, p);
                assert!(
                    approx_eq(inc_beta_reg(a, b, x), p, 1e-9),
                    "a={a} b={b} p={p} x={x}"
                );
            }
        }
    }

    #[test]
    fn inverse_edges() {
        assert_eq!(inv_inc_beta_reg(2.0, 2.0, 0.0), 0.0);
        assert_eq!(inv_inc_beta_reg(2.0, 2.0, 1.0), 1.0);
    }
}
