//! Regularised incomplete gamma functions and their inverse.
//!
//! `P(a, x) = γ(a, x)/Γ(a)` is the Poisson/Gamma CDF kernel; the Gibbs
//! sampler draws the Poisson-prior rate `λ0` from a Gamma distribution
//! truncated to `(0, λ_max)`, which needs the inverse of `P` in `x`.
//!
//! Implementation follows the classic series/continued-fraction split
//! (Numerical Recipes §6.2): the power series converges fast for
//! `x < a + 1`, the Lentz continued fraction elsewhere.

use crate::special::ln_gamma;

const MAX_ITER: usize = 500;
const TINY: f64 = 1e-300;
const REL_EPS: f64 = 1e-14;

/// Regularised lower incomplete gamma `P(a, x)` for `a > 0`, `x >= 0`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use srm_math::incgamma::inc_gamma_p;
/// // P(1, x) = 1 − e^{−x}
/// assert!((inc_gamma_p(1.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
#[must_use]
pub fn inc_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "inc_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly from the continued fraction when `x >= a + 1`, so
/// it stays accurate deep in the upper tail where `1 − P` would lose
/// all precision.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use srm_math::incgamma::inc_gamma_q;
/// // Q(1, x) = e^{−x}
/// assert!((inc_gamma_q(1.0, 30.0) - (-30.0f64).exp()).abs() < 1e-25);
/// ```
#[must_use]
pub fn inc_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "inc_gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * REL_EPS {
            break;
        }
    }
    (ln_pre + sum.ln()).exp().clamp(0.0, 1.0)
}

/// Modified-Lentz continued fraction for `Q(a, x)`, convergent for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < REL_EPS {
            break;
        }
    }
    (ln_pre + h.ln()).exp().clamp(0.0, 1.0)
}

/// Inverse of the regularised lower incomplete gamma in `x`:
/// returns the `x >= 0` with `P(a, x) = p`.
///
/// Uses a Wilson–Hilferty starting guess refined by safeguarded
/// Newton steps (falling back to bisection when Newton leaves the
/// bracket). Accuracy ~1e-12 in `p`.
///
/// # Panics
///
/// Panics if `a <= 0` or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_math::incgamma::{inc_gamma_p, inv_inc_gamma_p};
/// let x = inv_inc_gamma_p(3.5, 0.42);
/// assert!((inc_gamma_p(3.5, x) - 0.42).abs() < 1e-10);
/// ```
#[must_use]
pub fn inv_inc_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_inc_gamma_p requires a > 0, got {a}");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Wilson–Hilferty: Gamma(a) ≈ a (1 − 1/(9a) + z/(3√a))³ with z the
    // standard normal quantile.
    let z = crate::erf::norm_quantile(p);
    let wh = {
        let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
        a * t * t * t
    };
    let mut x = if wh.is_finite() && wh > 0.0 { wh } else { a };

    // Establish a bracket [lo, hi] with P(lo) <= p <= P(hi).
    let mut lo = 0.0_f64;
    let mut hi = x.max(1.0);
    while inc_gamma_p(a, hi) < p {
        lo = hi;
        hi *= 2.0;
        if hi > 1e308 {
            return hi;
        }
    }
    if x <= lo || x >= hi {
        x = 0.5 * (lo + hi);
    }

    for _ in 0..200 {
        let fx = inc_gamma_p(a, x) - p;
        if fx > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step with the gamma density as derivative.
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma(a);
        let step = fx / ln_pdf.exp();
        let mut next = x - step;
        if next <= lo || next >= hi || !next.is_finite() {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-14 * x.abs().max(1e-14) {
            return next;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 50.0, 200.0] {
                let s = inc_gamma_p(a, x) + inc_gamma_q(a, x);
                assert!(approx_eq(s, 1.0, 1e-12), "a = {a}, x = {x}: {s}");
            }
        }
    }

    #[test]
    fn integer_shape_matches_poisson_tail() {
        // Q(k, x) = Σ_{j<k} e^{−x} x^j / j! (Poisson CDF identity).
        for &k in &[1u32, 2, 5, 10] {
            for &x in &[0.5, 2.0, 7.5, 20.0] {
                let mut cdf = 0.0;
                let mut term = (-x_f(x)).exp();
                for j in 0..k {
                    if j > 0 {
                        term *= x / f64::from(j);
                    }
                    cdf += term;
                }
                assert!(
                    approx_eq(inc_gamma_q(f64::from(k), x), cdf, 1e-11),
                    "k = {k}, x = {x}"
                );
            }
        }
    }

    fn x_f(x: f64) -> f64 {
        x
    }

    #[test]
    fn exponential_special_case() {
        for &x in &[0.1, 1.0, 5.0, 40.0] {
            assert!(approx_eq(inc_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13));
        }
    }

    #[test]
    fn monotone_in_x() {
        let a = 4.2;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = inc_gamma_p(a, x);
            assert!(p >= prev, "x = {x}");
            prev = p;
        }
    }

    #[test]
    fn upper_tail_accuracy() {
        // Q(1, 100) = e^{−100}: a direct 1 − P would round to 0.
        let q = inc_gamma_q(1.0, 100.0);
        assert!(approx_eq(q, (-100.0f64).exp(), 1e-8));
        assert!(q > 0.0);
    }

    #[test]
    fn inverse_round_trips() {
        for &a in &[0.5, 1.0, 3.0, 17.0, 250.0] {
            for &p in &[1e-8, 0.01, 0.3, 0.5, 0.9, 0.999, 1.0 - 1e-9] {
                let x = inv_inc_gamma_p(a, p);
                assert!(
                    approx_eq(inc_gamma_p(a, x), p, 1e-9),
                    "a = {a}, p = {p}, x = {x}"
                );
            }
        }
    }

    #[test]
    fn inverse_edges() {
        assert_eq!(inv_inc_gamma_p(2.0, 0.0), 0.0);
        assert!(inv_inc_gamma_p(2.0, 1.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn rejects_bad_shape() {
        let _ = inc_gamma_p(0.0, 1.0);
    }
}
