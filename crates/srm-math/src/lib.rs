//! Numerical substrate for the `srm-bayes` workspace.
//!
//! This crate provides the special functions, stable accumulation
//! primitives, root finders and optimisers that the statistical crates
//! build on. Everything is implemented from scratch so that the whole
//! reproduction is self-contained and bit-reproducible:
//!
//! * [`special`] — `ln Γ`, factorials, binomial coefficients, digamma.
//! * [`incgamma`] — regularised incomplete gamma `P(a, x)` / `Q(a, x)`
//!   and its inverse (used for truncated-gamma sampling).
//! * [`incbeta`] — regularised incomplete beta `I_x(a, b)` and inverse
//!   (binomial/beta CDFs and quantiles).
//! * [`erf`](mod@crate::erf) — error function, normal CDF and quantile.
//! * [`logsumexp`] — stable `log Σ exp` reductions used by WAIC.
//! * [`accum`] — Kahan/Neumaier summation and Welford moments.
//! * [`roots`] — bisection and Brent root finding, Brent minimisation.
//! * [`optim`] — Nelder–Mead simplex optimiser (MLE baseline).
//! * [`quadrature`] — adaptive Simpson integration (model validation).
//! * [`stats`] — Kolmogorov–Smirnov and chi-square goodness-of-fit tests.
//!
//! # Examples
//!
//! ```
//! use srm_math::special::ln_gamma;
//! // Γ(5) = 24
//! assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod erf;
pub mod incbeta;
pub mod incgamma;
pub mod logsumexp;
pub mod optim;
pub mod quadrature;
pub mod roots;
pub mod special;
pub mod stats;

pub use accum::{KahanSum, RunningMoments};
pub use erf::{erf, erfc, norm_cdf, norm_quantile};
pub use incbeta::{inc_beta_reg, inv_inc_beta_reg};
pub use incgamma::{inc_gamma_p, inc_gamma_q, inv_inc_gamma_p};
pub use logsumexp::{log_mean_exp, log_sum_exp};
pub use special::{ln_binomial, ln_factorial, ln_gamma};

/// Machine-level tolerance used as a default by iterative routines.
pub const EPS: f64 = 1e-12;

/// Returns `true` when two floats agree within an absolute *and*
/// relative tolerance; convenient in tests of iterative routines.
///
/// # Examples
///
/// ```
/// assert!(srm_math::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!srm_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
