//! Numerically stable `log Σ exp` reductions.
//!
//! WAIC (Eq. (23)–(25) of the paper) needs `ln( mean_ω p(x_i | ω) )`
//! over thousands of MCMC draws whose log densities range over
//! hundreds of nats; naive exponentiation would under/overflow.

/// Stable `ln Σ_i exp(v_i)`.
///
/// Empty input returns `-inf` (the log of an empty sum). Inputs of
/// `-inf` are ignored (they contribute `exp(-inf) = 0`).
///
/// # Examples
///
/// ```
/// use srm_math::log_sum_exp;
/// let v = [1000.0, 1000.0];
/// assert!((log_sum_exp(&v) - (1000.0 + 2.0_f64.ln())).abs() < 1e-12);
/// assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if max.is_infinite() {
        return max;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Stable `ln( (1/n) Σ_i exp(v_i) )` — the log of the predictive mean
/// used by the WAIC learning-loss term.
///
/// # Panics
///
/// Panics on empty input: the mean of zero draws is undefined.
///
/// # Examples
///
/// ```
/// use srm_math::log_mean_exp;
/// let v = [0.0, 0.0, 0.0];
/// assert!(log_mean_exp(&v).abs() < 1e-12);
/// ```
#[must_use]
pub fn log_mean_exp(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "log_mean_exp of an empty slice");
    log_sum_exp(values) - (values.len() as f64).ln()
}

/// Stable `ln(1 + exp(x))` (softplus), used when mixing log
/// probabilities pairwise.
///
/// # Examples
///
/// ```
/// use srm_math::logsumexp::log1p_exp;
/// assert!((log1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
/// assert!((log1p_exp(-745.0)).abs() < 1e-300); // no underflow blow-up
/// assert!((log1p_exp(1000.0) - 1000.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn log1p_exp(x: f64) -> f64 {
    if x > 35.0 {
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Stable `ln(exp(a) + exp(b))` for two values.
///
/// # Examples
///
/// ```
/// use srm_math::logsumexp::log_add_exp;
/// let v = log_add_exp(-1000.0, -1000.0);
/// assert!((v - (-1000.0 + 2.0_f64.ln())).abs() < 1e-12);
/// ```
#[must_use]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + log1p_exp(lo - hi)
}

/// Normalises a slice of log weights in place so `Σ exp(w_i) = 1`;
/// returns the log normalising constant that was subtracted.
///
/// # Examples
///
/// ```
/// use srm_math::logsumexp::normalize_log_weights;
/// let mut w = [0.0, (2.0_f64).ln()];
/// let z = normalize_log_weights(&mut w);
/// let total: f64 = w.iter().map(|v| v.exp()).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// assert!((z - 3.0_f64.ln()).abs() < 1e-12);
/// ```
pub fn normalize_log_weights(weights: &mut [f64]) -> f64 {
    let z = log_sum_exp(weights);
    if z.is_finite() {
        for w in weights.iter_mut() {
            *w -= z;
        }
    }
    z
}

/// Streaming `log Σ exp` accumulator: feeds one log-value at a time
/// in O(1) memory, rescaling on a new maximum. WAIC uses one per
/// observation across tens of thousands of MCMC draws.
///
/// # Examples
///
/// ```
/// use srm_math::logsumexp::{log_sum_exp, StreamingLogSumExp};
/// let values = [-1000.0, -1001.0, -999.5];
/// let mut acc = StreamingLogSumExp::new();
/// for &v in &values { acc.add(v); }
/// assert!((acc.log_sum() - log_sum_exp(&values)).abs() < 1e-12);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingLogSumExp {
    max: f64,
    scaled_sum: f64,
    count: u64,
}

impl Default for StreamingLogSumExp {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingLogSumExp {
    /// Creates an empty accumulator (`log_sum` = −∞).
    #[must_use]
    pub fn new() -> Self {
        Self {
            max: f64::NEG_INFINITY,
            scaled_sum: 0.0,
            count: 0,
        }
    }

    /// Feeds one log-value. `-inf` contributes zero mass but is
    /// counted toward [`StreamingLogSumExp::count`].
    pub fn add(&mut self, ln_value: f64) {
        self.count += 1;
        if ln_value == f64::NEG_INFINITY {
            return;
        }
        if ln_value <= self.max {
            self.scaled_sum += (ln_value - self.max).exp();
        } else {
            self.scaled_sum = if self.max == f64::NEG_INFINITY {
                1.0
            } else {
                self.scaled_sum * (self.max - ln_value).exp() + 1.0
            };
            self.max = ln_value;
        }
    }

    /// Number of values fed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `ln Σ exp(v_i)` over everything fed so far.
    #[must_use]
    pub fn log_sum(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.max + self.scaled_sum.ln()
        }
    }

    /// `ln( (1/n) Σ exp(v_i) )`.
    ///
    /// # Panics
    ///
    /// Panics when nothing was fed.
    #[must_use]
    pub fn log_mean(&self) -> f64 {
        assert!(self.count > 0, "log_mean of an empty accumulator");
        self.log_sum() - (self.count as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn streaming_matches_batch() {
        let values = [0.5, -3.0, 2.0, -700.0, 1.0, f64::NEG_INFINITY];
        let mut acc = StreamingLogSumExp::new();
        for &v in &values {
            acc.add(v);
        }
        assert!(approx_eq(acc.log_sum(), log_sum_exp(&values), 1e-12));
        assert_eq!(acc.count(), 6);
        assert!(approx_eq(
            acc.log_mean(),
            log_sum_exp(&values) - 6.0f64.ln(),
            1e-12
        ));
    }

    #[test]
    fn streaming_empty_and_all_neg_inf() {
        let acc = StreamingLogSumExp::new();
        assert_eq!(acc.log_sum(), f64::NEG_INFINITY);
        let mut acc = StreamingLogSumExp::new();
        acc.add(f64::NEG_INFINITY);
        assert_eq!(acc.log_sum(), f64::NEG_INFINITY);
        assert_eq!(acc.log_mean(), f64::NEG_INFINITY);
    }

    #[test]
    fn streaming_descending_and_ascending_orders_agree() {
        let mut up = StreamingLogSumExp::new();
        let mut down = StreamingLogSumExp::new();
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.37 - 20.0).collect();
        for &v in &vals {
            up.add(v);
        }
        for &v in vals.iter().rev() {
            down.add(v);
        }
        assert!(approx_eq(up.log_sum(), down.log_sum(), 1e-10));
    }

    #[test]
    fn matches_naive_in_safe_range() {
        let v = [0.1f64, -2.0, 1.3, 0.0];
        let naive: f64 = v.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&v), naive, 1e-13));
    }

    #[test]
    fn handles_extreme_magnitudes() {
        let v = [-1e9, 0.0];
        assert!(approx_eq(log_sum_exp(&v), 0.0, 1e-12));
        let v = [1e9, 1e9 - 700.0];
        assert!(approx_eq(log_sum_exp(&v), 1e9, 1e-3));
    }

    #[test]
    fn neg_inf_elements_are_ignored() {
        let v = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        assert!(approx_eq(log_sum_exp(&v), 0.0, 1e-13));
    }

    #[test]
    fn all_neg_inf_is_neg_inf() {
        let v = [f64::NEG_INFINITY; 3];
        assert_eq!(log_sum_exp(&v), f64::NEG_INFINITY);
    }

    #[test]
    fn mean_shifts_by_log_n() {
        let v = [3.0; 10];
        assert!(approx_eq(log_mean_exp(&v), 3.0, 1e-13));
    }

    #[test]
    fn log_add_exp_commutative_and_consistent() {
        for &(a, b) in &[(0.0, 1.0), (-700.0, -702.0), (100.0, -100.0)] {
            assert!(approx_eq(log_add_exp(a, b), log_add_exp(b, a), 1e-13));
            assert!(approx_eq(log_add_exp(a, b), log_sum_exp(&[a, b]), 1e-13));
        }
    }

    #[test]
    fn softplus_limits() {
        assert!(approx_eq(log1p_exp(50.0), 50.0, 1e-12));
        assert!(log1p_exp(-800.0) >= 0.0);
    }

    #[test]
    fn normalize_produces_distribution() {
        let mut w = [1.0f64, 2.0, 3.0, -500.0];
        normalize_log_weights(&mut w);
        let total: f64 = w.iter().map(|v| v.exp()).sum();
        assert!(approx_eq(total, 1.0, 1e-12));
    }
}
