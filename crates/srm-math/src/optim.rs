//! Derivative-free multivariate minimisation (Nelder–Mead).
//!
//! The MLE baseline fits the discrete NHPP models by maximising the
//! grouped-data log-likelihood over 2–3 parameters; Nelder–Mead with
//! adaptive coefficients and box constraints (via reflection at the
//! bounds) is plenty for these small, smooth problems.

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex' objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Initial simplex edge length relative to each coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            max_evals: 20_000,
            f_tol: 1e-10,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Whether a tolerance criterion (rather than the budget) stopped
    /// the search.
    pub converged: bool,
}

/// Minimises `f` starting from `x0` with the Nelder–Mead simplex
/// method (adaptive parameters of Gao & Han for dimension `n`).
///
/// The optional `bounds` give `(lo, hi)` per coordinate; trial points
/// are clamped into the box, which is adequate for the well-interior
/// optima of the SRM likelihoods.
///
/// # Panics
///
/// Panics if `x0` is empty or `bounds` (when given) has a different
/// length than `x0`.
///
/// # Examples
///
/// ```
/// use srm_math::optim::{nelder_mead, NelderMeadConfig};
/// let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
/// let r = nelder_mead(rosen, &[-1.2, 1.0], None, &NelderMeadConfig::default());
/// assert!(r.fx < 1e-8);
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    bounds: Option<&[(f64, f64)]>,
    config: &NelderMeadConfig,
) -> OptimResult {
    let n = x0.len();
    assert!(n > 0, "nelder_mead requires at least one dimension");
    if let Some(b) = bounds {
        assert_eq!(b.len(), n, "bounds length must match x0 length");
    }

    let clamp = |x: &mut [f64]| {
        if let Some(b) = bounds {
            for (xi, &(lo, hi)) in x.iter_mut().zip(b) {
                *xi = xi.clamp(lo, hi);
            }
        }
    };

    // Adaptive coefficients (Gao & Han 2012).
    let nf = n as f64;
    let alpha = 1.0;
    let beta = 1.0 + 2.0 / nf;
    let gamma = 0.75 - 1.0 / (2.0 * nf);
    let delta = 1.0 - 1.0 / nf;

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    let mut start = x0.to_vec();
    clamp(&mut start);
    simplex.push(start.clone());
    for i in 0..n {
        let mut v = start.clone();
        let step = if v[i].abs() > 1e-12 {
            config.initial_step * v[i].abs()
        } else {
            config.initial_step
        };
        v[i] += step;
        clamp(&mut v);
        if v == simplex[0] {
            v[i] -= 2.0 * step;
            clamp(&mut v);
        }
        simplex.push(v);
    }

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    let mut fvals: Vec<f64> = simplex.iter().map(|x| eval(x, &mut evals)).collect();

    let mut converged = false;
    while evals < config.max_evals {
        // Order the simplex.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| fvals[i].total_cmp(&fvals[j]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        let spread = fvals[worst] - fvals[best];
        let diameter = simplex
            .iter()
            .map(|x| {
                x.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if spread.abs() <= config.f_tol && diameter <= config.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (i, x) in simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, &xi) in centroid.iter_mut().zip(x) {
                *c += xi / nf;
            }
        }

        let point_along = |t: f64| -> Vec<f64> {
            let mut p: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(&c, &w)| c + t * (c - w))
                .collect();
            clamp(&mut p);
            p
        };

        let reflected = point_along(alpha);
        let f_reflected = eval(&reflected, &mut evals);

        if f_reflected < fvals[best] {
            // Try expanding.
            let expanded = point_along(beta);
            let f_expanded = eval(&expanded, &mut evals);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                fvals[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                fvals[worst] = f_reflected;
            }
        } else if f_reflected < fvals[second_worst] {
            simplex[worst] = reflected;
            fvals[worst] = f_reflected;
        } else {
            // Contract (outside if the reflection helped at all).
            let (contracted, f_contracted) = if f_reflected < fvals[worst] {
                let c = point_along(alpha * gamma);
                let fc = eval(&c, &mut evals);
                (c, fc)
            } else {
                let c = point_along(-gamma);
                let fc = eval(&c, &mut evals);
                (c, fc)
            };
            if f_contracted < fvals[worst].min(f_reflected) {
                simplex[worst] = contracted;
                fvals[worst] = f_contracted;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for (i, x) in simplex.iter_mut().enumerate() {
                    if i == best {
                        continue;
                    }
                    for (xi, &bi) in x.iter_mut().zip(&best_point) {
                        *xi = bi + delta * (*xi - bi);
                    }
                    clamp(x);
                    fvals[i] = eval(x, &mut evals);
                }
            }
        }
    }

    // The simplex always holds n+1 ≥ 1 vertices, so a best index
    // exists; index 0 is an unreachable fallback, not a default.
    let best_idx = fvals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    OptimResult {
        x: simplex[best_idx].clone(),
        fx: fvals[best_idx],
        evals,
        converged,
    }
}

/// Central-difference numerical Hessian of `f` at `x`.
///
/// Step sizes are `rel_step · max(|x_i|, 1)` per coordinate; the
/// matrix is symmetrised. Intended for the small (≤ 4-dimensional)
/// likelihood Hessians behind MLE standard errors.
///
/// # Panics
///
/// Panics if `x` is empty or `rel_step <= 0`.
///
/// # Examples
///
/// ```
/// use srm_math::optim::numerical_hessian;
/// // f(x, y) = x² + 3xy + 5y² has Hessian [[2, 3], [3, 10]].
/// let f = |v: &[f64]| v[0] * v[0] + 3.0 * v[0] * v[1] + 5.0 * v[1] * v[1];
/// let h = numerical_hessian(f, &[0.3, -0.2], 1e-4);
/// assert!((h[0][0] - 2.0).abs() < 1e-5);
/// assert!((h[0][1] - 3.0).abs() < 1e-5);
/// assert!((h[1][1] - 10.0).abs() < 1e-4);
/// ```
pub fn numerical_hessian<F: Fn(&[f64]) -> f64>(f: F, x: &[f64], rel_step: f64) -> Vec<Vec<f64>> {
    assert!(!x.is_empty(), "hessian of a zero-dimensional function");
    assert!(rel_step > 0.0, "step must be positive");
    let n = x.len();
    let step: Vec<f64> = x.iter().map(|&v| rel_step * v.abs().max(1.0)).collect();
    let mut point = x.to_vec();
    let mut eval = |deltas: &[(usize, f64)]| -> f64 {
        for &(i, d) in deltas {
            point[i] += d;
        }
        let v = f(&point);
        for &(i, d) in deltas {
            point[i] -= d;
        }
        v
    };

    let f0 = eval(&[]);
    let mut h = vec![vec![0.0; n]; n];
    for i in 0..n {
        let hi = step[i];
        // Diagonal: (f(x+h) − 2f(x) + f(x−h)) / h².
        let fp = eval(&[(i, hi)]);
        let fm = eval(&[(i, -hi)]);
        h[i][i] = (fp - 2.0 * f0 + fm) / (hi * hi);
        for j in (i + 1)..n {
            let hj = step[j];
            let fpp = eval(&[(i, hi), (j, hj)]);
            let fpm = eval(&[(i, hi), (j, -hj)]);
            let fmp = eval(&[(i, -hi), (j, hj)]);
            let fmm = eval(&[(i, -hi), (j, -hj)]);
            let v = (fpp - fpm - fmp + fmm) / (4.0 * hi * hj);
            h[i][j] = v;
            h[j][i] = v;
        }
    }
    h
}

/// Inverts a small symmetric positive-definite matrix by
/// Gauss–Jordan elimination with partial pivoting; returns `None` if
/// the matrix is (numerically) singular.
///
/// # Panics
///
/// Panics on a non-square input.
///
/// # Examples
///
/// ```
/// use srm_math::optim::invert_matrix;
/// let inv = invert_matrix(&[vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
/// assert!((inv[0][0] - 0.5).abs() < 1e-12);
/// assert!((inv[1][1] - 0.25).abs() < 1e-12);
/// ```
#[must_use]
pub fn invert_matrix(matrix: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    // Augmented [A | I].
    let mut a: Vec<Vec<f64>> = matrix
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot_row][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot_row);
        let pivot = a[col][col];
        for v in &mut a[col] {
            *v /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row.max(col));
            let (src, dst) = if row < col {
                (&lower[0], &mut upper[row])
            } else {
                (&upper[col], &mut lower[0])
            };
            for (d, s) in dst.iter_mut().zip(src) {
                *d -= factor * s;
            }
        }
    }
    Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn hessian_of_quadratic_is_exact() {
        // f = x'Ax/2 with A = [[4, 1, 0], [1, 3, 2], [0, 2, 6]].
        let a = [[4.0, 1.0, 0.0], [1.0, 3.0, 2.0], [0.0, 2.0, 6.0]];
        let f = |v: &[f64]| {
            let mut acc = 0.0;
            for i in 0..3 {
                for j in 0..3 {
                    acc += 0.5 * a[i][j] * v[i] * v[j];
                }
            }
            acc
        };
        let h = numerical_hessian(f, &[0.5, -1.0, 2.0], 1e-4);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(h[i][j], a[i][j], 1e-4), "({i},{j}): {}", h[i][j]);
            }
        }
    }

    #[test]
    fn inversion_round_trips() {
        let m = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 6.0],
        ];
        let inv = invert_matrix(&m).unwrap();
        // M · M⁻¹ = I.
        for (i, row) in m.iter().enumerate() {
            for (j, _) in inv.iter().enumerate() {
                let prod: f64 = (0..3).map(|k| row[k] * inv[k][j]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod, expected, 1e-10), "({i},{j}): {prod}");
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(invert_matrix(&m).is_none());
    }

    #[test]
    fn one_by_one_inverse() {
        let inv = invert_matrix(&[vec![5.0]]).unwrap();
        assert!(approx_eq(inv[0][0], 0.2, 1e-12));
    }

    #[test]
    fn minimises_sphere() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[3.0, -4.0, 5.0],
            None,
            &NelderMeadConfig::default(),
        );
        assert!(r.fx < 1e-12, "fx = {}", r.fx);
        for v in &r.x {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn minimises_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(rosen, &[-1.2, 1.0], None, &NelderMeadConfig::default());
        assert!(approx_eq(r.x[0], 1.0, 1e-3));
        assert!(approx_eq(r.x[1], 1.0, 1e-3));
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained optimum at 5; box caps at 2.
        let r = nelder_mead(
            |x| (x[0] - 5.0).powi(2),
            &[1.0],
            Some(&[(0.0, 2.0)]),
            &NelderMeadConfig::default(),
        );
        assert!(r.x[0] <= 2.0 + 1e-12);
        assert!(approx_eq(r.x[0], 2.0, 1e-4));
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(
            |x| (x[0] - 0.25).powi(2) + 3.0,
            &[10.0],
            None,
            &NelderMeadConfig::default(),
        );
        assert!(approx_eq(r.x[0], 0.25, 1e-4));
        assert!(approx_eq(r.fx, 3.0, 1e-8));
    }

    #[test]
    fn nan_objective_treated_as_infinite() {
        // NaN outside the unit disc must not poison the search.
        let f = |x: &[f64]| {
            let r2 = x[0] * x[0] + x[1] * x[1];
            if r2 > 1.0 {
                f64::NAN
            } else {
                r2
            }
        };
        let r = nelder_mead(f, &[0.5, 0.5], None, &NelderMeadConfig::default());
        assert!(r.fx < 1e-6);
    }

    #[test]
    fn respects_eval_budget() {
        let cfg = NelderMeadConfig {
            max_evals: 25,
            ..NelderMeadConfig::default()
        };
        let r = nelder_mead(|x| x[0] * x[0], &[100.0], None, &cfg);
        assert!(r.evals <= 27); // budget plus the in-flight expansion pair
    }
}
