//! Adaptive Simpson quadrature.
//!
//! Used by validation tests to integrate continuous densities (e.g.
//! checking that a sampled Gamma/Beta histogram matches its density)
//! and by the NHPP mean-value-function correspondence checks.

/// Adaptively integrates `f` over `[a, b]` to absolute tolerance
/// `tol` with Simpson's rule and Richardson error control.
///
/// Depth is capped (2^20 subdivisions) so pathological integrands
/// terminate; the cap is far beyond anything the SRM validation needs.
///
/// # Examples
///
/// ```
/// let v = srm_math::quadrature::integrate(|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-10);
/// assert!((v - 2.0).abs() < 1e-9);
/// ```
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if a > b {
        return -integrate(f, b, a, tol);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&f, a, b, fa, fm, fb, whole, tol, 40)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn polynomial_exact() {
        // Simpson is exact for cubics.
        let v = integrate(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12);
        let exact = (81.0 / 4.0 - 9.0 + 3.0) - (1.0 / 4.0 - 1.0 - 1.0);
        assert!(approx_eq(v, exact, 1e-10));
    }

    #[test]
    fn gaussian_integral() {
        // ∫ φ(x) dx over ±8 ≈ 1.
        let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let v = integrate(phi, -8.0, 8.0, 1e-12);
        assert!(approx_eq(v, 1.0, 1e-9));
    }

    #[test]
    fn reversed_limits_negate() {
        let v1 = integrate(|x| x.exp(), 0.0, 1.0, 1e-12);
        let v2 = integrate(|x| x.exp(), 1.0, 0.0, 1e-12);
        assert!(approx_eq(v1, -v2, 1e-12));
        assert!(approx_eq(v1, std::f64::consts::E - 1.0, 1e-10));
    }

    #[test]
    fn zero_width_interval() {
        assert_eq!(integrate(|x| x * x, 2.0, 2.0, 1e-12), 0.0);
    }

    #[test]
    fn sharply_peaked_integrand() {
        // Narrow Gaussian at 0.3 — exercises the adaptive refinement.
        let f = |x: f64| (-(x - 0.3).powi(2) / (2.0 * 1e-4)).exp();
        let v = integrate(f, 0.0, 1.0, 1e-12);
        let exact = (2.0 * std::f64::consts::PI * 1e-4).sqrt();
        assert!(approx_eq(v, exact, 1e-6), "v = {v}, exact = {exact}");
    }
}
