//! One-dimensional root finding and minimisation.
//!
//! Brent's method is used to invert CDFs that have no analytic
//! quantile, and the scalar minimiser drives one-parameter MLE fits
//! (model0/model3 baselines).

/// Error produced by the bracketing routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BracketError {
    /// `f(lo)` and `f(hi)` have the same sign, so no root is bracketed.
    NotBracketed,
    /// The iteration budget was exhausted before reaching tolerance.
    MaxIterations,
}

impl std::fmt::Display for BracketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotBracketed => write!(f, "interval does not bracket a root"),
            Self::MaxIterations => write!(f, "iteration budget exhausted"),
        }
    }
}

impl std::error::Error for BracketError {}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Robust but linear; preferred when `f` is cheap and possibly
/// non-smooth (e.g. step-function CDFs of discrete distributions).
///
/// # Errors
///
/// Returns [`BracketError::NotBracketed`] if `f(lo)` and `f(hi)` share
/// a sign.
///
/// # Examples
///
/// ```
/// let root = srm_math::roots::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, BracketError> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(BracketError::NotBracketed);
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol {
            return Ok(mid);
        }
        let fm = f(mid);
        if fm == 0.0 {
            return Ok(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Err(BracketError::MaxIterations)
}

/// Brent's root finder: bisection safeguarded inverse quadratic
/// interpolation. Superlinear on smooth functions.
///
/// # Errors
///
/// Returns [`BracketError::NotBracketed`] when `[a, b]` does not
/// bracket a sign change, [`BracketError::MaxIterations`] on budget
/// exhaustion.
///
/// # Examples
///
/// ```
/// let root = srm_math::roots::brent_root(|x: f64| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
/// assert!((root - 0.7390851332151607).abs() < 1e-12);
/// ```
pub fn brent_root<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, BracketError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(BracketError::NotBracketed);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() <= tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        // Written to mirror the textbook acceptance condition; clippy's
        // "minimal" form obscures the five named sub-conditions.
        #[allow(clippy::nonminimal_bool)]
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && !(mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            && !(!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            && !(mflag && (b - c).abs() < tol)
            && !(!mflag && (c - d).abs() < tol));
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(BracketError::MaxIterations)
}

/// Brent's scalar minimiser (golden-section + parabolic interpolation)
/// on `[a, b]`. Returns `(x_min, f(x_min))`.
///
/// # Examples
///
/// ```
/// let (x, fx) = srm_math::roots::brent_min(|x: f64| (x - 2.0).powi(2) + 1.0, 0.0, 5.0, 1e-10, 200);
/// assert!((x - 2.0).abs() < 1e-7);
/// assert!((fx - 1.0).abs() < 1e-10);
/// ```
pub fn brent_min<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> (f64, f64) {
    const GOLD: f64 = 0.381_966_011_250_105; // (3 − √5)/2
    let (mut a, mut b) = (a.min(b), a.max(b));
    let mut x = a + GOLD * (b - a);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let tol1 = tol * x.abs() + 1e-15;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (b - a) {
            break;
        }
        let mut take_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = e;
            e = d;
            if p.abs() < (0.5 * q * e_old).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                take_golden = false;
            }
        }
        if take_golden {
            e = if x < m { b - x } else { a - x };
            d = GOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        if fu <= fx {
            if u < x {
                b = x;
            } else {
                a = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10));
    }

    #[test]
    fn bisect_reports_missing_bracket() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-10, 100),
            Err(BracketError::NotBracketed)
        );
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-10, 100).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn brent_root_cubic() {
        let r = brent_root(
            |x| (x + 3.0) * (x - 1.0) * (x - 1.0) * (x - 0.5),
            0.0,
            0.9,
            1e-14,
            100,
        )
        .unwrap();
        assert!(approx_eq(r, 0.5, 1e-9));
    }

    #[test]
    fn brent_root_transcendental() {
        let r = brent_root(|x: f64| x.exp() - 3.0, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!(approx_eq(r, 3.0_f64.ln(), 1e-11));
    }

    #[test]
    fn brent_root_missing_bracket() {
        assert_eq!(
            brent_root(|x| x * x + 1.0, -2.0, 2.0, 1e-10, 100),
            Err(BracketError::NotBracketed)
        );
    }

    #[test]
    fn brent_min_quadratic() {
        let (x, _) = brent_min(|x| (x - 0.7).powi(2), 0.0, 1.0, 1e-12, 200);
        assert!(approx_eq(x, 0.7, 1e-6));
    }

    #[test]
    fn brent_min_asymmetric() {
        // min of x − ln x at x = 1.
        let (x, fx) = brent_min(|x: f64| x - x.ln(), 0.1, 5.0, 1e-12, 200);
        assert!(approx_eq(x, 1.0, 1e-6));
        assert!(approx_eq(fx, 1.0, 1e-10));
    }

    #[test]
    fn brent_min_boundary_minimum() {
        // Monotone increasing on the interval: minimiser hugs `a`.
        let (x, _) = brent_min(|x| x, 2.0, 3.0, 1e-10, 200);
        assert!(x < 2.0 + 1e-4);
    }
}
