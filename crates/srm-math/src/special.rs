//! Gamma-family special functions.
//!
//! The log-gamma implementation uses the Lanczos approximation with the
//! classic `g = 7`, `n = 9` coefficient set, giving ~15 significant
//! digits over the positive reals. Log-factorials are served from a
//! lazily grown cache because the likelihood of the discrete SRM
//! (Eq. (2) of the paper) evaluates `ln n!` millions of times per
//! Gibbs run with small, repeating arguments.

use std::sync::{OnceLock, RwLock};

/// Lanczos coefficients (g = 7, n = 9), Boost/Numerical Recipes set.
const LANCZOS_G: f64 = 7.0;
// Coefficients kept digit-for-digit as published, beyond f64 precision.
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8; // ln sqrt(2π)

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Accuracy is ~1e-14 relative over `x ∈ (0, 1e300)`.
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is NaN — the SRM code never evaluates
/// log-gamma at non-positive arguments, so this indicates a logic bug.
///
/// # Examples
///
/// ```
/// use srm_math::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-14);          // Γ(1) = 1
/// assert!((ln_gamma(0.5) - 0.5723649429247001).abs() < 1e-12); // ln √π
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection would be needed for x < 0; for x in (0, 0.5) use
        // the recurrence ln Γ(x) = ln Γ(x+1) − ln x to stay accurate.
        return ln_gamma(x + 1.0) - x.ln();
    }
    let z = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    LN_SQRT_2PI + (z + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`. Overflows to `inf` for
/// `x ≳ 171.6`.
///
/// # Panics
///
/// Panics if `x <= 0` (see [`ln_gamma`]).
///
/// # Examples
///
/// ```
/// assert!((srm_math::special::gamma(6.0) - 120.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Size of the eagerly usable portion of the log-factorial cache.
const LN_FACT_INITIAL: usize = 4_096;

static LN_FACT_CACHE: OnceLock<RwLock<Vec<f64>>> = OnceLock::new();

fn ln_fact_cache() -> &'static RwLock<Vec<f64>> {
    LN_FACT_CACHE.get_or_init(|| {
        let mut v = Vec::with_capacity(LN_FACT_INITIAL);
        v.push(0.0); // ln 0! = 0
        for n in 1..LN_FACT_INITIAL {
            let prev = v[n - 1];
            v.push(prev + (n as f64).ln());
        }
        RwLock::new(v)
    })
}

/// Natural logarithm of the factorial, `ln n!`.
///
/// Served from a lazily grown cache (exact recurrence, so every cached
/// value has only accumulated rounding from `ln`); arguments beyond
/// 2^20 fall back to [`ln_gamma`]`(n + 1)` rather than growing the
/// cache without bound.
///
/// # Examples
///
/// ```
/// use srm_math::special::ln_factorial;
/// assert!((ln_factorial(5) - 120.0_f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_factorial(0), 0.0);
/// ```
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    const CACHE_LIMIT: u64 = 1 << 20;
    if n >= CACHE_LIMIT {
        return ln_gamma(n as f64 + 1.0);
    }
    let idx = n as usize;
    {
        // A poisoned lock only means another thread panicked while
        // extending the cache; the prefix it wrote is still exact, so
        // recover the guard instead of propagating the panic.
        let cache = ln_fact_cache()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if idx < cache.len() {
            return cache[idx];
        }
    }
    let mut cache = ln_fact_cache()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    while cache.len() <= idx {
        let len = cache.len();
        let prev = cache[len - 1];
        cache.push(prev + (len as f64).ln());
    }
    cache[idx]
}

/// Log of the binomial coefficient `ln C(n, k)`.
///
/// Returns `-inf` when `k > n`, matching the convention that the
/// coefficient is zero there (useful for truncated supports).
///
/// # Examples
///
/// ```
/// use srm_math::special::ln_binomial;
/// assert!((ln_binomial(10, 3) - 120.0_f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Log of the generalised binomial coefficient
/// `ln C(a + k − 1, k) = ln Γ(a + k) − ln Γ(a) − ln k!` for real `a > 0`,
/// the combinatorial weight of the negative binomial p.m.f.
///
/// # Panics
///
/// Panics if `a <= 0`.
///
/// # Examples
///
/// ```
/// use srm_math::special::ln_nb_coeff;
/// // a = 3, k = 2 → C(4, 2) = 6
/// assert!((ln_nb_coeff(3.0, 2) - 6.0_f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_nb_coeff(a: f64, k: u64) -> f64 {
    assert!(a > 0.0, "ln_nb_coeff requires a > 0, got {a}");
    ln_gamma(a + k as f64) - ln_gamma(a) - ln_factorial(k)
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence to shift the argument above 6 and then the
/// asymptotic series; accuracy ~1e-12.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use srm_math::special::digamma;
/// // ψ(1) = −γ (Euler–Mascheroni)
/// assert!((digamma(1.0) + 0.5772156649015329).abs() < 1e-10);
/// ```
#[must_use]
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic expansion: ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n}).
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// Trigamma function `ψ'(x)` for `x > 0` (variance of log-gamma
/// conditionals; also handy for Geweke spectral checks).
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use srm_math::special::trigamma;
/// // ψ'(1) = π²/6
/// assert!((trigamma(1.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + 0.5 * inv
                + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_integers_match_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..30u64 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(approx_eq(ln_gamma(n as f64), fact.ln(), 1e-12), "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(approx_eq(ln_gamma(0.5), sqrt_pi.ln(), 1e-12));
        assert!(approx_eq(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12));
        assert!(approx_eq(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        for &x in &[0.1, 0.7, 1.3, 4.5, 17.2, 123.456, 1e4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!(approx_eq(lhs, rhs, 1e-11), "x = {x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Stirling: ln Γ(x) ≈ (x−0.5) ln x − x + ln √(2π) + 1/(12x)
        let x = 1e8f64;
        let stirling = (x - 0.5) * x.ln() - x + LN_SQRT_2PI + 1.0 / (12.0 * x);
        assert!(approx_eq(ln_gamma(x), stirling, 1e-12));
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_small_values_exact() {
        let expected: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in expected.iter().enumerate() {
            assert!(approx_eq(ln_factorial(n as u64), f.ln(), 1e-13), "n = {n}");
        }
    }

    #[test]
    fn ln_factorial_grows_cache_and_agrees_with_ln_gamma() {
        for &n in &[10u64, 100, 5_000, 60_000] {
            assert!(
                approx_eq(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-10),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ln_factorial_beyond_cache_limit_uses_ln_gamma() {
        let n = (1u64 << 20) + 7;
        assert!(approx_eq(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-12));
    }

    #[test]
    fn ln_binomial_pascal_rule() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = ln_binomial(n, k).exp();
                let rhs = ln_binomial(n - 1, k - 1).exp() + ln_binomial(n - 1, k).exp();
                assert!(approx_eq(lhs, rhs, 1e-9), "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn ln_binomial_out_of_range_is_neg_inf() {
        assert_eq!(ln_binomial(4, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_nb_coeff_matches_integer_binomial() {
        // For integer a: C(a + k − 1, k).
        for a in 1..12u64 {
            for k in 0..12u64 {
                let lhs = ln_nb_coeff(a as f64, k);
                let rhs = ln_binomial(a + k - 1, k);
                assert!(approx_eq(lhs, rhs, 1e-10), "a = {a}, k = {k}");
            }
        }
    }

    #[test]
    fn digamma_recurrence() {
        for &x in &[0.2, 0.9, 2.5, 7.0, 42.0] {
            let lhs = digamma(x + 1.0);
            let rhs = digamma(x) + 1.0 / x;
            assert!(approx_eq(lhs, rhs, 1e-10), "x = {x}");
        }
    }

    #[test]
    fn digamma_half() {
        // ψ(1/2) = −γ − 2 ln 2
        let expected = -0.577_215_664_901_532_9 - 2.0 * std::f64::consts::LN_2;
        assert!(approx_eq(digamma(0.5), expected, 1e-10));
    }

    #[test]
    fn trigamma_recurrence() {
        for &x in &[0.3, 1.0, 3.7, 15.0] {
            let lhs = trigamma(x + 1.0);
            let rhs = trigamma(x) - 1.0 / (x * x);
            assert!(approx_eq(lhs, rhs, 1e-9), "x = {x}");
        }
    }

    #[test]
    fn gamma_overflow_is_infinite_not_nan() {
        assert!(gamma(200.0).is_infinite());
    }
}
