//! Goodness-of-fit tests: one-sample Kolmogorov–Smirnov and the
//! chi-square test.
//!
//! Used by the test suites of `srm-rand` (sampler validation against
//! analytic CDFs) and available to users checking model fit.

use crate::incgamma::inc_gamma_p;

/// One-sample Kolmogorov–Smirnov statistic `D_n = sup |F_n − F|`
/// against the CDF `cdf`.
///
/// # Panics
///
/// Panics on an empty sample.
///
/// # Examples
///
/// ```
/// use srm_math::stats::ks_statistic;
/// // A perfectly uniform grid against the uniform CDF: D ≈ 1/(2n).
/// let sample: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
/// let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
/// assert!(d < 0.011);
/// ```
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> f64 {
    assert!(!sample.is_empty(), "KS requires a non-empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let ecdf_hi = (i as f64 + 1.0) / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((ecdf_hi - f).abs()).max((f - ecdf_lo).abs());
    }
    d
}

/// Asymptotic p-value of the KS statistic via the Kolmogorov
/// distribution `Q(λ) = 2 Σ (−1)^{j−1} e^{−2 j² λ²}` with the
/// Stephens small-sample correction.
///
/// # Examples
///
/// ```
/// use srm_math::stats::{ks_statistic, ks_p_value};
/// let sample: Vec<f64> = (0..200).map(|i| (i as f64 + 0.5) / 200.0).collect();
/// let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
/// assert!(ks_p_value(d, sample.len()) > 0.9); // perfect fit
/// ```
#[must_use]
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if n == 0 || d <= 0.0 {
        return 1.0;
    }
    let nf = n as f64;
    let lambda = (nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Chi-square survival function `P(X > x)` with `k` degrees of
/// freedom.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// // P(X > k) ≈ 0.5-ish near the mean; exact for df = 2: e^{−x/2}.
/// let p = srm_math::stats::chi2_sf(4.0, 2);
/// assert!((p - (-2.0f64).exp()).abs() < 1e-10);
/// ```
#[must_use]
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    assert!(k > 0, "chi-square needs at least one degree of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - inc_gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Pearson chi-square goodness-of-fit test of observed counts against
/// expected counts. Returns `(statistic, p_value)` with
/// `len − 1 − constrained` degrees of freedom.
///
/// # Panics
///
/// Panics if the slices differ in length, are shorter than 2 after
/// accounting for constraints, or any expected count is non-positive.
///
/// # Examples
///
/// ```
/// use srm_math::stats::chi2_gof;
/// let observed = [48.0, 52.0];
/// let expected = [50.0, 50.0];
/// let (stat, p) = chi2_gof(&observed, &expected, 0);
/// assert!(stat < 1.0);
/// assert!(p > 0.5);
/// ```
#[must_use]
pub fn chi2_gof(observed: &[f64], expected: &[f64], constrained: usize) -> (f64, f64) {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(
        observed.len() > constrained + 1,
        "not enough cells for the degrees of freedom"
    );
    let mut stat = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e > 0.0, "expected counts must be positive");
        stat += (o - e) * (o - e) / e;
    }
    let df = observed.len() - 1 - constrained;
    (stat, chi2_sf(stat, df))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ks_detects_wrong_distribution() {
        // Uniform sample tested against a shifted CDF: D large.
        let sample: Vec<f64> = (0..500).map(|i| (i as f64 + 0.5) / 500.0).collect();
        let d = ks_statistic(&sample, |x| (x * x).clamp(0.0, 1.0));
        assert!(d > 0.2, "d = {d}");
        assert!(ks_p_value(d, sample.len()) < 1e-6);
    }

    #[test]
    fn ks_accepts_correct_distribution() {
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(ks_p_value(d, 1000) > 0.99);
    }

    #[test]
    fn ks_p_value_monotone_in_d() {
        let p1 = ks_p_value(0.02, 500);
        let p2 = ks_p_value(0.05, 500);
        let p3 = ks_p_value(0.10, 500);
        assert!(p1 > p2 && p2 > p3);
    }

    #[test]
    fn chi2_sf_known_values() {
        // df = 2: SF(x) = e^{−x/2}.
        for &x in &[0.5f64, 2.0, 10.0] {
            assert!(approx_eq(chi2_sf(x, 2), (-x / 2.0).exp(), 1e-10));
        }
        // df = 1: SF(x) = 2(1 − Φ(√x)).
        let x = 3.84f64;
        let expected = 2.0 * (1.0 - crate::erf::norm_cdf(x.sqrt()));
        assert!(approx_eq(chi2_sf(x, 1), expected, 1e-9));
        // The 95th percentile of χ²₁ is ≈ 3.84.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 0.001);
    }

    #[test]
    fn chi2_gof_detects_bias() {
        let observed = [80.0, 20.0];
        let expected = [50.0, 50.0];
        let (stat, p) = chi2_gof(&observed, &expected, 0);
        assert!(stat > 30.0);
        assert!(p < 1e-6);
    }

    #[test]
    fn chi2_gof_constrained_df() {
        let observed = [10.0, 12.0, 9.0, 11.0];
        let expected = [10.5, 10.5, 10.5, 10.5];
        let (_, p_free) = chi2_gof(&observed, &expected, 0);
        let (_, p_constrained) = chi2_gof(&observed, &expected, 1);
        // Fewer degrees of freedom make the same statistic less
        // probable under the null.
        assert!(p_constrained <= p_free);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_empty_sample_panics() {
        let _ = ks_statistic(&[], |x| x);
    }
}
