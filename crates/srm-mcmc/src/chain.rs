//! Chain storage.
//!
//! A [`Chain`] holds the kept draws of one MCMC run in parameter-major
//! layout (one contiguous `Vec<f64>` per parameter), which is the
//! access pattern of every diagnostic and summary.

/// The kept draws of a single MCMC chain.
///
/// # Examples
///
/// ```
/// use srm_mcmc::Chain;
///
/// let mut chain = Chain::new(&["x", "y"]);
/// chain.push(&[1.0, 10.0]);
/// chain.push(&[2.0, 20.0]);
/// assert_eq!(chain.draws("x").unwrap(), &[1.0, 2.0]);
/// assert_eq!(chain.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    names: Vec<String>,
    draws: Vec<Vec<f64>>,
}

impl Chain {
    /// Creates an empty chain with the given parameter names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or contains duplicates.
    #[must_use]
    pub fn new(names: &[&str]) -> Self {
        assert!(!names.is_empty(), "a chain needs at least one parameter");
        let mut seen = std::collections::HashSet::new();
        for n in names {
            assert!(seen.insert(*n), "duplicate parameter name `{n}`");
        }
        Self {
            names: names.iter().map(|s| (*s).to_owned()).collect(),
            draws: vec![Vec::new(); names.len()],
        }
    }

    /// Parameter names, in column order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of kept draws.
    #[must_use]
    pub fn len(&self) -> usize {
        self.draws[0].len()
    }

    /// Whether the chain has no draws yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one joint draw (one value per parameter).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn push(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.names.len(),
            "draw has {} values for {} parameters",
            values.len(),
            self.names.len()
        );
        for (col, &v) in self.draws.iter_mut().zip(values) {
            col.push(v);
        }
    }

    /// The draws of one parameter by name.
    #[must_use]
    pub fn draws(&self, name: &str) -> Option<&[f64]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.draws[idx])
    }

    /// The draws of one parameter by column index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn draws_at(&self, idx: usize) -> &[f64] {
        &self.draws[idx]
    }

    /// Reserves capacity for `additional` more draws per parameter.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.draws {
            col.reserve(additional);
        }
    }

    /// Writes the chain as CSV (`draw,<param>,…` header, one row per
    /// kept draw) for analysis in external tools.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> std::io::Result<()> {
    /// let mut chain = srm_mcmc::Chain::new(&["x"]);
    /// chain.push(&[1.5]);
    /// let mut out = Vec::new();
    /// chain.write_csv(&mut out)?;
    /// assert_eq!(String::from_utf8(out).unwrap(), "draw,x\n0,1.5\n");
    /// # Ok(())
    /// # }
    /// ```
    pub fn write_csv<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(writer, "draw")?;
        for name in &self.names {
            write!(writer, ",{name}")?;
        }
        writeln!(writer)?;
        for i in 0..self.len() {
            write!(writer, "{i}")?;
            for col in &self.draws {
                write!(writer, ",{}", col[i])?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = Chain::new(&["a", "b", "c"]);
        assert!(c.is_empty());
        c.push(&[1.0, 2.0, 3.0]);
        c.push(&[4.0, 5.0, 6.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.draws("b").unwrap(), &[2.0, 5.0]);
        assert_eq!(c.draws_at(2), &[3.0, 6.0]);
        assert!(c.draws("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let _ = Chain::new(&["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_names_panic() {
        let _ = Chain::new(&[]);
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn wrong_arity_push_panics() {
        let mut c = Chain::new(&["x"]);
        c.push(&[1.0, 2.0]);
    }

    #[test]
    fn csv_export_layout() {
        let mut c = Chain::new(&["a", "b"]);
        c.push(&[1.0, 2.0]);
        c.push(&[3.5, -4.0]);
        let mut out = Vec::new();
        c.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "draw,a,b");
        assert_eq!(lines[1], "0,1,2");
        assert_eq!(lines[2], "1,3.5,-4");
    }

    #[test]
    fn reserve_does_not_change_contents() {
        let mut c = Chain::new(&["x"]);
        c.push(&[9.0]);
        c.reserve(1000);
        assert_eq!(c.draws("x").unwrap(), &[9.0]);
    }
}
