//! Convergence diagnostics: Gelman–Rubin PSRF, Geweke Z, effective
//! sample size and Monte-Carlo standard error.
//!
//! * **PSRF** (Eq. (26)–(29) of the paper): `sqrt(V̂/W)` from `m ≥ 2`
//!   chains; values below 1.1 indicate convergence.
//! * **Geweke Z**: the paper's Eq. (30) denominator is a typo (it
//!   subtracts the variances); the standard statistic divides the
//!   mean difference by `sqrt(Var(ḡ_A) + Var(ḡ_B))` with *spectral*
//!   variance estimates of the means. Both the standard form
//!   ([`geweke_z`]) and the naive-variance variant
//!   ([`geweke_z_naive`]) are provided.
//! * **ESS**: Geyer's initial-positive-sequence estimator.

use srm_math::accum::RunningMoments;

/// A combined convergence report for one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnosticsReport {
    /// Gelman–Rubin potential scale reduction factor.
    pub psrf: f64,
    /// Geweke Z statistic of the pooled first chain.
    pub geweke_z: f64,
    /// Effective sample size pooled across chains.
    pub ess: f64,
    /// Monte-Carlo standard error of the posterior mean.
    pub mcse: f64,
}

impl DiagnosticsReport {
    /// The conventional pass criteria: PSRF < 1.1 and |Z| < 1.96.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.psrf < 1.1 && self.geweke_z.abs() < 1.96
    }
}

/// Gelman–Rubin potential scale reduction factor from `m ≥ 2` chains
/// of equal length `n ≥ 2`.
///
/// # Panics
///
/// Panics with fewer than two chains, unequal lengths, or chains
/// shorter than two draws.
///
/// # Examples
///
/// ```
/// // Two identical long chains: PSRF ≈ 1.
/// let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
/// let r = srm_mcmc::psrf(&[&a, &a]);
/// assert!((r - 1.0).abs() < 0.01);
/// ```
#[must_use]
pub fn psrf(chains: &[&[f64]]) -> f64 {
    let m = chains.len();
    assert!(m >= 2, "PSRF requires at least two chains");
    let n = chains[0].len();
    assert!(n >= 2, "PSRF requires chains of length >= 2");
    for c in chains {
        assert_eq!(c.len(), n, "PSRF requires equal-length chains");
    }
    let nf = n as f64;
    let mf = m as f64;

    let chain_stats: Vec<RunningMoments> =
        chains.iter().map(|c| c.iter().copied().collect()).collect();
    // W: mean of within-chain variances.
    let w: f64 = chain_stats
        .iter()
        .map(RunningMoments::sample_variance)
        .sum::<f64>()
        / mf;
    // B/n: variance of the chain means.
    let grand: f64 = chain_stats.iter().map(RunningMoments::mean).sum::<f64>() / mf;
    let b_over_n: f64 = chain_stats
        .iter()
        .map(|s| (s.mean() - grand).powi(2))
        .sum::<f64>()
        / (mf - 1.0);
    if w <= 0.0 {
        // All chains constant: converged by definition unless the
        // means disagree.
        return if b_over_n <= 0.0 { 1.0 } else { f64::INFINITY };
    }
    let v_hat = (nf - 1.0) / nf * w + b_over_n;
    (v_hat / w).sqrt()
}

/// Spectral-density-at-zero estimate of the long-run variance of a
/// segment, via Bartlett-windowed autocovariances with bandwidth
/// `⌊√n⌋` — the estimator `coda::geweke.diag` uses in spirit.
fn spectral_variance_of_mean(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean = x.iter().sum::<f64>() / nf;
    let centred: Vec<f64> = x.iter().map(|v| v - mean).collect();
    let bandwidth = (nf.sqrt().floor() as usize).max(1).min(n - 1);
    let gamma = |lag: usize| -> f64 {
        centred[..n - lag]
            .iter()
            .zip(&centred[lag..])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / nf
    };
    let mut s = gamma(0);
    for lag in 1..=bandwidth {
        let weight = 1.0 - lag as f64 / (bandwidth as f64 + 1.0);
        s += 2.0 * weight * gamma(lag);
    }
    (s / nf).max(0.0)
}

/// Geweke convergence statistic comparing the first `frac_a` and last
/// `frac_b` portions of a chain, with spectral variance estimates
/// (the standard 0.1 / 0.5 split is the default entry point
/// [`geweke_z`]).
///
/// # Panics
///
/// Panics if the fractions are not in `(0, 1)` or overlap.
#[must_use]
pub fn geweke_z_fractions(draws: &[f64], frac_a: f64, frac_b: f64) -> f64 {
    assert!(frac_a > 0.0 && frac_a < 1.0, "frac_a out of range");
    assert!(frac_b > 0.0 && frac_b < 1.0, "frac_b out of range");
    assert!(frac_a + frac_b <= 1.0, "segments overlap");
    let n = draws.len();
    let na = ((n as f64) * frac_a).floor() as usize;
    let nb = ((n as f64) * frac_b).floor() as usize;
    assert!(na >= 2 && nb >= 2, "chain too short for Geweke");
    let a = &draws[..na];
    let b = &draws[n - nb..];
    let mean_a = a.iter().sum::<f64>() / na as f64;
    let mean_b = b.iter().sum::<f64>() / nb as f64;
    if equal_within_roundoff(mean_a, mean_b) {
        return 0.0; // segments identical up to round-off ⇒ converged
    }
    let var = spectral_variance_of_mean(a) + spectral_variance_of_mean(b);
    if var <= 0.0 {
        return f64::INFINITY * (mean_a - mean_b).signum();
    }
    (mean_a - mean_b) / var.sqrt()
}

/// Segment means of a constant chain differ only by accumulated
/// round-off; treating that as divergence would make Z a 0/0 noise
/// ratio.
fn equal_within_roundoff(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (a.abs() + b.abs() + 1.0)
}

/// Geweke Z with the conventional 10 % / 50 % split.
///
/// # Examples
///
/// ```
/// // A stationary white-noise chain passes.
/// let draws: Vec<f64> = (0..2000).map(|i| (((i * 2654435761u64) % 1000) as f64) / 1000.0).collect();
/// let z = srm_mcmc::geweke_z(&draws);
/// assert!(z.abs() < 1.96);
/// ```
#[must_use]
pub fn geweke_z(draws: &[f64]) -> f64 {
    geweke_z_fractions(draws, 0.1, 0.5)
}

/// The naive-variance Geweke variant (sample variances of the segment
/// means, no autocorrelation correction). Anticonservative on
/// correlated chains; provided for comparison with the paper's
/// Eq. (30).
#[must_use]
pub fn geweke_z_naive(draws: &[f64]) -> f64 {
    let n = draws.len();
    let na = n / 10;
    let nb = n / 2;
    assert!(na >= 2 && nb >= 2, "chain too short for Geweke");
    let a = &draws[..na];
    let b = &draws[n - nb..];
    let stats = |x: &[f64]| {
        let m: RunningMoments = x.iter().copied().collect();
        (m.mean(), m.sample_variance() / x.len() as f64)
    };
    let (ma, va) = stats(a);
    let (mb, vb) = stats(b);
    if equal_within_roundoff(ma, mb) {
        return 0.0;
    }
    let var = va + vb;
    if var <= 0.0 {
        return f64::INFINITY * (ma - mb).signum();
    }
    (ma - mb) / var.sqrt()
}

/// Effective sample size of a single chain via Geyer's initial
/// positive sequence: sum paired autocorrelations until a pair goes
/// non-positive.
///
/// # Examples
///
/// ```
/// let iid: Vec<f64> = (0..4000).map(|i| (((i * 48271) % 65536) as f64) / 65536.0).collect();
/// let ess = srm_mcmc::effective_sample_size(&iid);
/// assert!(ess > 2000.0); // near-iid stream keeps most of its draws
/// ```
#[must_use]
pub fn effective_sample_size(draws: &[f64]) -> f64 {
    let n = draws.len();
    if n < 4 {
        return n as f64;
    }
    let nf = n as f64;
    let mean = draws.iter().sum::<f64>() / nf;
    let centred: Vec<f64> = draws.iter().map(|v| v - mean).collect();
    let gamma0 = centred.iter().map(|v| v * v).sum::<f64>() / nf;
    if gamma0 <= 0.0 {
        return nf; // constant chain: define ESS = n
    }
    let gamma = |lag: usize| -> f64 {
        centred[..n - lag]
            .iter()
            .zip(&centred[lag..])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / nf
    };
    let mut tau = 1.0; // 1 + 2 Σ ρ_t, accumulated in pairs
    let mut lag = 1usize;
    while lag + 1 < n {
        let pair = gamma(lag) + gamma(lag + 1);
        if pair <= 0.0 {
            break;
        }
        tau += 2.0 * pair / gamma0;
        lag += 2;
    }
    (nf / tau).min(nf)
}

/// Rank-normalised split-R̂ (Vehtari, Gelman, Simpson, Carpenter &
/// Bürkner 2021): each chain is split in half, all draws are replaced
/// by their normal scores (rank-normalisation), and the classic PSRF
/// is computed on the transformed halves.
///
/// Compared to the paper's plain PSRF (Eq. (26)) this catches chains
/// that agree in mean but not in spread, and is robust to the heavy
/// tails our weakly-identified models produce.
///
/// # Panics
///
/// Panics with fewer than one chain or chains shorter than four draws.
///
/// # Examples
///
/// ```
/// let a: Vec<f64> = (0..1000).map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64).collect();
/// let b: Vec<f64> = (0..1000).map(|i| (((i as u64 + 7).wrapping_mul(0x9E3779B97F4A7C15)) >> 40) as f64).collect();
/// let rhat = srm_mcmc::diagnostics::split_rhat_rank_normalized(&[&a, &b]);
/// assert!(rhat < 1.05, "rhat = {rhat}");
/// ```
#[must_use]
pub fn split_rhat_rank_normalized(chains: &[&[f64]]) -> f64 {
    assert!(!chains.is_empty(), "split-Rhat requires at least one chain");
    let n = chains[0].len();
    assert!(n >= 4, "split-Rhat requires chains of length >= 4");
    for c in chains {
        assert_eq!(c.len(), n, "split-Rhat requires equal-length chains");
    }
    let half = n / 2;

    // Pool every draw to compute global ranks (average ranks on ties).
    let mut indexed: Vec<(f64, usize)> = Vec::with_capacity(chains.len() * 2 * half);
    let mut halves: Vec<&[f64]> = Vec::with_capacity(chains.len() * 2);
    for c in chains {
        halves.push(&c[..half]);
        halves.push(&c[n - half..]);
    }
    for (which, h) in halves.iter().enumerate() {
        for &v in *h {
            indexed.push((v, which));
        }
    }
    let total = indexed.len();
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by(|&i, &j| indexed[i].0.total_cmp(&indexed[j].0));
    let mut ranks = vec![0.0f64; total];
    let mut i = 0;
    while i < total {
        let mut j = i;
        while j + 1 < total && indexed[order[j + 1]].0 == indexed[order[i]].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }

    // Normal scores: z = Φ^{-1}((rank − 3/8) / (S + 1/4)).
    let s = total as f64;
    let mut transformed: Vec<Vec<f64>> = vec![Vec::with_capacity(half); halves.len()];
    for (k, &(_, which)) in indexed.iter().enumerate() {
        let p = ((ranks[k] - 0.375) / (s + 0.25)).clamp(1e-12, 1.0 - 1e-12);
        transformed[which].push(srm_math::norm_quantile(p));
    }
    let refs: Vec<&[f64]> = transformed.iter().map(Vec::as_slice).collect();
    psrf(&refs)
}

/// Sample autocorrelation function of a chain at lags `0..=max_lag`.
///
/// Returns an empty vector for chains shorter than 2 or with zero
/// variance beyond lag 0 handling (a constant chain yields `[1.0,
/// 0.0, …]` by convention).
///
/// # Examples
///
/// ```
/// // A scrambled (near-iid) stream decorrelates immediately.
/// let chain: Vec<f64> = (0u64..1000)
///     .map(|i| {
///         let h = i.wrapping_mul(0x9E3779B97F4A7C15);
///         ((h >> 33) % 1000) as f64
///     })
///     .collect();
/// let acf = srm_mcmc::diagnostics::autocorrelation(&chain, 5);
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[1].abs() < 0.1);
/// ```
#[must_use]
pub fn autocorrelation(draws: &[f64], max_lag: usize) -> Vec<f64> {
    let n = draws.len();
    if n < 2 {
        return Vec::new();
    }
    let nf = n as f64;
    let mean = draws.iter().sum::<f64>() / nf;
    let centred: Vec<f64> = draws.iter().map(|v| v - mean).collect();
    let gamma0 = centred.iter().map(|v| v * v).sum::<f64>() / nf;
    let max_lag = max_lag.min(n - 1);
    let mut acf = Vec::with_capacity(max_lag + 1);
    acf.push(1.0);
    for lag in 1..=max_lag {
        if gamma0 <= 0.0 {
            acf.push(0.0);
            continue;
        }
        let g = centred[..n - lag]
            .iter()
            .zip(&centred[lag..])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / nf;
        acf.push(g / gamma0);
    }
    acf
}

/// Monte-Carlo standard error of the mean: `sd · sqrt(1/ESS)`.
#[must_use]
pub fn mcse(draws: &[f64]) -> f64 {
    let m: RunningMoments = draws.iter().copied().collect();
    let ess = effective_sample_size(draws);
    if ess <= 0.0 {
        return f64::INFINITY;
    }
    (m.sample_variance() / ess).sqrt()
}

/// Builds the combined report for one parameter across chains.
///
/// # Panics
///
/// Panics under the same conditions as [`psrf`].
#[must_use]
pub fn report(chains: &[&[f64]]) -> DiagnosticsReport {
    let pooled: Vec<f64> = chains.iter().flat_map(|c| c.iter().copied()).collect();
    DiagnosticsReport {
        psrf: psrf(chains),
        geweke_z: geweke_z(chains[0]),
        ess: chains.iter().map(|c| effective_sample_size(c)).sum(),
        mcse: mcse(&pooled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_rand::{Distribution, Normal, SplitMix64};

    fn white_noise(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from(seed);
        Normal::standard().sample_n(&mut rng, n)
    }

    fn ar1(seed: u64, n: usize, rho: f64) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from(seed);
        let normal = Normal::standard();
        let mut x = 0.0;
        let innov = (1.0 - rho * rho).sqrt();
        (0..n)
            .map(|_| {
                x = rho * x + innov * normal.sample(&mut rng);
                x
            })
            .collect()
    }

    #[test]
    fn psrf_near_one_for_same_distribution() {
        let a = white_noise(80, 5_000);
        let b = white_noise(81, 5_000);
        let c = white_noise(82, 5_000);
        let r = psrf(&[&a, &b, &c]);
        assert!(r < 1.02, "r = {r}");
    }

    #[test]
    fn psrf_large_for_shifted_chains() {
        let a = white_noise(83, 2_000);
        let b: Vec<f64> = white_noise(84, 2_000).iter().map(|x| x + 5.0).collect();
        let r = psrf(&[&a, &b]);
        assert!(r > 1.5, "r = {r}");
    }

    #[test]
    fn psrf_constant_chains() {
        let a = vec![2.0; 100];
        let b = vec![2.0; 100];
        assert_eq!(psrf(&[&a, &b]), 1.0);
        let c = vec![3.0; 100];
        assert_eq!(psrf(&[&a, &c]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "at least two chains")]
    fn psrf_single_chain_panics() {
        let a = vec![1.0, 2.0];
        let _ = psrf(&[&a]);
    }

    #[test]
    fn geweke_passes_stationary_fails_trending() {
        let stationary = white_noise(85, 4_000);
        assert!(geweke_z(&stationary).abs() < 3.0);
        let trending: Vec<f64> = (0..4_000).map(|i| i as f64 * 0.01).collect();
        assert!(geweke_z(&trending).abs() > 5.0);
    }

    #[test]
    fn geweke_spectral_wider_than_naive_on_correlated_chain() {
        // On an AR(1) chain the naive variance understates the
        // uncertainty, inflating |Z| relative to the spectral form.
        let chain = ar1(86, 20_000, 0.95);
        let z_spec = geweke_z(&chain).abs();
        let z_naive = geweke_z_naive(&chain).abs();
        assert!(
            z_naive > z_spec,
            "naive {z_naive} should exceed spectral {z_spec}"
        );
    }

    #[test]
    fn geweke_constant_chain_is_zero() {
        let c = vec![4.2; 1_000];
        assert_eq!(geweke_z(&c), 0.0);
        assert_eq!(geweke_z_naive(&c), 0.0);
    }

    #[test]
    fn ess_full_for_iid_reduced_for_ar1() {
        let iid = white_noise(87, 10_000);
        let ess_iid = effective_sample_size(&iid);
        assert!(ess_iid > 8_000.0, "iid ESS = {ess_iid}");
        let correlated = ar1(88, 10_000, 0.9);
        let ess_ar = effective_sample_size(&correlated);
        // Theory: ESS ≈ n(1−ρ)/(1+ρ) ≈ 526.
        assert!(ess_ar < 1_500.0, "AR ESS = {ess_ar}");
        assert!(ess_ar > 150.0, "AR ESS = {ess_ar}");
    }

    #[test]
    fn ess_short_and_constant_chains() {
        assert_eq!(effective_sample_size(&[1.0, 2.0]), 2.0);
        assert_eq!(effective_sample_size(&vec![5.0; 100]), 100.0);
    }

    #[test]
    fn split_rhat_near_one_for_matching_chains() {
        let a = white_noise(95, 4_000);
        let b = white_noise(96, 4_000);
        let r = split_rhat_rank_normalized(&[&a, &b]);
        assert!(r < 1.02, "rhat = {r}");
    }

    #[test]
    fn split_rhat_flags_within_chain_drift() {
        // A single chain that drifts: classic multi-chain PSRF cannot
        // see it, split-Rhat can.
        let drifting: Vec<f64> = white_noise(97, 4_000)
            .into_iter()
            .enumerate()
            .map(|(i, x)| x + i as f64 * 0.002)
            .collect();
        let r = split_rhat_rank_normalized(&[&drifting]);
        assert!(r > 1.2, "rhat = {r}");
    }

    #[test]
    fn split_rhat_flags_scale_mismatch() {
        // Same mean, different spread: plain PSRF is fooled, the
        // rank-normalised folded variant catches spread through the
        // rank pooling.
        let a = white_noise(98, 4_000);
        let b: Vec<f64> = white_noise(99, 4_000).iter().map(|x| x * 6.0).collect();
        let plain = psrf(&[&a, &b]);
        let ranked = split_rhat_rank_normalized(&[&a, &b]);
        // Plain PSRF sees agreeing means over a pooled W that includes
        // the wide chain, so it stays low; rank pooling shifts the
        // narrow chain's scores toward the centre and disagrees.
        assert!(plain < 1.1, "plain = {plain}");
        assert!(ranked > plain, "ranked {ranked} <= plain {plain}");
    }

    #[test]
    fn split_rhat_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let b = vec![1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 1.0];
        let r = split_rhat_rank_normalized(&[&a, &b]);
        assert!(r.is_finite());
    }

    #[test]
    fn acf_iid_vs_correlated() {
        let iid = white_noise(93, 20_000);
        let acf_iid = autocorrelation(&iid, 3);
        assert!((acf_iid[0] - 1.0).abs() < 1e-12);
        assert!(acf_iid[1].abs() < 0.03, "rho1 = {}", acf_iid[1]);
        let chain = ar1(94, 20_000, 0.8);
        let acf_ar = autocorrelation(&chain, 3);
        assert!((acf_ar[1] - 0.8).abs() < 0.05, "rho1 = {}", acf_ar[1]);
        assert!((acf_ar[2] - 0.64).abs() < 0.06, "rho2 = {}", acf_ar[2]);
    }

    #[test]
    fn acf_edge_cases() {
        assert!(autocorrelation(&[1.0], 5).is_empty());
        let constant = autocorrelation(&vec![2.0; 100], 3);
        assert_eq!(constant[0], 1.0);
        // Lag capped at n − 1.
        let short = autocorrelation(&[1.0, 2.0, 3.0], 10);
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn mcse_shrinks_with_length() {
        let short = white_noise(89, 500);
        let long = white_noise(90, 50_000);
        assert!(mcse(&long) < mcse(&short));
        // For iid N(0,1), MCSE ≈ 1/√n.
        let expected = 1.0 / (50_000f64).sqrt();
        assert!((mcse(&long) - expected).abs() < expected);
    }

    #[test]
    fn report_aggregates() {
        let a = white_noise(91, 3_000);
        let b = white_noise(92, 3_000);
        let rep = report(&[&a, &b]);
        assert!(rep.converged(), "{rep:?}");
        assert!(rep.ess > 3_000.0);
        assert!(rep.mcse > 0.0);
    }
}
