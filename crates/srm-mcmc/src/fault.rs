//! The workspace error taxonomy and the deterministic fault-injection
//! harness.
//!
//! Every failure a sampler run can produce is a typed [`SrmError`]:
//! hot-path code returns `Result` instead of panicking, chain threads
//! are panic-contained by the runner, and recovery is bounded by a
//! [`RetryPolicy`] whose retries consume fresh draws from the chain's
//! own deterministic stream (so a given seed + [`FaultPlan`] always
//! recovers to bit-identical output).
//!
//! See DESIGN.md, "Fault model & degradation policy".

use srm_rand::{Rng, SplitMix64};
use std::fmt;

/// A typed sampler-stack failure.
///
/// Variants carry enough context to diagnose the fault without a
/// backtrace: which parameter, which sweep, which chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SrmError {
    /// A conditional's rate/likelihood evaluated to NaN or ±∞.
    NonFiniteLikelihood {
        /// The parameter whose conditional degenerated.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// The sweep index at which it was observed.
        sweep: usize,
    },
    /// A slice-sampling update could not find a feasible point.
    SliceExhausted {
        /// The parameter being updated.
        parameter: &'static str,
        /// The sweep index at which it was observed.
        sweep: usize,
    },
    /// A full conditional left its parameter family's valid domain.
    DegeneratePosterior {
        /// Human-readable description of the degenerate conditional.
        detail: String,
        /// The sweep index at which it was observed.
        sweep: usize,
    },
    /// A chain thread panicked and was contained by the runner.
    ChainPanicked {
        /// The chain (stream index) that panicked.
        chain: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A run configuration that cannot be executed.
    InvalidConfig {
        /// What was wrong with the configuration.
        detail: String,
    },
    /// A parameter requested from output is absent from a chain.
    MissingParameter {
        /// The requested parameter name.
        parameter: String,
        /// The chain it was missing from.
        chain: usize,
    },
}

impl SrmError {
    /// Stable kebab-case label of the variant, for fault counters and
    /// log lines.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NonFiniteLikelihood { .. } => "non-finite-likelihood",
            Self::SliceExhausted { .. } => "slice-exhausted",
            Self::DegeneratePosterior { .. } => "degenerate-posterior",
            Self::ChainPanicked { .. } => "chain-panicked",
            Self::InvalidConfig { .. } => "invalid-config",
            Self::MissingParameter { .. } => "missing-parameter",
        }
    }
}

impl fmt::Display for SrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteLikelihood {
                parameter,
                value,
                sweep,
            } => write!(
                f,
                "non-finite likelihood for {parameter} at sweep {sweep} (value {value})"
            ),
            Self::SliceExhausted { parameter, sweep } => {
                write!(
                    f,
                    "slice sampler exhausted for {parameter} at sweep {sweep}"
                )
            }
            Self::DegeneratePosterior { detail, sweep } => {
                write!(f, "degenerate posterior at sweep {sweep}: {detail}")
            }
            Self::ChainPanicked { chain, message } => {
                write!(f, "chain {chain} panicked: {message}")
            }
            Self::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            Self::MissingParameter { parameter, chain } => {
                write!(f, "parameter '{parameter}' missing from chain {chain}")
            }
        }
    }
}

impl std::error::Error for SrmError {}

/// How many times a failed sweep may be retried before the chain is
/// declared lost.
///
/// A retry restores the sampler state snapshotted at the start of the
/// failed sweep but does **not** rewind the RNG, so the re-attempt
/// consumes fresh draws from the chain's deterministic stream. Given
/// the same seed and the same faults, recovery is therefore
/// bit-identical run-to-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per chain (0 disables retry).
    pub max_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3 }
    }
}

impl RetryPolicy {
    /// No retries: the first fault loses the chain.
    #[must_use]
    pub fn none() -> Self {
        Self { max_retries: 0 }
    }
}

/// Which fault to inject at a [`FaultPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the chain thread (tests panic containment).
    Panic,
    /// Force the N-step rate non-finite (tests the
    /// [`SrmError::NonFiniteLikelihood`] path).
    NanRate,
    /// Synthesize a slice-sampler exhaustion (tests the
    /// [`SrmError::SliceExhausted`] path).
    SliceExhausted,
}

impl FaultKind {
    const ALL: [Self; 3] = [Self::Panic, Self::NanRate, Self::SliceExhausted];

    /// Stable kebab-case label, for trace events and log lines.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::NanRate => "nan-rate",
            Self::SliceExhausted => "slice-exhausted",
        }
    }
}

/// One scheduled fault: which chain, which sweep, what kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// The chain (stream index) to fault.
    pub chain: usize,
    /// The sweep (0-based, counting burn-in) at whose start the fault
    /// fires.
    pub sweep: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
///
/// Plans are plain data: build one explicitly with [`FaultPlan::new`]
/// or derive one from the run seed with [`FaultPlan::from_seed`] so a
/// given `(seed, chains, sweeps, count)` always injects the same
/// faults at the same places.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// The empty plan (no injection).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with the given fault points.
    #[must_use]
    pub fn new(points: Vec<FaultPoint>) -> Self {
        Self { points }
    }

    /// Derives `count` fault points from `seed`, spread over `chains`
    /// chains and `total_sweeps` sweeps, cycling through every
    /// [`FaultKind`]. Deterministic in all arguments.
    #[must_use]
    pub fn from_seed(seed: u64, chains: usize, total_sweeps: usize, count: usize) -> Self {
        if chains == 0 || total_sweeps == 0 {
            return Self::none();
        }
        // Domain-separate from the sampling streams so injecting
        // faults never perturbs the draws themselves.
        let mut rng = SplitMix64::seed_from(seed ^ 0xFA17_7E57_0BAD_CA5E);
        let points = (0..count)
            .map(|k| FaultPoint {
                chain: (rng.next_u64() % chains as u64) as usize,
                sweep: (rng.next_u64() % total_sweeps as u64) as usize,
                kind: FaultKind::ALL[k % FaultKind::ALL.len()],
            })
            .collect();
        Self { points }
    }

    /// The scheduled fault points.
    #[must_use]
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The consume-once injector for one chain.
    #[must_use]
    pub fn injector_for(&self, chain: usize) -> FaultInjector {
        FaultInjector {
            pending: self
                .points
                .iter()
                .filter(|p| p.chain == chain)
                .map(|p| (p.sweep, p.kind))
                .collect(),
        }
    }
}

/// Per-chain fault dispenser. Each scheduled fault fires at most once
/// (a retried sweep does not re-trigger it).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    pending: Vec<(usize, FaultKind)>,
}

impl FaultInjector {
    /// An injector that never fires.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether any faults are still pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Takes the fault scheduled for `sweep`, if any, removing it from
    /// the schedule.
    pub fn take(&mut self, sweep: usize) -> Option<FaultKind> {
        let idx = self.pending.iter().position(|&(s, _)| s == sweep)?;
        Some(self.pending.swap_remove(idx).1)
    }
}

/// What happened to a chain that completed: how many sweeps were
/// retried and the most recent fault recovered from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Retries consumed across the whole chain.
    pub retries: usize,
    /// The most recent fault recovered from (`None` for a clean run).
    pub last_fault: Option<SrmError>,
    /// Per-parameter move statistics for the kernel-sampled (ζ)
    /// parameters, accumulated over every attempted sweep.
    pub accept: Vec<crate::metropolis::ParamAcceptance>,
}

/// A chain that could not complete: the fatal fault and the retries
/// consumed before giving up.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainFailure {
    /// The fault that exhausted the retry budget (or was fatal).
    pub fault: SrmError,
    /// Retries consumed before the chain was declared lost.
    pub retries: usize,
}

/// The per-chain health record of a fault-tolerant run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// The chain (stream index) this report describes.
    pub chain: usize,
    /// The most recent fault observed on this chain (`None` if the
    /// chain ran clean).
    pub fault: Option<SrmError>,
    /// Retries consumed by this chain.
    pub retries: usize,
    /// Whether the chain contributed draws to the output.
    pub recovered: bool,
    /// Per-parameter acceptance statistics (empty for lost chains).
    pub accept: Vec<crate::metropolis::ParamAcceptance>,
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.recovered { "ok" } else { "lost" };
        write!(
            f,
            "chain {}: {status}, {} retries",
            self.chain, self.retries
        )?;
        if let Some(fault) = &self.fault {
            write!(f, ", last fault: {fault}")?;
        }
        Ok(())
    }
}

/// Renders a `catch_unwind` payload as a one-line message.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_one_line() {
        let errors = [
            SrmError::NonFiniteLikelihood {
                parameter: "lambda0",
                value: f64::NAN,
                sweep: 7,
            },
            SrmError::SliceExhausted {
                parameter: "alpha0",
                sweep: 3,
            },
            SrmError::DegeneratePosterior {
                detail: "negative shape".into(),
                sweep: 0,
            },
            SrmError::ChainPanicked {
                chain: 2,
                message: "boom".into(),
            },
            SrmError::InvalidConfig {
                detail: "chains must be positive".into(),
            },
            SrmError::MissingParameter {
                parameter: "mu".into(),
                chain: 1,
            },
        ];
        for e in errors {
            let line = e.to_string();
            assert!(!line.contains('\n'), "{line:?}");
            assert!(!e.kind().is_empty());
        }
    }

    #[test]
    fn plan_from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(42, 4, 1_000, 6);
        let b = FaultPlan::from_seed(42, 4, 1_000, 6);
        assert_eq!(a, b);
        assert_eq!(a.points().len(), 6);
        assert!(a.points().iter().all(|p| p.chain < 4 && p.sweep < 1_000));
        let c = FaultPlan::from_seed(43, 4, 1_000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn plan_from_seed_cycles_fault_kinds() {
        let plan = FaultPlan::from_seed(1, 2, 100, 3);
        let kinds: Vec<FaultKind> = plan.points().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Panic,
                FaultKind::NanRate,
                FaultKind::SliceExhausted
            ]
        );
    }

    #[test]
    fn degenerate_plan_dimensions_inject_nothing() {
        assert!(FaultPlan::from_seed(1, 0, 100, 5).is_empty());
        assert!(FaultPlan::from_seed(1, 4, 0, 5).is_empty());
    }

    #[test]
    fn injector_fires_once_per_point() {
        let plan = FaultPlan::new(vec![
            FaultPoint {
                chain: 0,
                sweep: 5,
                kind: FaultKind::NanRate,
            },
            FaultPoint {
                chain: 1,
                sweep: 9,
                kind: FaultKind::Panic,
            },
        ]);
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.take(4), None);
        assert_eq!(inj.take(5), Some(FaultKind::NanRate));
        assert_eq!(inj.take(5), None, "consume-once");
        assert!(inj.is_empty());
        let mut other = plan.injector_for(1);
        assert_eq!(other.take(9), Some(FaultKind::Panic));
        assert!(plan.injector_for(2).is_empty());
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("static str"));
        let err = caught.expect_err("panicked");
        assert_eq!(panic_message(err.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("{}", String::from("formatted")));
        let err = caught.expect_err("panicked");
        assert_eq!(panic_message(err.as_ref()), "formatted");
    }
}
