//! The Gibbs samplers of Eqs. (14)–(22).
//!
//! Each sweep updates, in order:
//!
//! 1. `N` — exact: the residual `R = N − s_k` is `Poisson(λ0 Π q_i)`
//!    (Prop. 1) or `NB(α0 + s_k, 1 − (1−β0) Π q_i)` (corrected
//!    Prop. 2);
//! 2. the prior hyper-parameters — `λ0 | N ~ Gamma(N+1, 1)` truncated
//!    to `(0, λ_max)`; `β0 | N, α0 ~ Beta(α0+1, N+1)`;
//!    `α0 | N, β0` by slice sampling on `(0, α_max)`;
//! 3. the detection parameters `ζ` — coordinate-wise slice sampling
//!    of `Σ x_i ln p_i + Σ (N − s_i) ln q_i` on their uniform-prior
//!    boxes.
//!
//! All conditional densities follow directly from the joint
//! `P(N) · P(x | N, p(ζ)) · priors`, so the sweep targets the exact
//! posterior of the paper's hierarchical model.

use crate::chain::Chain;
use crate::fault::{ChainFailure, FaultInjector, FaultKind, RecoveryLog, RetryPolicy, SrmError};
use crate::metropolis::{AdaptiveRw, ParamAcceptance};
use crate::slice::{try_slice_sample, SliceConfig, SliceError};
use srm_data::BugCountData;
use srm_math::special::ln_gamma;
use srm_model::detection::OPEN_EPS;
use srm_obs::{profile, Event, Recorder, NOOP};
use std::cell::RefCell;
use std::time::Instant;

/// Tiny positive shift keeping exact conditionals strictly inside
/// their open supports after floating-point round-off.
const OPEN_SHIFT: f64 = 1e-12;

/// Converts the sampler's live acceptance tally into the owned form
/// carried by `chain-done` and `diagnostic-checkpoint` events.
fn accept_stats(tally: &[ParamAcceptance]) -> Vec<srm_obs::AcceptStat> {
    tally
        .iter()
        .map(|t| srm_obs::AcceptStat {
            parameter: t.parameter.to_string(),
            steps: t.steps,
            accepted: t.accepted,
        })
        .collect()
}
use srm_model::{DetectionModel, GroupedLikelihood, ZetaBounds};
use srm_rand::{Beta, Distribution, NegativeBinomial, Poisson, Rng, TruncatedGamma};

/// Which prior (and hyper-prior upper limit) the sampler runs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriorSpec {
    /// `N ~ Poisson(λ0)`, `λ0 ~ Uniform(0, λ_max)` (Eqs. (14)–(17)).
    Poisson {
        /// Upper limit of the uniform hyper-prior on `λ0`.
        lambda_max: f64,
    },
    /// `N ~ NB(α0, β0)`, `α0 ~ Uniform(0, α_max)`,
    /// `β0 ~ Uniform(0, 1)` (Eqs. (18)–(22)).
    NegBinomial {
        /// Upper limit of the uniform hyper-prior on `α0`.
        alpha_max: f64,
    },
}

impl PriorSpec {
    /// Short label used in table headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Poisson { .. } => "poisson",
            Self::NegBinomial { .. } => "negbinom",
        }
    }
}

/// One kept sweep, handed to observers (WAIC accumulators, tracers).
#[derive(Debug, Clone, Copy)]
pub struct SweepRecord<'a> {
    /// Current initial bug content `N`.
    pub n: u64,
    /// Current residual `R = N − s_k`.
    pub residual: u64,
    /// Current detection parameters `ζ`.
    pub zeta: &'a [f64],
    /// Current `λ0` (NaN under the NB prior).
    pub lambda0: f64,
    /// Current `α0` (NaN under the Poisson prior).
    pub alpha0: f64,
    /// Current `β0` (NaN under the Poisson prior).
    pub beta0: f64,
    /// The detection schedule `p_1..p_k` at the current `ζ`.
    pub probs: &'a [f64],
}

/// Which non-informative hyper-prior to place on the prior's
/// hyper-parameters.
///
/// The paper uses uniform hyper-priors throughout and names the
/// Jeffreys prior as future work (§6); both are implemented here.
/// For the Poisson-prior rate, Jeffreys is `p(λ0) ∝ λ0^{−1/2}`
/// (truncated to the same `(0, λ_max)` support so the two variants
/// stay comparable). For the NB prior we use the Jeffreys prior of a
/// proportion, `β0 ~ Beta(1/2, 1/2)` (arcsine), keeping `α0` uniform —
/// the joint Jeffreys prior of the NB size has no closed form and is
/// dominated by the `β0` factor in this model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HyperPrior {
    /// Flat hyper-priors on their supports (the paper's Eqs. (15),
    /// (19)–(20)).
    #[default]
    Uniform,
    /// Jeffreys-style non-informative hyper-priors (paper §6).
    Jeffreys,
}

impl HyperPrior {
    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::Jeffreys => "jeffreys",
        }
    }
}

/// Which transition kernel updates the detection parameters `ζ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZetaKernel {
    /// Stepping-out slice sampling (default; tuning-free, exact).
    #[default]
    Slice,
    /// Adaptive random-walk Metropolis (cheaper per iteration;
    /// adaptation runs during burn-in and freezes afterwards).
    AdaptiveRw,
}

/// Which Gibbs sweep to run.
///
/// The collapsed sweep integrates `N` out of every hyper-parameter
/// and `ζ` update analytically (the thinned model's marginal is a
/// product of independent Poissons given `λ0`, and a closed-form
/// negative-multinomial given `(α0, β0)`), which removes the strong
/// `λ0 ↔ N` posterior coupling and mixes dramatically better. The
/// naive sweep conditions every update on the current `N` — the
/// textbook scheme of Eqs. (14)–(22) — and is kept as an ablation
/// target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepKind {
    /// Marginalise `N` in the hyper-parameter and `ζ` updates
    /// (default).
    #[default]
    Collapsed,
    /// Condition every update on the current `N`.
    Naive,
}

/// Parameters pinned to fixed values for the whole run.
///
/// A pinned parameter is initialised to its fixed value and its Gibbs
/// update is skipped, so the chain samples the conditional posterior
/// *given* those values. This is the lever the conjugate golden tests
/// use: with `ζ` and the prior hyper-parameters pinned, the `N`-step
/// draws i.i.d. from the closed-form posteriors of Props. 1–2.
///
/// Pinning changes how much randomness each sweep consumes, so a
/// pinned run is *not* bit-comparable to an unpinned one (it is still
/// deterministic given the seed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixedParams {
    /// Pin the detection parameters `ζ` (length must match the model).
    pub zeta: Option<Vec<f64>>,
    /// Pin `λ0` (used under the Poisson prior).
    pub lambda0: Option<f64>,
    /// Pin `α0` (used under the NB prior).
    pub alpha0: Option<f64>,
    /// Pin `β0` (used under the NB prior).
    pub beta0: Option<f64>,
}

impl FixedParams {
    /// Whether nothing is pinned (the default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zeta.is_none()
            && self.lambda0.is_none()
            && self.alpha0.is_none()
            && self.beta0.is_none()
    }
}

/// One-entry memo of [`GibbsSampler::collapsed_stats`] keyed on the
/// exact bit pattern of `ζ`.
///
/// Within a sweep the same `ζ` vector is evaluated repeatedly — the
/// hyper-parameter step, the first evaluation of each coordinate's
/// slice target, and the final `N`-step all visit the current point —
/// so a single-entry cache removes the duplicate passes over the
/// schedule without any invalidation protocol: a stored entry is a
/// pure function of its key, so stale entries are merely unused, never
/// wrong (retry/restore included).
#[derive(Debug, Clone, Default)]
struct SuffStatsCache {
    zeta_bits: Vec<u64>,
    sum_x_ln_w: f64,
    ln_q: f64,
    valid: bool,
}

impl SuffStatsCache {
    fn lookup(&self, zeta: &[f64]) -> Option<(f64, f64)> {
        (self.valid
            && self.zeta_bits.len() == zeta.len()
            && zeta
                .iter()
                .zip(&self.zeta_bits)
                .all(|(z, &bits)| z.to_bits() == bits))
        .then_some((self.sum_x_ln_w, self.ln_q))
    }

    fn store(&mut self, zeta: &[f64], (sum_x_ln_w, ln_q): (f64, f64)) {
        self.zeta_bits.clear();
        self.zeta_bits.extend(zeta.iter().map(|z| z.to_bits()));
        self.sum_x_ln_w = sum_x_ln_w;
        self.ln_q = ln_q;
        self.valid = true;
    }
}

/// The Gibbs sampler for one (prior, detection-model, dataset)
/// combination.
///
/// See the crate-level example for typical use through
/// [`crate::runner::run_chains`].
#[derive(Debug, Clone)]
pub struct GibbsSampler {
    prior: PriorSpec,
    model: DetectionModel,
    bounds: ZetaBounds,
    lik: GroupedLikelihood,
    cumulative: Vec<u64>,
    /// Daily counts as exact `f64`s (values < 2^53), precomputed so
    /// the sweep's hot loops skip the integer conversions.
    counts_f: Vec<f64>,
    total: u64,
    horizon: usize,
    slice_config: SliceConfig,
    sweep_kind: SweepKind,
    hyper_prior: HyperPrior,
    zeta_kernel: ZetaKernel,
    cache_stats: bool,
    fixed: FixedParams,
}

impl GibbsSampler {
    /// Creates a sampler for the given configuration and data window.
    #[must_use]
    pub fn new(
        prior: PriorSpec,
        model: DetectionModel,
        bounds: ZetaBounds,
        data: &BugCountData,
    ) -> Self {
        Self {
            prior,
            model,
            bounds,
            lik: GroupedLikelihood::new(data),
            cumulative: data.cumulative().to_vec(),
            counts_f: data.counts().iter().map(|&c| c as f64).collect(),
            total: data.total(),
            horizon: data.len(),
            slice_config: SliceConfig::default(),
            sweep_kind: SweepKind::default(),
            hyper_prior: HyperPrior::default(),
            zeta_kernel: ZetaKernel::default(),
            cache_stats: true,
            fixed: FixedParams::default(),
        }
    }

    /// Selects the `ζ` transition kernel (slice by default).
    #[must_use]
    pub fn with_zeta_kernel(mut self, kernel: ZetaKernel) -> Self {
        self.zeta_kernel = kernel;
        self
    }

    /// The configured `ζ` kernel.
    #[must_use]
    pub fn zeta_kernel(&self) -> ZetaKernel {
        self.zeta_kernel
    }

    /// Selects the sweep variant (collapsed by default).
    #[must_use]
    pub fn with_sweep_kind(mut self, kind: SweepKind) -> Self {
        self.sweep_kind = kind;
        self
    }

    /// The configured sweep variant.
    #[must_use]
    pub fn sweep_kind(&self) -> SweepKind {
        self.sweep_kind
    }

    /// Selects the non-informative hyper-prior (uniform by default).
    #[must_use]
    pub fn with_hyper_prior(mut self, hyper: HyperPrior) -> Self {
        self.hyper_prior = hyper;
        self
    }

    /// The configured hyper-prior.
    #[must_use]
    pub fn hyper_prior(&self) -> HyperPrior {
        self.hyper_prior
    }

    /// Enables or disables the per-sweep sufficient-statistics cache
    /// (enabled by default). `false` selects the uncached reference
    /// sweep that recomputes every statistic from scratch; the two
    /// paths are bit-identical (asserted in tests), so the switch
    /// exists purely as a correctness oracle and ablation target.
    #[must_use]
    pub fn with_cached_stats(mut self, on: bool) -> Self {
        self.cache_stats = on;
        self
    }

    /// Whether the sufficient-statistics cache is enabled.
    #[must_use]
    pub fn cached_stats(&self) -> bool {
        self.cache_stats
    }

    /// Pins parameters to fixed values; their Gibbs updates are
    /// skipped (see [`FixedParams`]).
    #[must_use]
    pub fn with_fixed(mut self, fixed: FixedParams) -> Self {
        self.fixed = fixed;
        self
    }

    /// The pinned parameters (empty by default).
    #[must_use]
    pub fn fixed_params(&self) -> &FixedParams {
        &self.fixed
    }

    /// Per-coordinate `(lo, hi)` bounds of `ζ` under this model and
    /// bounds box.
    #[must_use]
    pub fn zeta_bounds(&self) -> Vec<(f64, f64)> {
        self.model.bounds(&self.bounds)
    }

    /// The extra Gamma-shape mass contributed by the λ0 hyper-prior:
    /// uniform adds 0, Jeffreys (`∝ λ^{−1/2}`) subtracts one half.
    fn lambda_shape_shift(&self) -> f64 {
        match self.hyper_prior {
            HyperPrior::Uniform => 0.0,
            HyperPrior::Jeffreys => -0.5,
        }
    }

    /// Log hyper-prior density of `β0` up to a constant.
    fn ln_beta0_hyper_prior(&self, beta0: f64) -> f64 {
        match self.hyper_prior {
            HyperPrior::Uniform => 0.0,
            // Arcsine / Beta(1/2, 1/2).
            HyperPrior::Jeffreys => -0.5 * beta0.ln() - 0.5 * (1.0 - beta0).ln(),
        }
    }

    /// The prior specification.
    #[must_use]
    pub fn prior(&self) -> PriorSpec {
        self.prior
    }

    /// The detection model.
    #[must_use]
    pub fn model(&self) -> DetectionModel {
        self.model
    }

    /// The likelihood evaluator (shared with WAIC computation).
    #[must_use]
    pub fn likelihood(&self) -> &GroupedLikelihood {
        &self.lik
    }

    /// Total observed bugs `s_k`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Chain column names: `residual`, `n`, the hyper-parameters of
    /// the chosen prior, then the `ζ` components.
    #[must_use]
    pub fn param_names(&self) -> Vec<&'static str> {
        let mut names = vec!["residual", "n"];
        match self.prior {
            PriorSpec::Poisson { .. } => names.push("lambda0"),
            PriorSpec::NegBinomial { .. } => {
                names.push("alpha0");
                names.push("beta0");
            }
        }
        names.extend_from_slice(self.model.param_names());
        names
    }

    /// The detection-data part of the log posterior as a function of
    /// `ζ` for fixed `N` (the slice-sampling target).
    fn zeta_log_target(&self, zeta: &[f64], n: u64) -> f64 {
        let mut ll = 0.0;
        for (i, (&count_f, &cum)) in self.counts_f.iter().zip(&self.cumulative).enumerate() {
            let p = self.model.prob_unchecked(zeta, (i + 1) as u64);
            let q = 1.0 - p;
            ll += count_f * p.ln() + (n - cum) as f64 * q.ln();
        }
        ll
    }

    fn ln_survival(&self, zeta: &[f64]) -> f64 {
        (1..=self.horizon as u64)
            .map(|i| (1.0 - self.model.prob_unchecked(zeta, i)).ln())
            .sum()
    }

    /// One pass over the schedule yielding `(Σ x_i ln w_i, ln Π q_i)`
    /// with `w_i = p_i Π_{j<i} q_j` — the sufficient statistics of
    /// the collapsed (N-marginalised) likelihood.
    fn collapsed_stats(&self, zeta: &[f64]) -> (f64, f64) {
        let mut cum_ln_q = 0.0;
        let mut sum_x_ln_w = 0.0;
        for (i, &count_f) in self.counts_f.iter().enumerate() {
            let p = self.model.prob_unchecked(zeta, (i + 1) as u64);
            if count_f > 0.0 {
                sum_x_ln_w += count_f * (p.ln() + cum_ln_q);
            }
            cum_ln_q += (1.0 - p).ln();
        }
        (sum_x_ln_w, cum_ln_q)
    }

    /// [`GibbsSampler::collapsed_stats`] through the one-entry memo.
    ///
    /// Bit-identical to the direct call: a hit returns values the
    /// direct call produced earlier for the *same* `ζ` bit pattern,
    /// and `collapsed_stats` is deterministic. The second component
    /// equals [`GibbsSampler::ln_survival`] bit-for-bit (same
    /// sequential accumulation over the same days; asserted in tests),
    /// which is what lets the `N`-step share the memo.
    fn stats_cached(&self, zeta: &[f64], cache: &RefCell<SuffStatsCache>) -> (f64, f64) {
        let _span = profile::span("suffstats");
        if !self.cache_stats {
            return self.collapsed_stats(zeta);
        }
        if let Some(hit) = cache.borrow().lookup(zeta) {
            return hit;
        }
        let stats = self.collapsed_stats(zeta);
        cache.borrow_mut().store(zeta, stats);
        stats
    }

    /// Collapsed log marginal of the data as a function of the NB
    /// hyper-parameters (ζ fixed): the negative-multinomial kernel
    /// `ln Γ(α0+s_k) − ln Γ(α0) + α0 ln β0 + s_k ln(1−β0)
    ///  − (α0+s_k) ln(1 − (1−β0) Q)`.
    fn nb_collapsed_kernel(&self, alpha0: f64, beta0: f64, survival: f64) -> f64 {
        let s_k = self.total as f64;
        let beta_k = (1.0 - (1.0 - beta0) * survival).max(OPEN_SHIFT);
        ln_gamma(alpha0 + s_k) - ln_gamma(alpha0) + alpha0 * beta0.ln() + s_k * (1.0 - beta0).ln()
            - (alpha0 + s_k) * beta_k.ln()
    }

    /// Builds the deterministic pre-sweep state: ζ at the bound
    /// midpoints (or its pinned value), hyper-parameters at their
    /// data-informed initials (or their pinned values), `N` at `s_k`.
    fn build_initial_state(&self) -> Result<(Vec<(f64, f64)>, SweepState), SrmError> {
        let zeta_bounds = self.model.bounds(&self.bounds);
        let mut rw_kernels = Vec::with_capacity(zeta_bounds.len());
        for &(lo, hi) in &zeta_bounds {
            rw_kernels.push(AdaptiveRw::try_new(0.0, lo, hi)?);
        }
        let (lambda0, alpha0, beta0) = match self.prior {
            PriorSpec::Poisson { lambda_max } => {
                let init = (2.0 * self.total as f64 + 10.0).min(0.9 * lambda_max);
                (init.max(OPEN_SHIFT), f64::NAN, f64::NAN)
            }
            PriorSpec::NegBinomial { alpha_max } => (f64::NAN, 0.5 * alpha_max, 0.5),
        };
        let zeta = match &self.fixed.zeta {
            Some(z) => {
                if z.len() != zeta_bounds.len() {
                    return Err(SrmError::InvalidConfig {
                        detail: format!(
                            "fixed zeta has {} components, model needs {}",
                            z.len(),
                            zeta_bounds.len()
                        ),
                    });
                }
                if z.iter().any(|v| !v.is_finite()) {
                    return Err(SrmError::InvalidConfig {
                        detail: "fixed zeta must be finite".into(),
                    });
                }
                z.clone()
            }
            None => zeta_bounds
                .iter()
                .map(|&(lo, hi)| 0.5 * (lo + hi))
                .collect(),
        };
        let state = SweepState {
            zeta,
            lambda0: self.fixed.lambda0.unwrap_or(lambda0),
            alpha0: self.fixed.alpha0.unwrap_or(alpha0),
            beta0: self.fixed.beta0.unwrap_or(beta0),
            // The N the naive sweep conditions on (initialised at s_k).
            last_n: self.total,
            rw_kernels,
        };
        Ok((zeta_bounds, state))
    }

    /// A fresh [`GibbsState`] for single-sweep driving (Geweke-style
    /// joint-distribution tests and custom schedulers). The state is
    /// only meaningful with the sampler that created it — the embedded
    /// statistics memo is keyed on ζ alone, so reusing a state across
    /// samplers with different data would read stale statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SrmError::InvalidConfig`] when pinned parameters are
    /// inconsistent with the model (see [`FixedParams`]).
    pub fn init_state(&self) -> Result<GibbsState, SrmError> {
        let (zeta_bounds, state) = self.build_initial_state()?;
        Ok(GibbsState {
            state,
            zeta_bounds,
            cache: RefCell::new(SuffStatsCache::default()),
        })
    }

    /// Advances `state` by exactly one Gibbs sweep (hyper-parameters,
    /// ζ, then the exact `N`-step), returning the new residual draw.
    /// Equivalent to one iteration of the chain loop with no burn-in
    /// bookkeeping, no fault injection and no instrumentation.
    ///
    /// # Errors
    ///
    /// Returns the fault when a conditional degenerates or a slice
    /// bracket is exhausted, exactly as the chain loop would.
    pub fn sweep_state<R: Rng + ?Sized>(
        &self,
        state: &mut GibbsState,
        rng: &mut R,
    ) -> Result<u64, SrmError> {
        self.try_sweep(
            &mut state.state,
            &state.zeta_bounds,
            rng,
            0,
            None,
            &state.cache,
        )
    }

    /// Runs one chain, returning the kept draws. `observer` is called
    /// once per kept draw (after thinning) with the full sweep state.
    ///
    /// Thin wrapper over [`GibbsSampler::try_run_chain`] with no retry
    /// and no fault injection: any sampler fault aborts the process.
    /// Bit-identical to the fault-tolerant path on fault-free runs.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`, `thin == 0`, or a sweep faults.
    pub fn run_chain<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        burn_in: usize,
        samples: usize,
        thin: usize,
        observer: &mut dyn FnMut(&SweepRecord<'_>),
    ) -> Chain {
        assert!(samples > 0, "samples must be positive");
        assert!(thin > 0, "thin must be positive");
        match self.try_run_chain(
            rng,
            burn_in,
            samples,
            thin,
            &RetryPolicy::none(),
            &mut FaultInjector::empty(),
            observer,
        ) {
            Ok((chain, _)) => chain,
            Err(failure) => panic!("{}", failure.fault),
        }
    }

    /// Runs one chain with bounded retry and optional fault injection,
    /// returning the kept draws plus a [`RecoveryLog`].
    ///
    /// A faulted sweep is retried up to `retry.max_retries` times
    /// (per chain): the sampler state is restored to its value at the
    /// start of the failed sweep, but the RNG is **not** rewound, so
    /// the retry consumes fresh draws from the chain's deterministic
    /// stream. With no faults this path consumes the RNG identically
    /// to [`GibbsSampler::run_chain`], so fault-free output is
    /// bit-identical.
    ///
    /// `injector` fires scheduled faults at the start of their sweep
    /// (consume-once, so a retried sweep runs clean).
    /// [`FaultKind::Panic`] deliberately panics the calling thread to
    /// exercise the runner's containment.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainFailure`] when the configuration is invalid or
    /// a sweep still faults after the retry budget is spent.
    #[allow(clippy::too_many_arguments)] // mirrors run_chain + the three fault knobs
    pub fn try_run_chain<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        burn_in: usize,
        samples: usize,
        thin: usize,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        observer: &mut dyn FnMut(&SweepRecord<'_>),
    ) -> Result<(Chain, RecoveryLog), ChainFailure> {
        self.try_run_chain_traced(
            rng, burn_in, samples, thin, retry, injector, observer, 0, &NOOP, 0,
        )
    }

    /// [`GibbsSampler::try_run_chain`] with instrumentation: typed
    /// events are emitted to `recorder` (tagged with `chain_id`) for
    /// sweep progress, fault injections, faults, retries, Metropolis
    /// decisions and chain completion.
    ///
    /// The recorder never touches `rng`, so for any recorder the
    /// draws are bit-identical to the untraced call; with a disabled
    /// recorder (`enabled() == false`) no event is even constructed
    /// and the only cost is one branch per sweep.
    ///
    /// `checkpoint_every > 0` additionally maintains streaming
    /// convergence accumulators over the kept draws and emits a
    /// [`Event::DiagnosticCheckpoint`] every that many sweeps (plus a
    /// final one at chain completion). The accumulators read only rows
    /// the chain already kept and never touch `rng`, so checkpointed
    /// runs remain bit-identical too.
    ///
    /// # Errors
    ///
    /// Exactly as [`GibbsSampler::try_run_chain`].
    #[allow(clippy::too_many_arguments)] // the traced superset of try_run_chain
    pub fn try_run_chain_traced<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        burn_in: usize,
        samples: usize,
        thin: usize,
        retry: &RetryPolicy,
        injector: &mut FaultInjector,
        observer: &mut dyn FnMut(&SweepRecord<'_>),
        chain_id: usize,
        recorder: &dyn Recorder,
        checkpoint_every: usize,
    ) -> Result<(Chain, RecoveryLog), ChainFailure> {
        let invalid = |detail: String| ChainFailure {
            fault: SrmError::InvalidConfig { detail },
            retries: 0,
        };
        if samples == 0 {
            return Err(invalid("samples must be positive".into()));
        }
        if thin == 0 {
            return Err(invalid("thin must be positive".into()));
        }

        // --- Initial state -------------------------------------------------
        let (zeta_bounds, mut state) = self
            .build_initial_state()
            .map_err(|fault| ChainFailure { fault, retries: 0 })?;
        let cache = RefCell::new(SuffStatsCache::default());

        let names = self.param_names();
        let mut chain = Chain::new(&names);
        chain.reserve(samples);
        let mut streaming = (checkpoint_every > 0 && recorder.enabled())
            .then(|| crate::streaming::ChainAccumulator::new(&names, samples));
        let mut last_checkpoint: Option<usize> = None;

        let total_sweeps = burn_in + samples * thin;
        let mut kept = 0usize;
        let mut log = RecoveryLog::default();

        // Instrumentation: `on` is hoisted so the disabled path costs
        // one branch per sweep, and nothing below ever touches `rng`.
        let on = recorder.enabled();
        let stride = if on {
            recorder.sweep_stride().max(1)
        } else {
            usize::MAX
        };
        let zeta_names = self.model.param_names();
        let mut tally: Vec<ParamAcceptance> = zeta_names
            .iter()
            .map(|&name| ParamAcceptance {
                parameter: name,
                steps: 0,
                accepted: 0,
            })
            .collect();
        let mut prev_zeta = vec![0.0f64; state.zeta.len()];
        if on {
            recorder.record(&Event::ChainStart {
                chain: chain_id,
                sweeps: total_sweeps,
            });
        }

        // Wall clock for checkpoint `ess_per_sec` telemetry; read at
        // checkpoint emission only, never by the sampler itself.
        let chain_clock = Instant::now();
        let mut sweep = 0usize;
        while sweep < total_sweeps {
            if sweep == burn_in {
                for kernel in &mut state.rw_kernels {
                    kernel.freeze();
                }
            }
            let trace_sweep = on && sweep.is_multiple_of(stride);
            if trace_sweep {
                recorder.record(&Event::SweepStart {
                    chain: chain_id,
                    sweep,
                    total: total_sweeps,
                });
            }
            // Consume-once injection: a retried sweep runs clean.
            let forced = injector.take(sweep);
            if let Some(kind) = forced {
                if on {
                    recorder.record(&Event::FaultInjected {
                        chain: chain_id,
                        sweep,
                        kind: kind.label().to_string(),
                    });
                }
            }
            if matches!(forced, Some(FaultKind::Panic)) {
                panic!("injected fault: chain panic at sweep {sweep}");
            }
            // Snapshot only when retry could use it; the fault-free
            // wrapper path pays nothing.
            let snapshot = (retry.max_retries > 0).then(|| state.clone());
            let will_record =
                sweep >= burn_in && (sweep - burn_in).is_multiple_of(thin) && kept < samples;
            prev_zeta.copy_from_slice(&state.zeta);

            let outcome = {
                let _sweep_span = profile::span("sweep");
                self.try_sweep(&mut state, &zeta_bounds, rng, sweep, forced, &cache)
            }
            .and_then(|residual| {
                if will_record {
                    let probs = self.model.probs(&state.zeta, self.horizon).map_err(|e| {
                        SrmError::DegeneratePosterior {
                            detail: format!("detection schedule at kept draw: {e:?}"),
                            sweep,
                        }
                    })?;
                    Ok((residual, Some(probs)))
                } else {
                    Ok((residual, None))
                }
            });

            match outcome {
                Ok((residual, probs)) => {
                    let n = self.total + residual;
                    if let Some(probs) = probs {
                        let mut row: Vec<f64> = vec![residual as f64, n as f64];
                        match self.prior {
                            PriorSpec::Poisson { .. } => row.push(state.lambda0),
                            PriorSpec::NegBinomial { .. } => {
                                row.push(state.alpha0);
                                row.push(state.beta0);
                            }
                        }
                        row.extend_from_slice(&state.zeta);
                        chain.push(&row);
                        kept += 1;
                        if let Some(acc) = streaming.as_mut() {
                            acc.push_row(&row);
                        }
                        observer(&SweepRecord {
                            n,
                            residual,
                            zeta: &state.zeta,
                            lambda0: state.lambda0,
                            alpha0: state.alpha0,
                            beta0: state.beta0,
                            probs: &probs,
                        });
                    }
                    // The ζ parameters update exactly once per sweep,
                    // so before/after comparison is the kernel's
                    // accept/reject decision (for slice sampling, its
                    // shrink-to-start give-up).
                    for (j, t) in tally.iter_mut().enumerate() {
                        let moved = state.zeta[j].to_bits() != prev_zeta[j].to_bits();
                        t.steps += 1;
                        t.accepted += u64::from(moved);
                        if trace_sweep && matches!(self.zeta_kernel, ZetaKernel::AdaptiveRw) {
                            recorder.record(&Event::Metropolis {
                                chain: chain_id,
                                sweep,
                                parameter: t.parameter,
                                accepted: moved,
                            });
                        }
                    }
                    if let Some(acc) = streaming.as_ref() {
                        if kept > 0 && (sweep + 1).is_multiple_of(checkpoint_every) {
                            recorder.record(&Event::DiagnosticCheckpoint {
                                checkpoint: acc.checkpoint(
                                    chain_id,
                                    sweep,
                                    kept,
                                    chain_clock.elapsed().as_secs_f64() * 1e3,
                                    accept_stats(&tally),
                                ),
                            });
                            last_checkpoint = Some(sweep);
                        }
                    }
                    if trace_sweep {
                        recorder.record(&Event::SweepEnd {
                            chain: chain_id,
                            sweep,
                            total: total_sweeps,
                            kept,
                        });
                    }
                    sweep += 1;
                }
                Err(fault) => {
                    if on {
                        recorder.record(&Event::SweepFault {
                            chain: chain_id,
                            sweep,
                            kind: fault.kind().to_string(),
                            detail: fault.to_string(),
                        });
                    }
                    if log.retries < retry.max_retries {
                        log.retries += 1;
                        log.last_fault = Some(fault);
                        if let Some(snap) = snapshot {
                            state = snap;
                        }
                        if on {
                            recorder.record(&Event::Retry {
                                chain: chain_id,
                                sweep,
                                retries: log.retries as u64,
                            });
                        }
                        // Re-run the same sweep on fresh draws.
                    } else {
                        return Err(ChainFailure {
                            fault,
                            retries: log.retries,
                        });
                    }
                }
            }
        }
        // A final checkpoint at chain completion (unless the cadence
        // already landed one on the last sweep), so consumers always
        // see the full-chain summary.
        if let Some(acc) = streaming.as_ref() {
            if last_checkpoint != Some(total_sweeps - 1) && kept > 0 {
                recorder.record(&Event::DiagnosticCheckpoint {
                    checkpoint: acc.checkpoint(
                        chain_id,
                        total_sweeps - 1,
                        kept,
                        chain_clock.elapsed().as_secs_f64() * 1e3,
                        accept_stats(&tally),
                    ),
                });
            }
        }
        log.accept = tally;
        if on {
            recorder.record(&Event::ChainDone {
                chain: chain_id,
                retries: log.retries as u64,
                accept: log
                    .accept
                    .iter()
                    .map(|t| srm_obs::AcceptStat {
                        parameter: t.parameter.to_string(),
                        steps: t.steps,
                        accepted: t.accepted,
                    })
                    .collect(),
            });
        }
        Ok((chain, log))
    }

    /// One full Gibbs sweep (hyper-parameters, ζ, then the exact
    /// N-step) over `state`, returning the new residual draw.
    fn try_sweep<R: Rng + ?Sized>(
        &self,
        state: &mut SweepState,
        zeta_bounds: &[(f64, f64)],
        rng: &mut R,
        sweep: usize,
        forced: Option<FaultKind>,
        cache: &RefCell<SuffStatsCache>,
    ) -> Result<u64, SrmError> {
        // A forced exhaustion fires before any RNG use, so a retried
        // sweep replays exactly what the unfaulted sweep would have.
        if matches!(forced, Some(FaultKind::SliceExhausted)) {
            return Err(SrmError::SliceExhausted {
                parameter: "injected",
                sweep,
            });
        }
        let zeta_names = self.model.param_names();
        match self.sweep_kind {
            SweepKind::Collapsed => {
                // --- 1. Hyper-parameters | ζ (N marginalised out) -----
                let (_, ln_q) = self.stats_cached(&state.zeta, cache);
                let survival = ln_q.exp();
                match self.prior {
                    PriorSpec::Poisson { lambda_max } => {
                        // Marginally x_i ~ Poisson(λ0 w_i), so
                        // λ0 | x, ζ ~ Gamma(s_k+1+shift, 1/Σw_i)
                        // on (0, λ_max); Σ w_i = 1 − Π q_i. The
                        // Jeffreys hyper-prior shifts the shape
                        // by −1/2.
                        if self.fixed.lambda0.is_none() {
                            let w_sum = (1.0 - survival).max(OPEN_SHIFT);
                            let shape =
                                (self.total as f64 + 1.0 + self.lambda_shape_shift()).max(0.5);
                            state.lambda0 = TruncatedGamma::new(shape, 1.0 / w_sum, lambda_max)
                                .map_err(|e| degenerate("lambda0 conditional", &e, sweep))?
                                .sample(rng);
                        }
                    }
                    PriorSpec::NegBinomial { alpha_max } => {
                        // β0 | α0, ζ, x via the collapsed kernel.
                        if self.fixed.beta0.is_none() {
                            let a0 = state.alpha0;
                            let ln_f_beta = |b: f64| {
                                self.nb_collapsed_kernel(a0, b, survival)
                                    + self.ln_beta0_hyper_prior(b)
                            };
                            state.beta0 = try_slice_sample(
                                ln_f_beta,
                                state.beta0.clamp(OPEN_EPS, 1.0 - OPEN_EPS),
                                OPEN_EPS,
                                1.0 - OPEN_EPS,
                                &self.slice_config,
                                rng,
                            )
                            .map_err(|e| slice_fault(e, "beta0", sweep))?;
                        }
                        // α0 | β0, ζ, x via the same kernel.
                        if self.fixed.alpha0.is_none() {
                            let b0 = state.beta0;
                            let ln_f_alpha = |a: f64| self.nb_collapsed_kernel(a, b0, survival);
                            state.alpha0 = try_slice_sample(
                                ln_f_alpha,
                                state.alpha0.clamp(OPEN_EPS, alpha_max - OPEN_EPS),
                                OPEN_EPS,
                                alpha_max,
                                &self.slice_config,
                                rng,
                            )
                            .map_err(|e| slice_fault(e, "alpha0", sweep))?;
                        }
                    }
                }

                // --- 2. ζ | hyper-parameters (N marginalised) ----------
                let (lambda0, alpha0, beta0) = (state.lambda0, state.alpha0, state.beta0);
                let zeta_len = if self.fixed.zeta.is_some() {
                    0
                } else {
                    state.zeta.len()
                };
                for j in 0..zeta_len {
                    let (lo, hi) = zeta_bounds[j];
                    let current = state.zeta[j].clamp(lo, hi);
                    let snapshot = state.zeta.clone();
                    let ln_f = |v: f64| {
                        let _span = profile::span("likelihood");
                        let mut z = snapshot.clone();
                        z[j] = v;
                        let (sum_x_ln_w, ln_qz) = self.stats_cached(&z, cache);
                        match self.prior {
                            PriorSpec::Poisson { .. } => sum_x_ln_w - lambda0 * (1.0 - ln_qz.exp()),
                            PriorSpec::NegBinomial { .. } => {
                                let beta_k = (1.0 - (1.0 - beta0) * ln_qz.exp()).max(OPEN_SHIFT);
                                sum_x_ln_w - (alpha0 + self.total as f64) * beta_k.ln()
                            }
                        }
                    };
                    state.zeta[j] = match self.zeta_kernel {
                        ZetaKernel::Slice => {
                            try_slice_sample(ln_f, current, lo, hi, &self.slice_config, rng)
                                .map_err(|e| slice_fault(e, zeta_names[j], sweep))?
                        }
                        ZetaKernel::AdaptiveRw => state.rw_kernels[j]
                            .try_step(ln_f, current, rng)
                            .map_err(|value| SrmError::NonFiniteLikelihood {
                                parameter: zeta_names[j],
                                value,
                                sweep,
                            })?,
                    };
                }
            }
            SweepKind::Naive => {
                // --- 1. Hyper-parameters | current N -------------------
                match self.prior {
                    PriorSpec::Poisson { lambda_max } => {
                        // λ0 | N ∝ hyper(λ0) · λ0^N e^{−λ0} on
                        // (0, λ_max).
                        if self.fixed.lambda0.is_none() {
                            let shape =
                                (state.last_n as f64 + 1.0 + self.lambda_shape_shift()).max(0.5);
                            state.lambda0 = TruncatedGamma::new(shape, 1.0, lambda_max)
                                .map_err(|e| degenerate("lambda0 conditional", &e, sweep))?
                                .sample(rng);
                        }
                    }
                    PriorSpec::NegBinomial { alpha_max } => {
                        // β0 | N, α0 ~ Beta(α0 + 1 + a, N + 1 + b)
                        // where (a, b) = (−1/2, −1/2) under the
                        // arcsine Jeffreys hyper-prior.
                        if self.fixed.beta0.is_none() {
                            let (da, db) = match self.hyper_prior {
                                HyperPrior::Uniform => (0.0, 0.0),
                                HyperPrior::Jeffreys => (-0.5, -0.5),
                            };
                            state.beta0 =
                                Beta::new(state.alpha0 + 1.0 + da, state.last_n as f64 + 1.0 + db)
                                    .map_err(|e| degenerate("beta0 conditional", &e, sweep))?
                                    .sample(rng)
                                    .clamp(OPEN_SHIFT, 1.0 - OPEN_SHIFT);
                        }
                        // α0 | N, β0 ∝ Γ(N + α0)/Γ(α0) · β0^{α0}.
                        if self.fixed.alpha0.is_none() {
                            let beta0 = state.beta0;
                            let last_n = state.last_n;
                            let ln_target =
                                |a: f64| ln_gamma(last_n as f64 + a) - ln_gamma(a) + a * beta0.ln();
                            state.alpha0 = try_slice_sample(
                                ln_target,
                                state.alpha0.clamp(OPEN_EPS, alpha_max - OPEN_EPS),
                                OPEN_EPS,
                                alpha_max,
                                &self.slice_config,
                                rng,
                            )
                            .map_err(|e| slice_fault(e, "alpha0", sweep))?;
                        }
                    }
                }

                // --- 2. ζ | current N --------------------------------
                let last_n = state.last_n;
                let zeta_len = if self.fixed.zeta.is_some() {
                    0
                } else {
                    state.zeta.len()
                };
                for j in 0..zeta_len {
                    let (lo, hi) = zeta_bounds[j];
                    let current = state.zeta[j].clamp(lo, hi);
                    let snapshot = state.zeta.clone();
                    let ln_f = |v: f64| {
                        let _span = profile::span("likelihood");
                        let mut z = snapshot.clone();
                        z[j] = v;
                        self.zeta_log_target(&z, last_n)
                    };
                    state.zeta[j] = match self.zeta_kernel {
                        ZetaKernel::Slice => {
                            try_slice_sample(ln_f, current, lo, hi, &self.slice_config, rng)
                                .map_err(|e| slice_fault(e, zeta_names[j], sweep))?
                        }
                        ZetaKernel::AdaptiveRw => state.rw_kernels[j]
                            .try_step(ln_f, current, rng)
                            .map_err(|value| SrmError::NonFiniteLikelihood {
                                parameter: zeta_names[j],
                                value,
                                sweep,
                            })?,
                    };
                }
            }
        }

        // --- 3. N | everything else (exact, Props. 1–2) ----------------
        // On the cached collapsed path the memo already holds ln Π q_i
        // at the current ζ (the last ζ evaluation stored it), and
        // `collapsed_stats` accumulates that sum in exactly
        // `ln_survival`'s order, so the shared value is bit-identical
        // to the uncached recomputation (asserted in tests).
        let ln_q = if self.cache_stats && matches!(self.sweep_kind, SweepKind::Collapsed) {
            self.stats_cached(&state.zeta, cache).1
        } else {
            self.ln_survival(&state.zeta)
        };
        let survival = ln_q.exp();
        let force_nan = matches!(forced, Some(FaultKind::NanRate));
        let residual = match self.prior {
            PriorSpec::Poisson { .. } => {
                let rate = if force_nan {
                    f64::NAN
                } else {
                    state.lambda0 * survival
                };
                if rate.is_nan() || rate == f64::INFINITY {
                    return Err(SrmError::NonFiniteLikelihood {
                        parameter: "rate",
                        value: rate,
                        sweep,
                    });
                }
                if rate > 0.0 {
                    Poisson::new(rate)
                        .map_err(|e| degenerate("residual rate", &e, sweep))?
                        .sample(rng)
                } else {
                    0
                }
            }
            PriorSpec::NegBinomial { .. } => {
                let alpha_k = state.alpha0 + self.total as f64;
                let beta_k = if force_nan {
                    f64::NAN
                } else {
                    (1.0 - (1.0 - state.beta0) * survival).clamp(OPEN_SHIFT, 1.0)
                };
                if !alpha_k.is_finite() || !beta_k.is_finite() {
                    return Err(SrmError::NonFiniteLikelihood {
                        parameter: "beta_k",
                        value: if alpha_k.is_finite() { beta_k } else { alpha_k },
                        sweep,
                    });
                }
                NegativeBinomial::new(alpha_k, beta_k)
                    .map_err(|e| degenerate("residual posterior", &e, sweep))?
                    .sample(rng)
            }
        };
        state.last_n = self.total + residual;
        Ok(residual)
    }
}

/// Mutable sampler state snapshotted at sweep start so a faulted
/// sweep can be retried from where it began.
#[derive(Debug, Clone)]
struct SweepState {
    zeta: Vec<f64>,
    lambda0: f64,
    alpha0: f64,
    beta0: f64,
    last_n: u64,
    rw_kernels: Vec<AdaptiveRw>,
}

/// The full mutable state of one chain, exposed for single-sweep
/// driving via [`GibbsSampler::init_state`] /
/// [`GibbsSampler::sweep_state`].
///
/// The setters exist for joint-distribution (Geweke-style) tests that
/// alternate the sampler's transition with a data simulator; a state
/// must only be driven by the sampler that created it (see
/// [`GibbsSampler::init_state`]).
#[derive(Debug, Clone)]
pub struct GibbsState {
    state: SweepState,
    zeta_bounds: Vec<(f64, f64)>,
    cache: RefCell<SuffStatsCache>,
}

impl GibbsState {
    /// Current detection parameters `ζ`.
    #[must_use]
    pub fn zeta(&self) -> &[f64] {
        &self.state.zeta
    }

    /// Overwrites `ζ`.
    ///
    /// # Panics
    ///
    /// Panics when the length does not match the model.
    pub fn set_zeta(&mut self, zeta: &[f64]) {
        assert_eq!(
            zeta.len(),
            self.state.zeta.len(),
            "zeta length must match the model"
        );
        self.state.zeta.copy_from_slice(zeta);
    }

    /// Current `λ0` (NaN under the NB prior).
    #[must_use]
    pub fn lambda0(&self) -> f64 {
        self.state.lambda0
    }

    /// Overwrites `λ0`.
    pub fn set_lambda0(&mut self, lambda0: f64) {
        self.state.lambda0 = lambda0;
    }

    /// Current `α0` (NaN under the Poisson prior).
    #[must_use]
    pub fn alpha0(&self) -> f64 {
        self.state.alpha0
    }

    /// Overwrites `α0`.
    pub fn set_alpha0(&mut self, alpha0: f64) {
        self.state.alpha0 = alpha0;
    }

    /// Current `β0` (NaN under the Poisson prior).
    #[must_use]
    pub fn beta0(&self) -> f64 {
        self.state.beta0
    }

    /// Overwrites `β0`.
    pub fn set_beta0(&mut self, beta0: f64) {
        self.state.beta0 = beta0;
    }

    /// The initial bug content `N` the naive sweep conditions on.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.state.last_n
    }

    /// Overwrites `N`.
    pub fn set_n(&mut self, n: u64) {
        self.state.last_n = n;
    }
}

/// Maps a [`SliceError`] onto the workspace taxonomy with the sweep
/// context the slice sampler does not know.
fn slice_fault(e: SliceError, parameter: &'static str, sweep: usize) -> SrmError {
    match e {
        SliceError::Exhausted => SrmError::SliceExhausted { parameter, sweep },
        SliceError::InfeasibleStart { ln_f0, .. } => SrmError::NonFiniteLikelihood {
            parameter,
            value: ln_f0,
            sweep,
        },
        SliceError::InvalidInterval { lo, hi } => SrmError::InvalidConfig {
            detail: format!("slice interval for {parameter} inverted ({lo} >= {hi})"),
        },
        SliceError::StartOutOfRange { x0, lo, hi } => SrmError::InvalidConfig {
            detail: format!("{parameter} start {x0} outside [{lo}, {hi}]"),
        },
    }
}

/// A distribution construction failure at a Gibbs conditional.
fn degenerate(what: &str, err: &impl std::fmt::Debug, sweep: usize) -> SrmError {
    SrmError::DegeneratePosterior {
        detail: format!("{what}: {err:?}"),
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;
    use srm_rand::Xoshiro256StarStar;

    fn small_data() -> BugCountData {
        datasets::musa_cc96().truncated(30).unwrap()
    }

    fn run(
        prior: PriorSpec,
        model: DetectionModel,
        data: &BugCountData,
        seed: u64,
        samples: usize,
    ) -> Chain {
        let sampler = GibbsSampler::new(prior, model, ZetaBounds::default(), data);
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        sampler.run_chain(&mut rng, 300, samples, 1, &mut |_| {})
    }

    #[test]
    fn param_names_match_prior() {
        let data = small_data();
        let s = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::PadgettSpurrier,
            ZetaBounds::default(),
            &data,
        );
        assert_eq!(s.param_names(), ["residual", "n", "lambda0", "mu", "theta"]);
        let s = GibbsSampler::new(
            PriorSpec::NegBinomial { alpha_max: 40.0 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        assert_eq!(s.param_names(), ["residual", "n", "alpha0", "beta0", "mu"]);
    }

    #[test]
    fn chain_has_requested_length_and_valid_support() {
        let data = small_data();
        let chain = run(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            &data,
            100,
            400,
        );
        assert_eq!(chain.len(), 400);
        let total = data.total() as f64;
        for (&r, &n) in chain
            .draws("residual")
            .unwrap()
            .iter()
            .zip(chain.draws("n").unwrap())
        {
            assert!(r >= 0.0);
            assert!((n - r - total).abs() < 1e-9);
        }
        for &l in chain.draws("lambda0").unwrap() {
            assert!(l > 0.0 && l < 2e3);
        }
        for &m in chain.draws("mu").unwrap() {
            assert!(m > 0.0 && m < 1.0);
        }
    }

    #[test]
    fn nb_chain_hyperparameters_in_support() {
        let data = small_data();
        let chain = run(
            PriorSpec::NegBinomial { alpha_max: 50.0 },
            DetectionModel::Constant,
            &data,
            101,
            400,
        );
        for &a in chain.draws("alpha0").unwrap() {
            assert!(a > 0.0 && a < 50.0);
        }
        for &b in chain.draws("beta0").unwrap() {
            assert!(b > 0.0 && b < 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data();
        let a = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            7,
            100,
        );
        let b = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            7,
            100,
        );
        assert_eq!(a, b);
        let c = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            8,
            100,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn observer_sees_every_kept_draw() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let mut seen = 0usize;
        let chain = sampler.run_chain(&mut rng, 50, 120, 2, &mut |rec| {
            seen += 1;
            assert_eq!(rec.n, data.total() + rec.residual);
            assert_eq!(rec.probs.len(), data.len());
            assert!(rec.lambda0.is_finite());
            assert!(rec.alpha0.is_nan() && rec.beta0.is_nan());
        });
        assert_eq!(seen, 120);
        assert_eq!(chain.len(), 120);
    }

    #[test]
    fn posterior_mean_reacts_to_zero_count_extension() {
        // Virtual testing must pull the posterior residual down.
        let base = datasets::musa_cc96();
        let mean_residual = |extra: usize, seed: u64| {
            let data = base.extended_with_zeros(extra);
            let chain = run(
                PriorSpec::Poisson { lambda_max: 3e3 },
                DetectionModel::PadgettSpurrier,
                &data,
                seed,
                600,
            );
            let r = chain.draws("residual").unwrap();
            r.iter().sum::<f64>() / r.len() as f64
        };
        let at_96 = mean_residual(0, 500);
        let at_146 = mean_residual(50, 501);
        assert!(
            at_146 < at_96,
            "virtual testing failed to shrink: {at_96} -> {at_146}"
        );
    }

    #[test]
    fn jeffreys_hyper_prior_runs_and_stays_in_support() {
        let data = small_data();
        for prior in [
            PriorSpec::Poisson { lambda_max: 2e3 },
            PriorSpec::NegBinomial { alpha_max: 50.0 },
        ] {
            let sampler = GibbsSampler::new(
                prior,
                DetectionModel::Constant,
                ZetaBounds::default(),
                &data,
            )
            .with_hyper_prior(HyperPrior::Jeffreys);
            assert_eq!(sampler.hyper_prior().label(), "jeffreys");
            let mut rng = Xoshiro256StarStar::seed_from(201);
            let chain = sampler.run_chain(&mut rng, 200, 300, 1, &mut |_| {});
            for &r in chain.draws("residual").unwrap() {
                assert!(r >= 0.0);
            }
        }
    }

    #[test]
    fn jeffreys_and_uniform_agree_when_data_dominate() {
        // With 96 informative days the hyper-prior choice must wash
        // out: posterior residual means should be close.
        let data = datasets::musa_cc96();
        let mean_with = |hyper, seed| {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson { lambda_max: 3e3 },
                DetectionModel::PadgettSpurrier,
                ZetaBounds::default(),
                &data,
            )
            .with_hyper_prior(hyper);
            let mut rng = Xoshiro256StarStar::seed_from(seed);
            let chain = sampler.run_chain(&mut rng, 500, 1_500, 1, &mut |_| {});
            let d = chain.draws("residual").unwrap();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let uniform = mean_with(HyperPrior::Uniform, 202);
        let jeffreys = mean_with(HyperPrior::Jeffreys, 203);
        assert!(
            (uniform - jeffreys).abs() < 0.35 * uniform.max(5.0),
            "uniform {uniform} vs jeffreys {jeffreys}"
        );
    }

    #[test]
    fn adaptive_rw_kernel_agrees_with_slice() {
        // Both ζ kernels target the same posterior; the residual
        // means must match within MC error.
        let data = datasets::musa_cc96().truncated(60).unwrap();
        let mean_with = |kernel, seed| {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson { lambda_max: 2e3 },
                DetectionModel::Constant,
                ZetaBounds::default(),
                &data,
            )
            .with_zeta_kernel(kernel);
            let mut rng = Xoshiro256StarStar::seed_from(seed);
            let chain = sampler.run_chain(&mut rng, 800, 3_000, 1, &mut |_| {});
            let d = chain.draws("residual").unwrap();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let slice = mean_with(ZetaKernel::Slice, 401);
        let rw = mean_with(ZetaKernel::AdaptiveRw, 402);
        assert!(
            (slice - rw).abs() < 0.3 * slice.max(10.0),
            "slice {slice} vs adaptive RW {rw}"
        );
    }

    #[test]
    fn naive_sweep_jeffreys_also_valid() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::NegBinomial { alpha_max: 40.0 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_hyper_prior(HyperPrior::Jeffreys)
        .with_sweep_kind(SweepKind::Naive);
        let mut rng = Xoshiro256StarStar::seed_from(204);
        let chain = sampler.run_chain(&mut rng, 200, 300, 1, &mut |_| {});
        for &b in chain.draws("beta0").unwrap() {
            assert!(b > 0.0 && b < 1.0);
        }
    }

    #[test]
    fn ln_survival_matches_collapsed_stats_bitwise() {
        // The N-step's cached path reads `collapsed_stats(ζ).1` where
        // the uncached path computes `ln_survival(ζ)`; bit-equality of
        // the two is what makes the cache invisible to the draws.
        let data = small_data();
        let mut rng = Xoshiro256StarStar::seed_from(77);
        for model in DetectionModel::ALL {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson { lambda_max: 1e3 },
                model,
                ZetaBounds::default(),
                &data,
            );
            let bounds = sampler.zeta_bounds();
            for _ in 0..50 {
                let zeta: Vec<f64> = bounds
                    .iter()
                    .map(|&(lo, hi)| lo + (hi - lo) * rng.next_f64())
                    .collect();
                let direct = sampler.ln_survival(&zeta);
                let (_, via_stats) = sampler.collapsed_stats(&zeta);
                assert_eq!(
                    direct.to_bits(),
                    via_stats.to_bits(),
                    "{model:?} at {zeta:?}"
                );
            }
        }
    }

    #[test]
    fn cached_and_uncached_sweeps_are_bit_identical() {
        let data = small_data();
        for prior in [
            PriorSpec::Poisson { lambda_max: 2e3 },
            PriorSpec::NegBinomial { alpha_max: 50.0 },
        ] {
            for kernel in [ZetaKernel::Slice, ZetaKernel::AdaptiveRw] {
                let build = |cached| {
                    GibbsSampler::new(
                        prior,
                        DetectionModel::PadgettSpurrier,
                        ZetaBounds::default(),
                        &data,
                    )
                    .with_zeta_kernel(kernel)
                    .with_cached_stats(cached)
                };
                assert!(build(true).cached_stats());
                assert!(!build(false).cached_stats());
                let run = |sampler: GibbsSampler| {
                    let mut rng = Xoshiro256StarStar::seed_from(4_040);
                    sampler.run_chain(&mut rng, 100, 150, 1, &mut |_| {})
                };
                assert_eq!(
                    run(build(true)),
                    run(build(false)),
                    "{prior:?}/{kernel:?} diverged under caching"
                );
            }
        }
    }

    #[test]
    fn fixed_params_pin_values_and_skip_updates() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_fixed(FixedParams {
            zeta: Some(vec![0.05]),
            lambda0: Some(120.0),
            ..FixedParams::default()
        });
        assert!(!sampler.fixed_params().is_empty());
        let mut rng = Xoshiro256StarStar::seed_from(606);
        let chain = sampler.run_chain(&mut rng, 0, 200, 1, &mut |_| {});
        for &l in chain.draws("lambda0").unwrap() {
            assert_eq!(l.to_bits(), 120.0f64.to_bits());
        }
        for &m in chain.draws("mu").unwrap() {
            assert_eq!(m.to_bits(), 0.05f64.to_bits());
        }
        // The residual still moves: only the N-step consumes RNG.
        let r = chain.draws("residual").unwrap();
        assert!(r.iter().any(|&x| x.to_bits() != r[0].to_bits()));
    }

    #[test]
    fn fixed_zeta_of_wrong_length_is_invalid_config() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::PadgettSpurrier, // two ζ components
            ZetaBounds::default(),
            &data,
        )
        .with_fixed(FixedParams {
            zeta: Some(vec![0.1]),
            ..FixedParams::default()
        });
        let err = sampler.init_state().unwrap_err();
        assert!(matches!(err, SrmError::InvalidConfig { .. }));
    }

    #[test]
    fn sweep_state_api_matches_chain_semantics() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut state = sampler.init_state().unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(9_009);
        for _ in 0..20 {
            let residual = sampler.sweep_state(&mut state, &mut rng).unwrap();
            assert_eq!(state.n(), data.total() + residual);
            assert!(state.lambda0() > 0.0 && state.lambda0() < 2e3);
            assert!(state.zeta()[0] > 0.0 && state.zeta()[0] < 1.0);
        }
        // Setters round-trip (the Geweke driver relies on these).
        state.set_lambda0(42.0);
        state.set_n(500);
        state.set_zeta(&[0.25]);
        assert_eq!(state.lambda0().to_bits(), 42.0f64.to_bits());
        assert_eq!(state.n(), 500);
        assert_eq!(state.zeta(), &[0.25]);
    }

    #[test]
    fn zero_thin_panics() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut rng = Xoshiro256StarStar::seed_from(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sampler.run_chain(&mut rng, 10, 10, 0, &mut |_| {})
        }));
        assert!(result.is_err());
    }
}
