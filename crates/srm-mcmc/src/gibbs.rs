//! The Gibbs samplers of Eqs. (14)–(22).
//!
//! Each sweep updates, in order:
//!
//! 1. `N` — exact: the residual `R = N − s_k` is `Poisson(λ0 Π q_i)`
//!    (Prop. 1) or `NB(α0 + s_k, 1 − (1−β0) Π q_i)` (corrected
//!    Prop. 2);
//! 2. the prior hyper-parameters — `λ0 | N ~ Gamma(N+1, 1)` truncated
//!    to `(0, λ_max)`; `β0 | N, α0 ~ Beta(α0+1, N+1)`;
//!    `α0 | N, β0` by slice sampling on `(0, α_max)`;
//! 3. the detection parameters `ζ` — coordinate-wise slice sampling
//!    of `Σ x_i ln p_i + Σ (N − s_i) ln q_i` on their uniform-prior
//!    boxes.
//!
//! All conditional densities follow directly from the joint
//! `P(N) · P(x | N, p(ζ)) · priors`, so the sweep targets the exact
//! posterior of the paper's hierarchical model.

use crate::chain::Chain;
use crate::metropolis::AdaptiveRw;
use crate::slice::{slice_sample, SliceConfig};
use srm_data::BugCountData;
use srm_math::special::ln_gamma;
use srm_model::detection::OPEN_EPS;

/// Tiny positive shift keeping exact conditionals strictly inside
/// their open supports after floating-point round-off.
const OPEN_SHIFT: f64 = 1e-12;
use srm_model::{DetectionModel, GroupedLikelihood, ZetaBounds};
use srm_rand::{Beta, Distribution, NegativeBinomial, Poisson, Rng, TruncatedGamma};

/// Which prior (and hyper-prior upper limit) the sampler runs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriorSpec {
    /// `N ~ Poisson(λ0)`, `λ0 ~ Uniform(0, λ_max)` (Eqs. (14)–(17)).
    Poisson {
        /// Upper limit of the uniform hyper-prior on `λ0`.
        lambda_max: f64,
    },
    /// `N ~ NB(α0, β0)`, `α0 ~ Uniform(0, α_max)`,
    /// `β0 ~ Uniform(0, 1)` (Eqs. (18)–(22)).
    NegBinomial {
        /// Upper limit of the uniform hyper-prior on `α0`.
        alpha_max: f64,
    },
}

impl PriorSpec {
    /// Short label used in table headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Poisson { .. } => "poisson",
            Self::NegBinomial { .. } => "negbinom",
        }
    }
}

/// One kept sweep, handed to observers (WAIC accumulators, tracers).
#[derive(Debug, Clone, Copy)]
pub struct SweepRecord<'a> {
    /// Current initial bug content `N`.
    pub n: u64,
    /// Current residual `R = N − s_k`.
    pub residual: u64,
    /// Current detection parameters `ζ`.
    pub zeta: &'a [f64],
    /// Current `λ0` (NaN under the NB prior).
    pub lambda0: f64,
    /// Current `α0` (NaN under the Poisson prior).
    pub alpha0: f64,
    /// Current `β0` (NaN under the Poisson prior).
    pub beta0: f64,
    /// The detection schedule `p_1..p_k` at the current `ζ`.
    pub probs: &'a [f64],
}

/// Which non-informative hyper-prior to place on the prior's
/// hyper-parameters.
///
/// The paper uses uniform hyper-priors throughout and names the
/// Jeffreys prior as future work (§6); both are implemented here.
/// For the Poisson-prior rate, Jeffreys is `p(λ0) ∝ λ0^{−1/2}`
/// (truncated to the same `(0, λ_max)` support so the two variants
/// stay comparable). For the NB prior we use the Jeffreys prior of a
/// proportion, `β0 ~ Beta(1/2, 1/2)` (arcsine), keeping `α0` uniform —
/// the joint Jeffreys prior of the NB size has no closed form and is
/// dominated by the `β0` factor in this model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HyperPrior {
    /// Flat hyper-priors on their supports (the paper's Eqs. (15),
    /// (19)–(20)).
    #[default]
    Uniform,
    /// Jeffreys-style non-informative hyper-priors (paper §6).
    Jeffreys,
}

impl HyperPrior {
    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::Jeffreys => "jeffreys",
        }
    }
}

/// Which transition kernel updates the detection parameters `ζ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZetaKernel {
    /// Stepping-out slice sampling (default; tuning-free, exact).
    #[default]
    Slice,
    /// Adaptive random-walk Metropolis (cheaper per iteration;
    /// adaptation runs during burn-in and freezes afterwards).
    AdaptiveRw,
}

/// Which Gibbs sweep to run.
///
/// The collapsed sweep integrates `N` out of every hyper-parameter
/// and `ζ` update analytically (the thinned model's marginal is a
/// product of independent Poissons given `λ0`, and a closed-form
/// negative-multinomial given `(α0, β0)`), which removes the strong
/// `λ0 ↔ N` posterior coupling and mixes dramatically better. The
/// naive sweep conditions every update on the current `N` — the
/// textbook scheme of Eqs. (14)–(22) — and is kept as an ablation
/// target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepKind {
    /// Marginalise `N` in the hyper-parameter and `ζ` updates
    /// (default).
    #[default]
    Collapsed,
    /// Condition every update on the current `N`.
    Naive,
}

/// The Gibbs sampler for one (prior, detection-model, dataset)
/// combination.
///
/// See the crate-level example for typical use through
/// [`crate::runner::run_chains`].
#[derive(Debug, Clone)]
pub struct GibbsSampler {
    prior: PriorSpec,
    model: DetectionModel,
    bounds: ZetaBounds,
    lik: GroupedLikelihood,
    cumulative: Vec<u64>,
    total: u64,
    horizon: usize,
    slice_config: SliceConfig,
    sweep_kind: SweepKind,
    hyper_prior: HyperPrior,
    zeta_kernel: ZetaKernel,
}

impl GibbsSampler {
    /// Creates a sampler for the given configuration and data window.
    #[must_use]
    pub fn new(
        prior: PriorSpec,
        model: DetectionModel,
        bounds: ZetaBounds,
        data: &BugCountData,
    ) -> Self {
        Self {
            prior,
            model,
            bounds,
            lik: GroupedLikelihood::new(data),
            cumulative: data.cumulative().to_vec(),
            total: data.total(),
            horizon: data.len(),
            slice_config: SliceConfig::default(),
            sweep_kind: SweepKind::default(),
            hyper_prior: HyperPrior::default(),
            zeta_kernel: ZetaKernel::default(),
        }
    }

    /// Selects the `ζ` transition kernel (slice by default).
    #[must_use]
    pub fn with_zeta_kernel(mut self, kernel: ZetaKernel) -> Self {
        self.zeta_kernel = kernel;
        self
    }

    /// The configured `ζ` kernel.
    #[must_use]
    pub fn zeta_kernel(&self) -> ZetaKernel {
        self.zeta_kernel
    }

    /// Selects the sweep variant (collapsed by default).
    #[must_use]
    pub fn with_sweep_kind(mut self, kind: SweepKind) -> Self {
        self.sweep_kind = kind;
        self
    }

    /// The configured sweep variant.
    #[must_use]
    pub fn sweep_kind(&self) -> SweepKind {
        self.sweep_kind
    }

    /// Selects the non-informative hyper-prior (uniform by default).
    #[must_use]
    pub fn with_hyper_prior(mut self, hyper: HyperPrior) -> Self {
        self.hyper_prior = hyper;
        self
    }

    /// The configured hyper-prior.
    #[must_use]
    pub fn hyper_prior(&self) -> HyperPrior {
        self.hyper_prior
    }

    /// The extra Gamma-shape mass contributed by the λ0 hyper-prior:
    /// uniform adds 0, Jeffreys (`∝ λ^{−1/2}`) subtracts one half.
    fn lambda_shape_shift(&self) -> f64 {
        match self.hyper_prior {
            HyperPrior::Uniform => 0.0,
            HyperPrior::Jeffreys => -0.5,
        }
    }

    /// Log hyper-prior density of `β0` up to a constant.
    fn ln_beta0_hyper_prior(&self, beta0: f64) -> f64 {
        match self.hyper_prior {
            HyperPrior::Uniform => 0.0,
            // Arcsine / Beta(1/2, 1/2).
            HyperPrior::Jeffreys => -0.5 * beta0.ln() - 0.5 * (1.0 - beta0).ln(),
        }
    }

    /// The prior specification.
    #[must_use]
    pub fn prior(&self) -> PriorSpec {
        self.prior
    }

    /// The detection model.
    #[must_use]
    pub fn model(&self) -> DetectionModel {
        self.model
    }

    /// The likelihood evaluator (shared with WAIC computation).
    #[must_use]
    pub fn likelihood(&self) -> &GroupedLikelihood {
        &self.lik
    }

    /// Total observed bugs `s_k`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Chain column names: `residual`, `n`, the hyper-parameters of
    /// the chosen prior, then the `ζ` components.
    #[must_use]
    pub fn param_names(&self) -> Vec<&'static str> {
        let mut names = vec!["residual", "n"];
        match self.prior {
            PriorSpec::Poisson { .. } => names.push("lambda0"),
            PriorSpec::NegBinomial { .. } => {
                names.push("alpha0");
                names.push("beta0");
            }
        }
        names.extend_from_slice(self.model.param_names());
        names
    }

    /// The detection-data part of the log posterior as a function of
    /// `ζ` for fixed `N` (the slice-sampling target).
    fn zeta_log_target(&self, zeta: &[f64], n: u64) -> f64 {
        let counts = self.lik.counts();
        let mut ll = 0.0;
        for i in 0..self.horizon {
            let p = self.model.prob_unchecked(zeta, (i + 1) as u64);
            let q = 1.0 - p;
            ll += counts[i] as f64 * p.ln() + (n - self.cumulative[i]) as f64 * q.ln();
        }
        ll
    }

    fn ln_survival(&self, zeta: &[f64]) -> f64 {
        (1..=self.horizon as u64)
            .map(|i| (1.0 - self.model.prob_unchecked(zeta, i)).ln())
            .sum()
    }

    /// One pass over the schedule yielding `(Σ x_i ln w_i, ln Π q_i)`
    /// with `w_i = p_i Π_{j<i} q_j` — the sufficient statistics of
    /// the collapsed (N-marginalised) likelihood.
    fn collapsed_stats(&self, zeta: &[f64]) -> (f64, f64) {
        let counts = self.lik.counts();
        let mut cum_ln_q = 0.0;
        let mut sum_x_ln_w = 0.0;
        for i in 0..self.horizon {
            let p = self.model.prob_unchecked(zeta, (i + 1) as u64);
            if counts[i] > 0 {
                sum_x_ln_w += counts[i] as f64 * (p.ln() + cum_ln_q);
            }
            cum_ln_q += (1.0 - p).ln();
        }
        (sum_x_ln_w, cum_ln_q)
    }

    /// Collapsed log marginal of the data as a function of the NB
    /// hyper-parameters (ζ fixed): the negative-multinomial kernel
    /// `ln Γ(α0+s_k) − ln Γ(α0) + α0 ln β0 + s_k ln(1−β0)
    ///  − (α0+s_k) ln(1 − (1−β0) Q)`.
    fn nb_collapsed_kernel(&self, alpha0: f64, beta0: f64, survival: f64) -> f64 {
        let s_k = self.total as f64;
        let beta_k = (1.0 - (1.0 - beta0) * survival).max(OPEN_SHIFT);
        ln_gamma(alpha0 + s_k) - ln_gamma(alpha0) + alpha0 * beta0.ln()
            + s_k * (1.0 - beta0).ln()
            - (alpha0 + s_k) * beta_k.ln()
    }

    /// Runs one chain, returning the kept draws. `observer` is called
    /// once per kept draw (after thinning) with the full sweep state.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `thin == 0`.
    pub fn run_chain<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        burn_in: usize,
        samples: usize,
        thin: usize,
        observer: &mut dyn FnMut(&SweepRecord<'_>),
    ) -> Chain {
        assert!(samples > 0, "samples must be positive");
        assert!(thin > 0, "thin must be positive");

        // --- Initial state -------------------------------------------------
        let zeta_bounds = self.model.bounds(&self.bounds);
        let mut zeta: Vec<f64> =
            zeta_bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect();
        let (mut lambda0, mut alpha0, mut beta0) = match self.prior {
            PriorSpec::Poisson { lambda_max } => {
                let init = (2.0 * self.total as f64 + 10.0).min(0.9 * lambda_max);
                (init.max(OPEN_SHIFT), f64::NAN, f64::NAN)
            }
            PriorSpec::NegBinomial { alpha_max } => (f64::NAN, 0.5 * alpha_max, 0.5),
        };
        let mut n;
        // The N the naive sweep conditions on (initialised at s_k).
        let mut last_n = self.total;

        let names = self.param_names();
        let mut chain = Chain::new(&names);
        chain.reserve(samples);

        let total_sweeps = burn_in + samples * thin;
        let mut kept = 0usize;
        let mut probs: Vec<f64>;
        let mut rw_kernels: Vec<AdaptiveRw> = zeta_bounds
            .iter()
            .map(|&(lo, hi)| AdaptiveRw::new(0.0, lo, hi))
            .collect();

        for sweep in 0..total_sweeps {
            if sweep == burn_in {
                for kernel in &mut rw_kernels {
                    kernel.freeze();
                }
            }
            match self.sweep_kind {
                SweepKind::Collapsed => {
                    // --- 1. Hyper-parameters | ζ (N marginalised out) -----
                    let (_, ln_q) = self.collapsed_stats(&zeta);
                    let survival = ln_q.exp();
                    match self.prior {
                        PriorSpec::Poisson { lambda_max } => {
                            // Marginally x_i ~ Poisson(λ0 w_i), so
                            // λ0 | x, ζ ~ Gamma(s_k+1+shift, 1/Σw_i)
                            // on (0, λ_max); Σ w_i = 1 − Π q_i. The
                            // Jeffreys hyper-prior shifts the shape
                            // by −1/2.
                            let w_sum = (1.0 - survival).max(OPEN_SHIFT);
                            let shape =
                                (self.total as f64 + 1.0 + self.lambda_shape_shift()).max(0.5);
                            lambda0 = TruncatedGamma::new(shape, 1.0 / w_sum, lambda_max)
                                .expect("valid conditional")
                                .sample(rng);
                        }
                        PriorSpec::NegBinomial { alpha_max } => {
                            // β0 | α0, ζ, x via the collapsed kernel.
                            let a0 = alpha0;
                            let ln_f_beta = |b: f64| {
                                self.nb_collapsed_kernel(a0, b, survival)
                                    + self.ln_beta0_hyper_prior(b)
                            };
                            beta0 = slice_sample(
                                ln_f_beta,
                                beta0.clamp(OPEN_EPS, 1.0 - OPEN_EPS),
                                OPEN_EPS,
                                1.0 - OPEN_EPS,
                                &self.slice_config,
                                rng,
                            );
                            // α0 | β0, ζ, x via the same kernel.
                            let b0 = beta0;
                            let ln_f_alpha = |a: f64| self.nb_collapsed_kernel(a, b0, survival);
                            alpha0 = slice_sample(
                                ln_f_alpha,
                                alpha0.clamp(OPEN_EPS, alpha_max - OPEN_EPS),
                                OPEN_EPS,
                                alpha_max,
                                &self.slice_config,
                                rng,
                            );
                        }
                    }

                    // --- 2. ζ | hyper-parameters (N marginalised) ----------
                    for j in 0..zeta.len() {
                        let (lo, hi) = zeta_bounds[j];
                        let current = zeta[j].clamp(lo, hi);
                        let snapshot = zeta.clone();
                        let ln_f = |v: f64| {
                            let mut z = snapshot.clone();
                            z[j] = v;
                            let (sum_x_ln_w, ln_qz) = self.collapsed_stats(&z);
                            match self.prior {
                                PriorSpec::Poisson { .. } => {
                                    sum_x_ln_w - lambda0 * (1.0 - ln_qz.exp())
                                }
                                PriorSpec::NegBinomial { .. } => {
                                    let beta_k = (1.0 - (1.0 - beta0) * ln_qz.exp())
                                        .max(OPEN_SHIFT);
                                    sum_x_ln_w
                                        - (alpha0 + self.total as f64) * beta_k.ln()
                                }
                            }
                        };
                        zeta[j] = match self.zeta_kernel {
                            ZetaKernel::Slice => slice_sample(
                                ln_f,
                                current,
                                lo,
                                hi,
                                &self.slice_config,
                                rng,
                            ),
                            ZetaKernel::AdaptiveRw => {
                                rw_kernels[j].step(ln_f, current, rng)
                            }
                        };
                    }
                }
                SweepKind::Naive => {
                    // --- 1. Hyper-parameters | current N -------------------
                    match self.prior {
                        PriorSpec::Poisson { lambda_max } => {
                            // λ0 | N ∝ hyper(λ0) · λ0^N e^{−λ0} on
                            // (0, λ_max).
                            let shape =
                                (last_n as f64 + 1.0 + self.lambda_shape_shift()).max(0.5);
                            lambda0 = TruncatedGamma::new(shape, 1.0, lambda_max)
                                .expect("valid conditional")
                                .sample(rng);
                        }
                        PriorSpec::NegBinomial { alpha_max } => {
                            // β0 | N, α0 ~ Beta(α0 + 1 + a, N + 1 + b)
                            // where (a, b) = (−1/2, −1/2) under the
                            // arcsine Jeffreys hyper-prior.
                            let (da, db) = match self.hyper_prior {
                                HyperPrior::Uniform => (0.0, 0.0),
                                HyperPrior::Jeffreys => (-0.5, -0.5),
                            };
                            beta0 = Beta::new(alpha0 + 1.0 + da, last_n as f64 + 1.0 + db)
                                .expect("valid conditional")
                                .sample(rng)
                                .clamp(OPEN_SHIFT, 1.0 - OPEN_SHIFT);
                            // α0 | N, β0 ∝ Γ(N + α0)/Γ(α0) · β0^{α0}.
                            let ln_target = |a: f64| {
                                ln_gamma(last_n as f64 + a) - ln_gamma(a) + a * beta0.ln()
                            };
                            alpha0 = slice_sample(
                                ln_target,
                                alpha0.clamp(OPEN_EPS, alpha_max - OPEN_EPS),
                                OPEN_EPS,
                                alpha_max,
                                &self.slice_config,
                                rng,
                            );
                        }
                    }

                    // --- 2. ζ | current N --------------------------------
                    for j in 0..zeta.len() {
                        let (lo, hi) = zeta_bounds[j];
                        let current = zeta[j].clamp(lo, hi);
                        let snapshot = zeta.clone();
                        let ln_f = |v: f64| {
                            let mut z = snapshot.clone();
                            z[j] = v;
                            self.zeta_log_target(&z, last_n)
                        };
                        zeta[j] = match self.zeta_kernel {
                            ZetaKernel::Slice => slice_sample(
                                ln_f,
                                current,
                                lo,
                                hi,
                                &self.slice_config,
                                rng,
                            ),
                            ZetaKernel::AdaptiveRw => {
                                rw_kernels[j].step(ln_f, current, rng)
                            }
                        };
                    }
                }
            }

            // --- 3. N | everything else (exact, Props. 1–2) ----------------
            let ln_q = self.ln_survival(&zeta);
            let survival = ln_q.exp();
            let residual = match self.prior {
                PriorSpec::Poisson { .. } => {
                    let rate = lambda0 * survival;
                    if rate > 0.0 && rate.is_finite() {
                        Poisson::new(rate).expect("positive rate").sample(rng)
                    } else {
                        0
                    }
                }
                PriorSpec::NegBinomial { .. } => {
                    let alpha_k = alpha0 + self.total as f64;
                    let beta_k = (1.0 - (1.0 - beta0) * survival).clamp(OPEN_SHIFT, 1.0);
                    NegativeBinomial::new(alpha_k, beta_k)
                        .expect("valid posterior parameters")
                        .sample(rng)
                }
            };
            n = self.total + residual;
            last_n = n;

            // --- Record ----------------------------------------------------
            if sweep >= burn_in && (sweep - burn_in) % thin == 0 && kept < samples {
                probs = self
                    .model
                    .probs(&zeta, self.horizon)
                    .expect("sampled parameters stay in bounds");
                let mut row: Vec<f64> = vec![residual as f64, n as f64];
                match self.prior {
                    PriorSpec::Poisson { .. } => row.push(lambda0),
                    PriorSpec::NegBinomial { .. } => {
                        row.push(alpha0);
                        row.push(beta0);
                    }
                }
                row.extend_from_slice(&zeta);
                chain.push(&row);
                kept += 1;
                observer(&SweepRecord {
                    n,
                    residual,
                    zeta: &zeta,
                    lambda0,
                    alpha0,
                    beta0,
                    probs: &probs,
                });
            }
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;
    use srm_rand::Xoshiro256StarStar;

    fn small_data() -> BugCountData {
        datasets::musa_cc96().truncated(30).unwrap()
    }

    fn run(
        prior: PriorSpec,
        model: DetectionModel,
        data: &BugCountData,
        seed: u64,
        samples: usize,
    ) -> Chain {
        let sampler = GibbsSampler::new(prior, model, ZetaBounds::default(), data);
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        sampler.run_chain(&mut rng, 300, samples, 1, &mut |_| {})
    }

    #[test]
    fn param_names_match_prior() {
        let data = small_data();
        let s = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::PadgettSpurrier,
            ZetaBounds::default(),
            &data,
        );
        assert_eq!(s.param_names(), ["residual", "n", "lambda0", "mu", "theta"]);
        let s = GibbsSampler::new(
            PriorSpec::NegBinomial { alpha_max: 40.0 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        assert_eq!(s.param_names(), ["residual", "n", "alpha0", "beta0", "mu"]);
    }

    #[test]
    fn chain_has_requested_length_and_valid_support() {
        let data = small_data();
        let chain = run(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            &data,
            100,
            400,
        );
        assert_eq!(chain.len(), 400);
        let total = data.total() as f64;
        for (&r, &n) in chain
            .draws("residual")
            .unwrap()
            .iter()
            .zip(chain.draws("n").unwrap())
        {
            assert!(r >= 0.0);
            assert!((n - r - total).abs() < 1e-9);
        }
        for &l in chain.draws("lambda0").unwrap() {
            assert!(l > 0.0 && l < 2e3);
        }
        for &m in chain.draws("mu").unwrap() {
            assert!(m > 0.0 && m < 1.0);
        }
    }

    #[test]
    fn nb_chain_hyperparameters_in_support() {
        let data = small_data();
        let chain = run(
            PriorSpec::NegBinomial { alpha_max: 50.0 },
            DetectionModel::Constant,
            &data,
            101,
            400,
        );
        for &a in chain.draws("alpha0").unwrap() {
            assert!(a > 0.0 && a < 50.0);
        }
        for &b in chain.draws("beta0").unwrap() {
            assert!(b > 0.0 && b < 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data();
        let a = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            7,
            100,
        );
        let b = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            7,
            100,
        );
        assert_eq!(a, b);
        let c = run(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Weibull,
            &data,
            8,
            100,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn observer_sees_every_kept_draw() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let mut seen = 0usize;
        let chain = sampler.run_chain(&mut rng, 50, 120, 2, &mut |rec| {
            seen += 1;
            assert_eq!(rec.n, data.total() + rec.residual);
            assert_eq!(rec.probs.len(), data.len());
            assert!(rec.lambda0.is_finite());
            assert!(rec.alpha0.is_nan() && rec.beta0.is_nan());
        });
        assert_eq!(seen, 120);
        assert_eq!(chain.len(), 120);
    }

    #[test]
    fn posterior_mean_reacts_to_zero_count_extension() {
        // Virtual testing must pull the posterior residual down.
        let base = datasets::musa_cc96();
        let mean_residual = |extra: usize, seed: u64| {
            let data = base.extended_with_zeros(extra);
            let chain = run(
                PriorSpec::Poisson { lambda_max: 3e3 },
                DetectionModel::PadgettSpurrier,
                &data,
                seed,
                600,
            );
            let r = chain.draws("residual").unwrap();
            r.iter().sum::<f64>() / r.len() as f64
        };
        let at_96 = mean_residual(0, 500);
        let at_146 = mean_residual(50, 501);
        assert!(
            at_146 < at_96,
            "virtual testing failed to shrink: {at_96} -> {at_146}"
        );
    }

    #[test]
    fn jeffreys_hyper_prior_runs_and_stays_in_support() {
        let data = small_data();
        for prior in [
            PriorSpec::Poisson { lambda_max: 2e3 },
            PriorSpec::NegBinomial { alpha_max: 50.0 },
        ] {
            let sampler = GibbsSampler::new(
                prior,
                DetectionModel::Constant,
                ZetaBounds::default(),
                &data,
            )
            .with_hyper_prior(HyperPrior::Jeffreys);
            assert_eq!(sampler.hyper_prior().label(), "jeffreys");
            let mut rng = Xoshiro256StarStar::seed_from(201);
            let chain = sampler.run_chain(&mut rng, 200, 300, 1, &mut |_| {});
            for &r in chain.draws("residual").unwrap() {
                assert!(r >= 0.0);
            }
        }
    }

    #[test]
    fn jeffreys_and_uniform_agree_when_data_dominate() {
        // With 96 informative days the hyper-prior choice must wash
        // out: posterior residual means should be close.
        let data = datasets::musa_cc96();
        let mean_with = |hyper, seed| {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson { lambda_max: 3e3 },
                DetectionModel::PadgettSpurrier,
                ZetaBounds::default(),
                &data,
            )
            .with_hyper_prior(hyper);
            let mut rng = Xoshiro256StarStar::seed_from(seed);
            let chain = sampler.run_chain(&mut rng, 500, 1_500, 1, &mut |_| {});
            let d = chain.draws("residual").unwrap();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let uniform = mean_with(HyperPrior::Uniform, 202);
        let jeffreys = mean_with(HyperPrior::Jeffreys, 203);
        assert!(
            (uniform - jeffreys).abs() < 0.35 * uniform.max(5.0),
            "uniform {uniform} vs jeffreys {jeffreys}"
        );
    }

    #[test]
    fn adaptive_rw_kernel_agrees_with_slice() {
        // Both ζ kernels target the same posterior; the residual
        // means must match within MC error.
        let data = datasets::musa_cc96().truncated(60).unwrap();
        let mean_with = |kernel, seed| {
            let sampler = GibbsSampler::new(
                PriorSpec::Poisson { lambda_max: 2e3 },
                DetectionModel::Constant,
                ZetaBounds::default(),
                &data,
            )
            .with_zeta_kernel(kernel);
            let mut rng = Xoshiro256StarStar::seed_from(seed);
            let chain = sampler.run_chain(&mut rng, 800, 3_000, 1, &mut |_| {});
            let d = chain.draws("residual").unwrap();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let slice = mean_with(ZetaKernel::Slice, 401);
        let rw = mean_with(ZetaKernel::AdaptiveRw, 402);
        assert!(
            (slice - rw).abs() < 0.3 * slice.max(10.0),
            "slice {slice} vs adaptive RW {rw}"
        );
    }

    #[test]
    fn naive_sweep_jeffreys_also_valid() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::NegBinomial { alpha_max: 40.0 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        )
        .with_hyper_prior(HyperPrior::Jeffreys)
        .with_sweep_kind(SweepKind::Naive);
        let mut rng = Xoshiro256StarStar::seed_from(204);
        let chain = sampler.run_chain(&mut rng, 200, 300, 1, &mut |_| {});
        for &b in chain.draws("beta0").unwrap() {
            assert!(b > 0.0 && b < 1.0);
        }
    }

    #[test]
    fn zero_thin_panics() {
        let data = small_data();
        let sampler = GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 1e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            &data,
        );
        let mut rng = Xoshiro256StarStar::seed_from(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sampler.run_chain(&mut rng, 10, 10, 0, &mut |_| {})
        }));
        assert!(result.is_err());
    }
}
