//! MCMC engine for the Bayesian discrete-time SRMs.
//!
//! This crate replaces JAGS in the paper's pipeline:
//!
//! * [`slice`](mod@crate::slice) — univariate slice sampling (Neal 2003), the
//!   tuning-free workhorse for the non-conjugate conditionals;
//! * [`gibbs`] — the model-specific Gibbs sweeps implementing
//!   Eqs. (14)–(22): exact conjugate draws for `N`, `λ0` and `β0`,
//!   slice steps for `ζ` and `α0`;
//! * [`chain`] — chain storage with named parameters;
//! * [`fault`] — the typed error taxonomy ([`SrmError`]), retry
//!   policy, and deterministic fault-injection harness;
//! * [`runner`] — the multi-chain parallel driver (std scoped
//!   threads, one xoshiro jump-stream per chain), with panic-contained
//!   fault-tolerant execution via
//!   [`runner::run_chains_fault_tolerant`];
//! * [`diagnostics`] — Gelman–Rubin PSRF (Eq. (26)), Geweke Z
//!   (Eq. (30), standard form), effective sample size and MCSE;
//! * [`summary`] — posterior summaries: mean / median / mode / sd /
//!   quantiles / HPD interval / box-plot statistics.
//!
//! # Examples
//!
//! ```
//! use srm_data::datasets;
//! use srm_mcmc::gibbs::{GibbsSampler, PriorSpec};
//! use srm_mcmc::runner::{run_chains, McmcConfig};
//! use srm_model::{DetectionModel, ZetaBounds};
//!
//! let data = datasets::musa_cc96().truncated(48).unwrap();
//! let sampler = GibbsSampler::new(
//!     PriorSpec::Poisson { lambda_max: 2000.0 },
//!     DetectionModel::Constant,
//!     ZetaBounds::default(),
//!     &data,
//! );
//! let config = McmcConfig { chains: 2, burn_in: 200, samples: 300, thin: 1, seed: 7 };
//! let out = run_chains(&sampler, &config);
//! assert_eq!(out.chains.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod diagnostics;
pub mod fault;
pub mod gibbs;
pub mod metropolis;
pub mod runner;
pub mod slice;
pub mod streaming;
pub mod summary;

pub use chain::Chain;
pub use diagnostics::{effective_sample_size, geweke_z, psrf, DiagnosticsReport};
pub use fault::{
    ChainFailure, ChainReport, FaultInjector, FaultKind, FaultPlan, FaultPoint, RecoveryLog,
    RetryPolicy, SrmError,
};
pub use gibbs::{
    FixedParams, GibbsSampler, GibbsState, HyperPrior, PriorSpec, SweepKind, SweepRecord,
    ZetaKernel,
};
pub use metropolis::ParamAcceptance;
pub use runner::{
    assemble_run, effective_threads, run_chain_task, run_chains, run_chains_fault_tolerant,
    run_chains_fault_tolerant_traced, ChainOutcome, FaultTolerantRun, McmcConfig, McmcOutput,
    RunOptions,
};
pub use streaming::{ChainAccumulator, ParamAccumulator, DEFAULT_LAG_WINDOW};
pub use summary::{AcceptanceSummary, PosteriorSummary};
