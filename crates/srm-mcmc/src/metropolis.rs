//! Adaptive random-walk Metropolis updates.
//!
//! An alternative to slice sampling for the non-conjugate
//! conditionals: a Gaussian random-walk proposal whose step size
//! adapts toward a target acceptance rate by Robbins–Monro
//! stochastic approximation (diminishing adaptation, so the chain's
//! stationary distribution is preserved asymptotically). Used by the
//! `gibbs` benchmark ablation and available to library users who want
//! a cheaper-per-iteration kernel than slice sampling.

use srm_rand::{Distribution, Normal, Rng};

/// Target acceptance rate for univariate random-walk Metropolis
/// (Roberts–Gelman–Gilks optimum ≈ 0.44 in one dimension).
pub const TARGET_ACCEPTANCE: f64 = 0.44;

/// Move statistics for one sampled parameter over a chain: how many
/// kernel steps it took and on how many the parameter actually moved.
///
/// For [`AdaptiveRw`] a "move" is exactly a Metropolis acceptance; for
/// the slice kernel it means the shrinkage loop found a new point
/// (returning the current point is the slice sampler's degenerate
/// give-up outcome). Collected per sweep by the Gibbs loop and carried
/// home in [`crate::fault::RecoveryLog::accept`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamAcceptance {
    /// The parameter's name (from the model's parameter table).
    pub parameter: &'static str,
    /// Kernel steps taken.
    pub steps: u64,
    /// Steps on which the parameter moved.
    pub accepted: u64,
}

impl ParamAcceptance {
    /// Fraction of steps accepted (0 when no steps were taken).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }
}

/// One adaptive random-walk Metropolis updater for a scalar parameter
/// restricted to `(lo, hi)` (proposals outside the box are rejected,
/// which is a valid Metropolis move against the truncated target).
///
/// # Examples
///
/// ```
/// use srm_mcmc::metropolis::AdaptiveRw;
/// use srm_rand::SplitMix64;
///
/// let mut rng = SplitMix64::seed_from(5);
/// let mut kernel = AdaptiveRw::new(0.0, -5.0, 5.0);
/// let mut x = 0.0;
/// for _ in 0..2_000 {
///     x = kernel.step(|v| -0.5 * v * v, x, &mut rng);
/// }
/// assert!((-5.0..=5.0).contains(&x));
/// assert!(kernel.acceptance_rate() > 0.2 && kernel.acceptance_rate() < 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRw {
    lo: f64,
    hi: f64,
    ln_step: f64,
    steps: u64,
    accepted: u64,
    adapt: bool,
}

impl AdaptiveRw {
    /// Creates a kernel with an initial step size (standard deviation
    /// of the proposal). `initial_step <= 0` defaults to 10 % of the
    /// support width.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn new(initial_step: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "AdaptiveRw requires lo < hi");
        let step = if initial_step > 0.0 {
            initial_step
        } else {
            0.1 * (hi - lo)
        };
        Self {
            lo,
            hi,
            ln_step: step.ln(),
            steps: 0,
            accepted: 0,
            adapt: true,
        }
    }

    /// Fallible form of [`AdaptiveRw::new`]: an inverted support comes
    /// back as [`crate::fault::SrmError::InvalidConfig`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// Returns [`crate::fault::SrmError::InvalidConfig`] if
    /// `lo >= hi`.
    pub fn try_new(initial_step: f64, lo: f64, hi: f64) -> Result<Self, crate::fault::SrmError> {
        if lo < hi {
            Ok(Self::new(initial_step, lo, hi))
        } else {
            Err(crate::fault::SrmError::InvalidConfig {
                detail: format!("AdaptiveRw requires lo < hi (got {lo} >= {hi})"),
            })
        }
    }

    /// Freezes adaptation (call after burn-in for exact invariance).
    pub fn freeze(&mut self) {
        self.adapt = false;
    }

    /// The current proposal standard deviation.
    #[must_use]
    pub fn step_size(&self) -> f64 {
        self.ln_step.exp()
    }

    /// Empirical acceptance rate so far (1.0 before the first step).
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// Total Metropolis steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Accepted proposals so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// The kernel's counters as a named [`ParamAcceptance`] record.
    #[must_use]
    pub fn acceptance(&self, parameter: &'static str) -> ParamAcceptance {
        ParamAcceptance {
            parameter,
            steps: self.steps,
            accepted: self.accepted,
        }
    }

    /// One Metropolis step against the log-density `ln_f`, starting
    /// from `x0` (must be inside the support with finite density).
    ///
    /// Returns the new state (possibly `x0` on rejection).
    pub fn step<F, R>(&mut self, ln_f: F, x0: f64, rng: &mut R) -> f64
    where
        F: Fn(f64) -> f64,
        R: Rng + ?Sized,
    {
        let _span = srm_obs::profile::span("proposal");
        let f0 = ln_f(x0);
        debug_assert!(f0.is_finite(), "starting point must be feasible");
        let proposal = x0 + self.step_size() * Normal::standard().sample(rng);
        self.steps += 1;

        let accepted = if proposal > self.lo && proposal < self.hi {
            let f1 = ln_f(proposal);
            f1 >= f0 || rng.next_open_f64().ln() < f1 - f0
        } else {
            false
        };
        if accepted {
            self.accepted += 1;
        }

        if self.adapt {
            // Robbins–Monro on the log step size with gain ~ t^{-0.6}.
            let gain = (self.steps as f64).powf(-0.6);
            let delta = if accepted {
                1.0 - TARGET_ACCEPTANCE
            } else {
                -TARGET_ACCEPTANCE
            };
            self.ln_step += gain * delta;
            // Keep the proposal scale sane relative to the support.
            let max_ln = ((self.hi - self.lo) * 10.0).ln();
            let min_ln = ((self.hi - self.lo) * 1e-9).ln();
            self.ln_step = self.ln_step.clamp(min_ln, max_ln);
        }

        if accepted {
            proposal
        } else {
            x0
        }
    }

    /// Fallible form of [`AdaptiveRw::step`]: a non-finite density at
    /// the current state is reported instead of silently stepping (or
    /// tripping the debug assertion). Consumes the RNG identically to
    /// [`AdaptiveRw::step`] on the success path.
    ///
    /// # Errors
    ///
    /// Returns the non-finite `ln_f(x0)` value if the starting point
    /// is infeasible.
    pub fn try_step<F, R>(&mut self, ln_f: F, x0: f64, rng: &mut R) -> Result<f64, f64>
    where
        F: Fn(f64) -> f64,
        R: Rng + ?Sized,
    {
        let f0 = ln_f(x0);
        if !f0.is_finite() {
            return Err(f0);
        }
        Ok(self.step(ln_f, x0, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_rand::SplitMix64;

    fn run_chain<F: Fn(f64) -> f64>(
        ln_f: F,
        lo: f64,
        hi: f64,
        x0: f64,
        n: usize,
        seed: u64,
    ) -> (Vec<f64>, AdaptiveRw) {
        let mut rng = SplitMix64::seed_from(seed);
        let mut kernel = AdaptiveRw::new(0.0, lo, hi);
        let mut x = x0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i == n / 4 {
                kernel.freeze();
            }
            x = kernel.step(&ln_f, x, &mut rng);
            out.push(x);
        }
        (out, kernel)
    }

    #[test]
    fn recovers_normal_moments() {
        let (draws, kernel) = run_chain(|x| -0.5 * x * x, -20.0, 20.0, 3.0, 80_000, 301);
        let tail = &draws[20_000..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let var: f64 = tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
        let rate = kernel.acceptance_rate();
        assert!((0.3..0.6).contains(&rate), "acceptance = {rate}");
    }

    #[test]
    fn adaptation_targets_acceptance_rate() {
        // Start with an absurd step; adaptation must pull the rate
        // toward 0.44.
        let mut rng = SplitMix64::seed_from(302);
        let mut kernel = AdaptiveRw::new(1e6, -50.0, 50.0);
        let mut x = 0.0;
        for _ in 0..20_000 {
            x = kernel.step(|v| -0.5 * v * v, x, &mut rng);
        }
        let rate = kernel.acceptance_rate();
        assert!((0.25..0.65).contains(&rate), "acceptance = {rate}");
        assert!(kernel.step_size() < 100.0, "step = {}", kernel.step_size());
    }

    #[test]
    fn respects_support() {
        let (draws, _) = run_chain(|_| 0.0, 2.0, 3.0, 2.5, 20_000, 303);
        assert!(draws.iter().all(|&x| (2.0..=3.0).contains(&x)));
        // Uniform target: mean near the midpoint.
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 2.5).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn rejection_keeps_current_state() {
        // Density is a point mass region: proposals away are rejected.
        let mut rng = SplitMix64::seed_from(304);
        let mut kernel = AdaptiveRw::new(100.0, -1e4, 1e4);
        kernel.freeze();
        let sharp = |x: f64| -1e8 * (x - 1.0).powi(2);
        let mut x = 1.0;
        for _ in 0..100 {
            x = kernel.step(sharp, x, &mut rng);
            assert!((x - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "requires lo < hi")]
    fn inverted_support_panics() {
        let _ = AdaptiveRw::new(1.0, 5.0, 5.0);
    }

    #[test]
    fn try_new_types_inverted_support() {
        assert!(AdaptiveRw::try_new(1.0, 5.0, 5.0).is_err());
        assert!(AdaptiveRw::try_new(1.0, 0.0, 5.0).is_ok());
    }

    #[test]
    fn try_step_matches_step_and_types_infeasible_start() {
        let ln_f = |x: f64| -0.5 * x * x;
        let mut rng_a = SplitMix64::seed_from(305);
        let mut rng_b = SplitMix64::seed_from(305);
        let mut ka = AdaptiveRw::new(0.5, -5.0, 5.0);
        let mut kb = AdaptiveRw::new(0.5, -5.0, 5.0);
        let mut xa = 0.2;
        let mut xb = 0.2;
        for _ in 0..500 {
            xa = ka.step(ln_f, xa, &mut rng_a);
            xb = kb.try_step(ln_f, xb, &mut rng_b).unwrap();
            assert_eq!(xa.to_bits(), xb.to_bits());
        }
        let mut rng = SplitMix64::seed_from(306);
        let mut kernel = AdaptiveRw::new(0.5, -5.0, 5.0);
        let err = kernel.try_step(|_| f64::NAN, 0.0, &mut rng).unwrap_err();
        assert!(err.is_nan());
    }
}
