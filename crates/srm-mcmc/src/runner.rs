//! Multi-chain parallel MCMC driver.
//!
//! Chains run on std scoped threads; chain `i` draws from the
//! `i`-th xoshiro256\*\* jump stream of the seed, so results are
//! bit-identical whether chains run serially or in parallel.
//!
//! [`run_chains_fault_tolerant`] is the panic-contained entry point:
//! each chain thread is wrapped in `catch_unwind`, faulted sweeps are
//! retried per [`RetryPolicy`], and a failed chain degrades the run to
//! partial output with an explicit [`ChainReport`] instead of aborting
//! the process.

use crate::chain::Chain;
use crate::fault::{panic_message, ChainReport, FaultPlan, RecoveryLog, RetryPolicy, SrmError};
use crate::gibbs::{GibbsSampler, SweepRecord};
use srm_obs::{Event, Recorder, NOOP};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run-length and seeding configuration for an MCMC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McmcConfig {
    /// Number of independent chains (≥ 1; Gelman–Rubin needs ≥ 2).
    pub chains: usize,
    /// Discarded warm-up sweeps per chain.
    pub burn_in: usize,
    /// Kept draws per chain.
    pub samples: usize,
    /// Keep every `thin`-th sweep after burn-in.
    pub thin: usize,
    /// Base seed; chain `i` uses jump stream `i`.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            chains: 4,
            burn_in: 2_000,
            samples: 10_000,
            thin: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

impl McmcConfig {
    /// A small configuration for unit tests and smoke runs.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            chains: 2,
            burn_in: 300,
            samples: 500,
            thin: 1,
            seed,
        }
    }

    /// Total kept draws across chains.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.chains * self.samples
    }
}

/// The output of a multi-chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct McmcOutput {
    /// One chain per configured stream, in stream order.
    pub chains: Vec<Chain>,
}

impl McmcOutput {
    /// Concatenates the draws of one parameter across all chains.
    #[must_use]
    pub fn pooled(&self, name: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for chain in &self.chains {
            if let Some(d) = chain.draws(name) {
                out.extend_from_slice(d);
            }
        }
        out
    }

    /// Per-chain draw slices for one parameter (for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`SrmError::MissingParameter`] naming the first chain
    /// that lacks `name` — a silent partial answer would corrupt
    /// cross-chain diagnostics.
    pub fn per_chain(&self, name: &str) -> Result<Vec<&[f64]>, SrmError> {
        self.chains
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.draws(name).ok_or_else(|| SrmError::MissingParameter {
                    parameter: name.to_owned(),
                    chain: i,
                })
            })
            .collect()
    }

    /// Parameter names (identical across chains); empty when the
    /// output holds no chains.
    #[must_use]
    pub fn names(&self) -> &[String] {
        self.chains.first().map_or(&[], |c| c.names())
    }
}

/// Fault-handling configuration for [`run_chains_fault_tolerant`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Per-chain retry budget for faulted sweeps.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (empty = none).
    pub fault_plan: FaultPlan,
}

impl RunOptions {
    /// No retries, no injection: the strictest configuration.
    #[must_use]
    pub fn none() -> Self {
        Self {
            retry: RetryPolicy::none(),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// The outcome of a fault-tolerant run: the surviving chains plus one
/// health report per configured chain.
#[derive(Debug, Clone)]
pub struct FaultTolerantRun {
    /// Surviving chains, in stream order (failed chains are absent).
    pub output: McmcOutput,
    /// One report per configured chain, in stream order.
    pub reports: Vec<ChainReport>,
}

impl FaultTolerantRun {
    /// Stream indices of chains that produced no output.
    #[must_use]
    pub fn failed_chains(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| !r.recovered)
            .map(|r| r.chain)
            .collect()
    }

    /// Whether any chain was lost (output is partial).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.reports.iter().any(|r| !r.recovered)
    }

    /// Total retries consumed across all chains.
    #[must_use]
    pub fn total_retries(&self) -> usize {
        self.reports.iter().map(|r| r.retries).sum()
    }
}

/// Runs `config.chains` chains in parallel with panic containment,
/// bounded retry, and optional deterministic fault injection.
///
/// Each chain thread is wrapped in `catch_unwind`; a panicking or
/// faulted chain is dropped from the output and described in its
/// [`ChainReport`], so the run degrades to partial output instead of
/// aborting. With default options and no faults the output is
/// bit-identical to [`run_chains`].
///
/// # Errors
///
/// Returns [`SrmError::InvalidConfig`] when `config.chains == 0`, and
/// the first failed chain's fault when *every* chain is lost.
pub fn run_chains_fault_tolerant(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    options: &RunOptions,
) -> Result<FaultTolerantRun, SrmError> {
    run_chains_fault_tolerant_traced(sampler, config, options, &NOOP)
}

/// [`run_chains_fault_tolerant`] with instrumentation: chain worker
/// threads emit sweep/fault/retry events to `recorder`, contained
/// panics are reported as [`Event::ChainPanicked`], and — after the
/// run is assembled — one [`Event::ChainReport`] per surviving chain,
/// so event-derived fault counters match the returned
/// [`FaultTolerantRun::reports`] exactly.
///
/// The recorder is observation-only: draws are bit-identical to the
/// untraced call for any recorder.
///
/// # Errors
///
/// Exactly as [`run_chains_fault_tolerant`].
pub fn run_chains_fault_tolerant_traced(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    options: &RunOptions,
    recorder: &dyn Recorder,
) -> Result<FaultTolerantRun, SrmError> {
    if config.chains == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "at least one chain is required".into(),
        });
    }
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    type Slot = Option<(Option<Chain>, ChainReport)>;
    let mut slots: Vec<Slot> = (0..config.chains).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let mut rng = base.split_stream(i as u64);
            let mut injector = options.fault_plan.injector_for(i);
            let retry = options.retry;
            scope.spawn(move || {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    sampler.try_run_chain_traced(
                        &mut rng,
                        config.burn_in,
                        config.samples,
                        config.thin,
                        &retry,
                        &mut injector,
                        &mut |_| {},
                        i,
                        recorder,
                    )
                }));
                *slot = Some(match caught {
                    Ok(Ok((
                        chain,
                        RecoveryLog {
                            retries,
                            last_fault,
                            accept,
                        },
                    ))) => (
                        Some(chain),
                        ChainReport {
                            chain: i,
                            fault: last_fault,
                            retries,
                            recovered: true,
                            accept,
                        },
                    ),
                    Ok(Err(failure)) => (
                        None,
                        ChainReport {
                            chain: i,
                            fault: Some(failure.fault),
                            retries: failure.retries,
                            recovered: false,
                            accept: Vec::new(),
                        },
                    ),
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        if recorder.enabled() {
                            recorder.record(&Event::ChainPanicked {
                                chain: i,
                                detail: message.clone(),
                            });
                        }
                        (
                            None,
                            ChainReport {
                                chain: i,
                                fault: Some(SrmError::ChainPanicked { chain: i, message }),
                                retries: 0,
                                recovered: false,
                                accept: Vec::new(),
                            },
                        )
                    }
                });
            });
        }
    });

    let mut chains = Vec::with_capacity(config.chains);
    let mut reports = Vec::with_capacity(config.chains);
    for slot in slots.into_iter().flatten() {
        let (chain, report) = slot;
        chains.extend(chain);
        reports.push(report);
    }
    if chains.is_empty() {
        let fault =
            reports
                .iter()
                .find_map(|r| r.fault.clone())
                .unwrap_or(SrmError::InvalidConfig {
                    detail: "no chains produced output".into(),
                });
        return Err(fault);
    }
    if recorder.enabled() {
        // Post-assembly summaries: counting these reproduces the
        // returned reports' fault/retry totals exactly.
        for report in &reports {
            recorder.record(&Event::ChainReport {
                chain: report.chain,
                recovered: report.recovered,
                retries: report.retries as u64,
                fault: report.fault.as_ref().map(|f| f.kind().to_string()),
            });
        }
    }
    Ok(FaultTolerantRun {
        output: McmcOutput { chains },
        reports,
    })
}

/// Runs `config.chains` chains of `sampler` in parallel and collects
/// them. Observers are not supported on the parallel path — use
/// [`run_chains_observed`] when WAIC accumulators must see each draw.
///
/// Thin strict wrapper over [`run_chains_fault_tolerant`] with no
/// retry and no injection: bit-identical output on fault-free runs,
/// and any fault aborts the process.
///
/// # Panics
///
/// Panics if `config.chains == 0` or any chain faults.
#[must_use]
pub fn run_chains(sampler: &GibbsSampler, config: &McmcConfig) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    match run_chains_fault_tolerant(sampler, config, &RunOptions::none()) {
        Ok(run) => {
            if let Some(report) = run.reports.iter().find(|r| !r.recovered) {
                panic!("{report}");
            }
            run.output
        }
        Err(e) => panic!("{e}"),
    }
}

/// Runs the chains *serially*, invoking `observer` on every kept draw
/// of every chain (chain order, then draw order). Deterministic and
/// identical to [`run_chains`] in the produced chains.
///
/// # Panics
///
/// Panics if `config.chains == 0`.
pub fn run_chains_observed(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    observer: &mut dyn FnMut(&SweepRecord<'_>),
) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    let mut chains = Vec::with_capacity(config.chains);
    for i in 0..config.chains {
        let mut rng = base.split_stream(i as u64);
        chains.push(sampler.run_chain(
            &mut rng,
            config.burn_in,
            config.samples,
            config.thin,
            observer,
        ));
    }
    McmcOutput { chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::PriorSpec;
    use srm_data::datasets;
    use srm_model::{DetectionModel, ZetaBounds};

    fn sampler(data: &srm_data::BugCountData) -> GibbsSampler {
        GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            data,
        )
    }

    #[test]
    fn parallel_and_serial_agree() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 3,
            burn_in: 100,
            samples: 150,
            thin: 1,
            seed: 99,
        };
        let par = run_chains(&s, &config);
        let ser = run_chains_observed(&s, &config, &mut |_| {});
        assert_eq!(par, ser);
    }

    #[test]
    fn pooled_concatenates_all_chains() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig::smoke(3);
        let out = run_chains(&s, &config);
        assert_eq!(out.pooled("residual").len(), config.total_samples());
        assert_eq!(out.per_chain("residual").unwrap().len(), config.chains);
        assert!(out.names().iter().any(|n| n == "lambda0"));
    }

    #[test]
    fn empty_output_has_no_names_and_missing_params_are_typed() {
        let empty = McmcOutput { chains: Vec::new() };
        assert!(empty.names().is_empty());
        assert!(empty.pooled("residual").is_empty());
        assert_eq!(empty.per_chain("residual").unwrap(), Vec::<&[f64]>::new());

        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let out = run_chains(&s, &McmcConfig::smoke(9));
        let err = out.per_chain("not_a_param").unwrap_err();
        assert!(matches!(
            err,
            crate::fault::SrmError::MissingParameter { ref parameter, chain: 0 }
                if parameter == "not_a_param"
        ));
    }

    #[test]
    fn fault_tolerant_run_matches_strict_run_when_fault_free() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig::smoke(12);
        let strict = run_chains(&s, &config);
        let tolerant = run_chains_fault_tolerant(
            &s,
            &config,
            &RunOptions {
                retry: RetryPolicy::default(),
                fault_plan: FaultPlan::none(),
            },
        )
        .unwrap();
        assert_eq!(strict, tolerant.output);
        assert!(!tolerant.is_degraded());
        assert_eq!(tolerant.total_retries(), 0);
        assert!(tolerant.reports.iter().all(|r| r.fault.is_none()));
    }

    #[test]
    fn zero_chains_is_a_typed_error() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 0,
            ..McmcConfig::smoke(1)
        };
        let err = run_chains_fault_tolerant(&s, &config, &RunOptions::none()).unwrap_err();
        assert!(matches!(err, crate::fault::SrmError::InvalidConfig { .. }));
    }

    #[test]
    fn chains_differ_across_streams() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let out = run_chains(&s, &McmcConfig::smoke(4));
        assert_ne!(out.chains[0], out.chains[1]);
    }

    #[test]
    fn observer_counts_total_draws() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 2,
            burn_in: 50,
            samples: 80,
            thin: 1,
            seed: 5,
        };
        let mut seen = 0usize;
        let _ = run_chains_observed(&s, &config, &mut |_| seen += 1);
        assert_eq!(seen, 160);
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = McmcConfig::default();
        assert_eq!(c.chains, 4);
        assert!(c.samples >= 10_000);
    }
}
