//! Multi-chain parallel MCMC driver.
//!
//! Chains run on crossbeam scoped threads; chain `i` draws from the
//! `i`-th xoshiro256\*\* jump stream of the seed, so results are
//! bit-identical whether chains run serially or in parallel.

use crate::chain::Chain;
use crate::gibbs::{GibbsSampler, SweepRecord};

/// Run-length and seeding configuration for an MCMC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McmcConfig {
    /// Number of independent chains (≥ 1; Gelman–Rubin needs ≥ 2).
    pub chains: usize,
    /// Discarded warm-up sweeps per chain.
    pub burn_in: usize,
    /// Kept draws per chain.
    pub samples: usize,
    /// Keep every `thin`-th sweep after burn-in.
    pub thin: usize,
    /// Base seed; chain `i` uses jump stream `i`.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            chains: 4,
            burn_in: 2_000,
            samples: 10_000,
            thin: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

impl McmcConfig {
    /// A small configuration for unit tests and smoke runs.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            chains: 2,
            burn_in: 300,
            samples: 500,
            thin: 1,
            seed,
        }
    }

    /// Total kept draws across chains.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.chains * self.samples
    }
}

/// The output of a multi-chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct McmcOutput {
    /// One chain per configured stream, in stream order.
    pub chains: Vec<Chain>,
}

impl McmcOutput {
    /// Concatenates the draws of one parameter across all chains.
    #[must_use]
    pub fn pooled(&self, name: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for chain in &self.chains {
            if let Some(d) = chain.draws(name) {
                out.extend_from_slice(d);
            }
        }
        out
    }

    /// Per-chain draw slices for one parameter (for diagnostics).
    #[must_use]
    pub fn per_chain(&self, name: &str) -> Vec<&[f64]> {
        self.chains
            .iter()
            .filter_map(|c| c.draws(name))
            .collect()
    }

    /// Parameter names (identical across chains).
    #[must_use]
    pub fn names(&self) -> &[String] {
        self.chains[0].names()
    }
}

/// Runs `config.chains` chains of `sampler` in parallel and collects
/// them. Observers are not supported on the parallel path — use
/// [`run_chains_observed`] when WAIC accumulators must see each draw.
///
/// # Panics
///
/// Panics if `config.chains == 0`.
#[must_use]
pub fn run_chains(sampler: &GibbsSampler, config: &McmcConfig) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    let mut chains: Vec<Option<Chain>> = (0..config.chains).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (i, slot) in chains.iter_mut().enumerate() {
            let mut rng = base.split_stream(i as u64);
            scope.spawn(move |_| {
                *slot = Some(sampler.run_chain(
                    &mut rng,
                    config.burn_in,
                    config.samples,
                    config.thin,
                    &mut |_| {},
                ));
            });
        }
    })
    .expect("chain thread panicked");
    McmcOutput {
        chains: chains.into_iter().map(|c| c.expect("chain ran")).collect(),
    }
}

/// Runs the chains *serially*, invoking `observer` on every kept draw
/// of every chain (chain order, then draw order). Deterministic and
/// identical to [`run_chains`] in the produced chains.
///
/// # Panics
///
/// Panics if `config.chains == 0`.
pub fn run_chains_observed(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    observer: &mut dyn FnMut(&SweepRecord<'_>),
) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    let mut chains = Vec::with_capacity(config.chains);
    for i in 0..config.chains {
        let mut rng = base.split_stream(i as u64);
        chains.push(sampler.run_chain(
            &mut rng,
            config.burn_in,
            config.samples,
            config.thin,
            observer,
        ));
    }
    McmcOutput { chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::PriorSpec;
    use srm_data::datasets;
    use srm_model::{DetectionModel, ZetaBounds};

    fn sampler(data: &srm_data::BugCountData) -> GibbsSampler {
        GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            data,
        )
    }

    #[test]
    fn parallel_and_serial_agree() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 3,
            burn_in: 100,
            samples: 150,
            thin: 1,
            seed: 99,
        };
        let par = run_chains(&s, &config);
        let ser = run_chains_observed(&s, &config, &mut |_| {});
        assert_eq!(par, ser);
    }

    #[test]
    fn pooled_concatenates_all_chains() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig::smoke(3);
        let out = run_chains(&s, &config);
        assert_eq!(out.pooled("residual").len(), config.total_samples());
        assert_eq!(out.per_chain("residual").len(), config.chains);
        assert!(out.names().iter().any(|n| n == "lambda0"));
    }

    #[test]
    fn chains_differ_across_streams() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let out = run_chains(&s, &McmcConfig::smoke(4));
        assert_ne!(out.chains[0], out.chains[1]);
    }

    #[test]
    fn observer_counts_total_draws() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 2,
            burn_in: 50,
            samples: 80,
            thin: 1,
            seed: 5,
        };
        let mut seen = 0usize;
        let _ = run_chains_observed(&s, &config, &mut |_| seen += 1);
        assert_eq!(seen, 160);
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = McmcConfig::default();
        assert_eq!(c.chains, 4);
        assert!(c.samples >= 10_000);
    }
}
