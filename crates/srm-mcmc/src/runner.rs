//! Multi-chain parallel MCMC driver.
//!
//! Chains run across a bounded pool of std scoped threads
//! ([`RunOptions::threads`]; default `min(chains, cores)`). Chain `i`
//! draws from the `i`-th xoshiro256\*\* jump stream of the seed and
//! workers pull chain indices from an atomic dispenser, so the draws
//! are bit-identical for any thread count — scheduling decides only
//! *when* a chain runs, never what it computes. Each worker buffers
//! its chains' trace events and the driver replays them in chain
//! order after the pool drains, so recorded traces are deterministic
//! too (streaming `diagnostic-checkpoint` events alone are delivered
//! live, in arrival order, so progress can be observed mid-run).
//!
//! [`run_chains_fault_tolerant`] is the panic-contained entry point:
//! each chain is wrapped in `catch_unwind`, faulted sweeps are
//! retried per [`RetryPolicy`], and a failed chain degrades the run to
//! partial output with an explicit [`ChainReport`] instead of aborting
//! the process.

use crate::chain::Chain;
use crate::fault::{panic_message, ChainReport, FaultPlan, RecoveryLog, RetryPolicy, SrmError};
use crate::gibbs::{GibbsSampler, SweepRecord};
use srm_obs::{Event, Recorder, NOOP};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Run-length and seeding configuration for an MCMC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McmcConfig {
    /// Number of independent chains (≥ 1; Gelman–Rubin needs ≥ 2).
    pub chains: usize,
    /// Discarded warm-up sweeps per chain.
    pub burn_in: usize,
    /// Kept draws per chain.
    pub samples: usize,
    /// Keep every `thin`-th sweep after burn-in.
    pub thin: usize,
    /// Base seed; chain `i` uses jump stream `i`.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            chains: 4,
            burn_in: 2_000,
            samples: 10_000,
            thin: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

impl McmcConfig {
    /// A small configuration for unit tests and smoke runs.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            chains: 2,
            burn_in: 300,
            samples: 500,
            thin: 1,
            seed,
        }
    }

    /// Total kept draws across chains.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.chains * self.samples
    }
}

/// The output of a multi-chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct McmcOutput {
    /// One chain per configured stream, in stream order.
    pub chains: Vec<Chain>,
}

impl McmcOutput {
    /// Concatenates the draws of one parameter across all chains.
    #[must_use]
    pub fn pooled(&self, name: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for chain in &self.chains {
            if let Some(d) = chain.draws(name) {
                out.extend_from_slice(d);
            }
        }
        out
    }

    /// Per-chain draw slices for one parameter (for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`SrmError::MissingParameter`] naming the first chain
    /// that lacks `name` — a silent partial answer would corrupt
    /// cross-chain diagnostics.
    pub fn per_chain(&self, name: &str) -> Result<Vec<&[f64]>, SrmError> {
        self.chains
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.draws(name).ok_or_else(|| SrmError::MissingParameter {
                    parameter: name.to_owned(),
                    chain: i,
                })
            })
            .collect()
    }

    /// Parameter names (identical across chains); empty when the
    /// output holds no chains.
    #[must_use]
    pub fn names(&self) -> &[String] {
        self.chains.first().map_or(&[], |c| c.names())
    }
}

/// Fault-handling and scheduling configuration for
/// [`run_chains_fault_tolerant`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Per-chain retry budget for faulted sweeps.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (empty = none).
    pub fault_plan: FaultPlan,
    /// Worker threads running the chains: `0` (the default) means
    /// auto, `min(chains, cores)`. Any value yields bit-identical
    /// draws — see [`effective_threads`].
    pub threads: usize,
    /// Streaming diagnostic-checkpoint cadence in sweeps; `0` (the
    /// default) disables checkpoints. Checkpoints never touch the
    /// sampler's RNG, so any cadence yields bit-identical draws.
    pub checkpoint_every: usize,
    /// Phase-time profiler, installed on every worker thread for the
    /// duration of its chains. `None` (the default) leaves the span
    /// probes inert. The profiler only reads clocks — draws are
    /// bit-identical with it on or off.
    pub profiler: Option<std::sync::Arc<srm_obs::Profiler>>,
}

impl RunOptions {
    /// No retries, no injection, auto thread count: the strictest
    /// configuration.
    #[must_use]
    pub fn none() -> Self {
        Self {
            retry: RetryPolicy::none(),
            fault_plan: FaultPlan::none(),
            threads: 0,
            checkpoint_every: 0,
            profiler: None,
        }
    }

    /// [`RunOptions::none`] pinned to `threads` workers.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::none()
        }
    }
}

/// Resolves a requested worker count against the chain count and the
/// machine: `0` means auto (`min(chains, available cores)`), anything
/// else is clamped to `[1, chains]`. More workers than chains would
/// only idle, so the clamp is loss-free.
#[must_use]
pub fn effective_threads(requested: usize, chains: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if requested == 0 {
        chains.min(cores).max(1)
    } else {
        requested.min(chains.max(1))
    }
}

/// Buffers one chain's trace events on the worker thread so the
/// driver can replay them in chain order after the pool drains —
/// recorded traces stay deterministic under any scheduling.
///
/// `enabled`/`sweep_stride` delegate to the real recorder, so stride
/// gating (and the disabled fast path) behave exactly as they would
/// with direct recording.
///
/// [`Event::DiagnosticCheckpoint`] is the one exception: it is
/// forwarded to the real recorder immediately (and not buffered), so
/// live progress consumers see convergence while the pool is still
/// running. Checkpoint content is per-chain and deterministic for any
/// thread count; only the cross-chain *interleaving* of checkpoint
/// lines in a trace follows worker scheduling (single-threaded runs
/// interleave deterministically, and per-chain order is always
/// monotone in `sweep`).
struct BufferRecorder<'a> {
    inner: &'a dyn Recorder,
    events: Mutex<Vec<Event>>,
}

impl<'a> BufferRecorder<'a> {
    fn new(inner: &'a dyn Recorder) -> Self {
        Self {
            inner,
            events: Mutex::new(Vec::new()),
        }
    }

    fn into_events(self) -> Vec<Event> {
        self.events
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Recorder for BufferRecorder<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn sweep_stride(&self) -> usize {
        self.inner.sweep_stride()
    }

    fn record(&self, event: &Event) {
        if matches!(event, Event::DiagnosticCheckpoint { .. }) {
            // Live forwarding: progress consumers want checkpoints as
            // they happen, not after the pool drains.
            self.inner.record(event);
            return;
        }
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// The outcome of a fault-tolerant run: the surviving chains plus one
/// health report per configured chain.
#[derive(Debug, Clone)]
pub struct FaultTolerantRun {
    /// Surviving chains, in stream order (failed chains are absent).
    pub output: McmcOutput,
    /// One report per configured chain, in stream order.
    pub reports: Vec<ChainReport>,
}

impl FaultTolerantRun {
    /// Stream indices of chains that produced no output.
    #[must_use]
    pub fn failed_chains(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| !r.recovered)
            .map(|r| r.chain)
            .collect()
    }

    /// Whether any chain was lost (output is partial).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.reports.iter().any(|r| !r.recovered)
    }

    /// Total retries consumed across all chains.
    #[must_use]
    pub fn total_retries(&self) -> usize {
        self.reports.iter().map(|r| r.retries).sum()
    }
}

/// Runs `config.chains` chains in parallel with panic containment,
/// bounded retry, and optional deterministic fault injection.
///
/// Each chain thread is wrapped in `catch_unwind`; a panicking or
/// faulted chain is dropped from the output and described in its
/// [`ChainReport`], so the run degrades to partial output instead of
/// aborting. With default options and no faults the output is
/// bit-identical to [`run_chains`].
///
/// # Errors
///
/// Returns [`SrmError::InvalidConfig`] when `config.chains == 0`, and
/// the first failed chain's fault when *every* chain is lost.
pub fn run_chains_fault_tolerant(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    options: &RunOptions,
) -> Result<FaultTolerantRun, SrmError> {
    run_chains_fault_tolerant_traced(sampler, config, options, &NOOP)
}

/// One chain's finished work: its draws (absent when lost), its
/// report, its buffered trace events awaiting ordered replay, and its
/// wall time.
///
/// Produced by [`run_chain_task`] — the schedulable unit of a
/// multi-chain run. External schedulers (the batch executor fits
/// chains of *many* datasets on one pool) collect outcomes in any
/// order and hand them to [`assemble_run`]; because an outcome
/// depends only on its chain index, the result is bit-identical to
/// [`run_chains_fault_tolerant_traced`] for any schedule.
#[derive(Debug)]
pub struct ChainOutcome {
    /// The chain's draws; `None` when the chain was lost.
    pub chain: Option<Chain>,
    /// The chain's health report.
    pub report: ChainReport,
    /// Buffered trace events, replayed in chain order at assembly.
    pub events: Vec<Event>,
    /// Wall-clock time the chain spent on its worker thread, ms.
    pub wall_ms: f64,
}

/// [`run_chains_fault_tolerant`] with instrumentation: chain workers
/// emit sweep/fault/retry events to per-chain buffers that are
/// replayed into `recorder` in chain order once the pool drains,
/// contained panics are reported as [`Event::ChainPanicked`], and —
/// after the run is assembled — one [`Event::ChainReport`] per
/// configured chain (carrying that chain's wall time), so
/// event-derived fault counters match the returned
/// [`FaultTolerantRun::reports`] exactly.
///
/// The recorder is observation-only: draws are bit-identical to the
/// untraced call for any recorder, and the replayed event stream is
/// identical for any thread count (wall-time stamps excepted).
/// `diagnostic-checkpoint` events are the one exception to ordered
/// replay: they are forwarded live (for progress consumers) and so
/// interleave across chains in arrival order — deterministic with one
/// worker, scheduling-dependent otherwise; each chain's own
/// checkpoints are always monotone in `sweep`, and their *content* is
/// thread-count-invariant.
///
/// # Errors
///
/// Exactly as [`run_chains_fault_tolerant`].
pub fn run_chains_fault_tolerant_traced(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    options: &RunOptions,
    recorder: &dyn Recorder,
) -> Result<FaultTolerantRun, SrmError> {
    if config.chains == 0 {
        return Err(SrmError::InvalidConfig {
            detail: "at least one chain is required".into(),
        });
    }
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    let pool = effective_threads(options.threads, config.chains);
    let mut slots: Vec<Option<ChainOutcome>> = (0..config.chains).map(|_| None).collect();
    // Workers pull chain indices from this dispenser; the RNG stream,
    // fault plan and events of chain `i` depend only on `i`, so the
    // pull order is free to vary with scheduling.
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|w| {
                let (next, base) = (&next, &base);
                let worker = move || {
                    let mut done: Vec<(usize, ChainOutcome)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= config.chains {
                            break;
                        }
                        done.push((
                            i,
                            run_chain_task(sampler, base, config, options, recorder, i),
                        ));
                    }
                    done
                };
                // Named workers so diagnostics that attribute by
                // thread (the srm-obs flight recorder's per-thread
                // rings, panic messages) read `srm-chain-N` instead
                // of `<unnamed>`. Naming is best-effort: the worker
                // closure only borrows, so it can be respawned
                // anonymously if the named spawn fails.
                std::thread::Builder::new()
                    .name(format!("srm-chain-{w}"))
                    .spawn_scoped(scope, worker)
                    .unwrap_or_else(|_| scope.spawn(worker))
            })
            .collect();
        for handle in handles {
            if let Ok(done) = handle.join() {
                for (i, slot) in done {
                    slots[i] = Some(slot);
                }
            }
        }
    });
    assemble_run(config, slots, recorder)
}

/// Assembles a [`FaultTolerantRun`] from per-chain outcomes collected
/// by any scheduler: missing slots are reported as lost chains, each
/// chain's buffered events are replayed into `recorder` in chain
/// order, and one [`Event::ChainReport`] per configured chain is
/// emitted after assembly. This is the exact tail of
/// [`run_chains_fault_tolerant_traced`], exposed so external
/// schedulers (e.g. the cross-dataset batch executor) produce
/// bit-identical runs and traces.
///
/// `outcomes` must hold one entry per configured chain, in chain
/// order (`outcomes.len() == config.chains`).
///
/// # Errors
///
/// Returns the first failed chain's fault when every chain is lost.
pub fn assemble_run(
    config: &McmcConfig,
    slots: Vec<Option<ChainOutcome>>,
    recorder: &dyn Recorder,
) -> Result<FaultTolerantRun, SrmError> {
    let on = recorder.enabled();
    let mut chains = Vec::with_capacity(config.chains);
    let mut reports = Vec::with_capacity(config.chains);
    let mut walls = Vec::with_capacity(config.chains);
    for (i, slot) in slots.into_iter().enumerate() {
        // A missing slot means a worker died outside `catch_unwind` —
        // defensively reported as a lost chain rather than a panic.
        let outcome = slot.unwrap_or_else(|| ChainOutcome {
            chain: None,
            report: ChainReport {
                chain: i,
                fault: Some(SrmError::ChainPanicked {
                    chain: i,
                    message: "chain worker thread lost".into(),
                }),
                retries: 0,
                recovered: false,
                accept: Vec::new(),
            },
            events: Vec::new(),
            wall_ms: 0.0,
        });
        if on {
            // Replay in chain order: the merged trace is deterministic
            // for any thread count.
            for event in &outcome.events {
                recorder.record(event);
            }
        }
        chains.extend(outcome.chain);
        reports.push(outcome.report);
        walls.push(outcome.wall_ms);
    }
    if chains.is_empty() {
        let fault =
            reports
                .iter()
                .find_map(|r| r.fault.clone())
                .unwrap_or(SrmError::InvalidConfig {
                    detail: "no chains produced output".into(),
                });
        return Err(fault);
    }
    if on {
        // Post-assembly summaries: counting these reproduces the
        // returned reports' fault/retry totals exactly.
        for (report, wall_ms) in reports.iter().zip(&walls) {
            recorder.record(&Event::ChainReport {
                chain: report.chain,
                recovered: report.recovered,
                retries: report.retries as u64,
                fault: report.fault.as_ref().map(|f| f.kind().to_string()),
                wall_ms: *wall_ms,
            });
        }
    }
    Ok(FaultTolerantRun {
        output: McmcOutput { chains },
        reports,
    })
}

/// Runs chain `i` with panic containment on the calling thread,
/// buffering its events for ordered replay at [`assemble_run`].
///
/// This is the schedulable unit of a run: chain `i` draws from the
/// `i`-th jump stream of `base` (which must come from
/// `Xoshiro256StarStar::seed_from(config.seed)`), so an outcome
/// depends only on `(sampler, config, i)` — never on which worker ran
/// it or when. `recorder` is consulted for `enabled`/stride gating
/// and receives live `diagnostic-checkpoint` events; everything else
/// is buffered into the outcome.
pub fn run_chain_task(
    sampler: &GibbsSampler,
    base: &srm_rand::Xoshiro256StarStar,
    config: &McmcConfig,
    options: &RunOptions,
    recorder: &dyn Recorder,
    i: usize,
) -> ChainOutcome {
    let on = recorder.enabled();
    let mut rng = base.split_stream(i as u64);
    let mut injector = options.fault_plan.injector_for(i);
    let retry = options.retry;
    let buffer = BufferRecorder::new(recorder);
    let chain_recorder: &dyn Recorder = if on { &buffer } else { &NOOP };
    // Install (a no-op when this worker already carries the profiler
    // from an earlier chain assignment — the outer guard wins) and
    // wrap the whole chain in a root span.
    let _profile_guard = srm_obs::profile::install(options.profiler.as_ref());
    let _chain_span = srm_obs::profile::span("chain");
    let started = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        sampler.try_run_chain_traced(
            &mut rng,
            config.burn_in,
            config.samples,
            config.thin,
            &retry,
            &mut injector,
            &mut |_| {},
            i,
            chain_recorder,
            options.checkpoint_every,
        )
    }));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (chain, report) = match caught {
        Ok(Ok((
            chain,
            RecoveryLog {
                retries,
                last_fault,
                accept,
            },
        ))) => (
            Some(chain),
            ChainReport {
                chain: i,
                fault: last_fault,
                retries,
                recovered: true,
                accept,
            },
        ),
        Ok(Err(failure)) => (
            None,
            ChainReport {
                chain: i,
                fault: Some(failure.fault),
                retries: failure.retries,
                recovered: false,
                accept: Vec::new(),
            },
        ),
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            if on {
                buffer.record(&Event::ChainPanicked {
                    chain: i,
                    detail: message.clone(),
                });
            }
            (
                None,
                ChainReport {
                    chain: i,
                    fault: Some(SrmError::ChainPanicked { chain: i, message }),
                    retries: 0,
                    recovered: false,
                    accept: Vec::new(),
                },
            )
        }
    };
    ChainOutcome {
        chain,
        report,
        events: buffer.into_events(),
        wall_ms,
    }
}

/// Runs `config.chains` chains of `sampler` in parallel and collects
/// them. Observers are not supported on the parallel path — use
/// [`run_chains_observed`] when WAIC accumulators must see each draw.
///
/// Thin strict wrapper over [`run_chains_fault_tolerant`] with no
/// retry and no injection: bit-identical output on fault-free runs,
/// and any fault aborts the process.
///
/// # Panics
///
/// Panics if `config.chains == 0` or any chain faults.
#[must_use]
pub fn run_chains(sampler: &GibbsSampler, config: &McmcConfig) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    match run_chains_fault_tolerant(sampler, config, &RunOptions::none()) {
        Ok(run) => {
            if let Some(report) = run.reports.iter().find(|r| !r.recovered) {
                panic!("{report}");
            }
            run.output
        }
        Err(e) => panic!("{e}"),
    }
}

/// Runs the chains *serially*, invoking `observer` on every kept draw
/// of every chain (chain order, then draw order). Deterministic and
/// identical to [`run_chains`] in the produced chains.
///
/// # Panics
///
/// Panics if `config.chains == 0`.
pub fn run_chains_observed(
    sampler: &GibbsSampler,
    config: &McmcConfig,
    observer: &mut dyn FnMut(&SweepRecord<'_>),
) -> McmcOutput {
    assert!(config.chains > 0, "at least one chain is required");
    let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
    let mut chains = Vec::with_capacity(config.chains);
    for i in 0..config.chains {
        let mut rng = base.split_stream(i as u64);
        chains.push(sampler.run_chain(
            &mut rng,
            config.burn_in,
            config.samples,
            config.thin,
            observer,
        ));
    }
    McmcOutput { chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::PriorSpec;
    use srm_data::datasets;
    use srm_model::{DetectionModel, ZetaBounds};

    fn sampler(data: &srm_data::BugCountData) -> GibbsSampler {
        GibbsSampler::new(
            PriorSpec::Poisson { lambda_max: 2e3 },
            DetectionModel::Constant,
            ZetaBounds::default(),
            data,
        )
    }

    #[test]
    fn parallel_and_serial_agree() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 3,
            burn_in: 100,
            samples: 150,
            thin: 1,
            seed: 99,
        };
        let par = run_chains(&s, &config);
        let ser = run_chains_observed(&s, &config, &mut |_| {});
        assert_eq!(par, ser);
    }

    #[test]
    fn pooled_concatenates_all_chains() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig::smoke(3);
        let out = run_chains(&s, &config);
        assert_eq!(out.pooled("residual").len(), config.total_samples());
        assert_eq!(out.per_chain("residual").unwrap().len(), config.chains);
        assert!(out.names().iter().any(|n| n == "lambda0"));
    }

    #[test]
    fn empty_output_has_no_names_and_missing_params_are_typed() {
        let empty = McmcOutput { chains: Vec::new() };
        assert!(empty.names().is_empty());
        assert!(empty.pooled("residual").is_empty());
        assert_eq!(empty.per_chain("residual").unwrap(), Vec::<&[f64]>::new());

        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let out = run_chains(&s, &McmcConfig::smoke(9));
        let err = out.per_chain("not_a_param").unwrap_err();
        assert!(matches!(
            err,
            crate::fault::SrmError::MissingParameter { ref parameter, chain: 0 }
                if parameter == "not_a_param"
        ));
    }

    #[test]
    fn fault_tolerant_run_matches_strict_run_when_fault_free() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig::smoke(12);
        let strict = run_chains(&s, &config);
        let tolerant = run_chains_fault_tolerant(
            &s,
            &config,
            &RunOptions {
                retry: RetryPolicy::default(),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(strict, tolerant.output);
        assert!(!tolerant.is_degraded());
        assert_eq!(tolerant.total_retries(), 0);
        assert!(tolerant.reports.iter().all(|r| r.fault.is_none()));
    }

    #[test]
    fn zero_chains_is_a_typed_error() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 0,
            ..McmcConfig::smoke(1)
        };
        let err = run_chains_fault_tolerant(&s, &config, &RunOptions::none()).unwrap_err();
        assert!(matches!(err, crate::fault::SrmError::InvalidConfig { .. }));
    }

    #[test]
    fn chains_differ_across_streams() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let out = run_chains(&s, &McmcConfig::smoke(4));
        assert_ne!(out.chains[0], out.chains[1]);
    }

    #[test]
    fn observer_counts_total_draws() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 2,
            burn_in: 50,
            samples: 80,
            thin: 1,
            seed: 5,
        };
        let mut seen = 0usize;
        let _ = run_chains_observed(&s, &config, &mut |_| seen += 1);
        assert_eq!(seen, 160);
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = McmcConfig::default();
        assert_eq!(c.chains, 4);
        assert!(c.samples >= 10_000);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(effective_threads(0, 4), 4.min(cores).max(1));
        assert_eq!(effective_threads(1, 4), 1);
        assert_eq!(effective_threads(4, 4), 4);
        // More workers than chains would idle: clamped down.
        assert_eq!(effective_threads(64, 4), 4);
        // Degenerate inputs stay positive.
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(3, 0), 1);
    }

    #[test]
    fn external_scheduling_matches_the_pooled_runner() {
        // Collect chain outcomes in reverse order on the caller's
        // thread — the most hostile legal schedule — and assemble.
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 3,
            burn_in: 80,
            samples: 120,
            thin: 1,
            seed: 777,
        };
        let options = RunOptions::none();
        let base = srm_rand::Xoshiro256StarStar::seed_from(config.seed);
        let mut slots: Vec<Option<ChainOutcome>> = (0..config.chains).map(|_| None).collect();
        for i in (0..config.chains).rev() {
            slots[i] = Some(run_chain_task(&s, &base, &config, &options, &NOOP, i));
        }
        let assembled = assemble_run(&config, slots, &NOOP).unwrap();
        let pooled = run_chains_fault_tolerant(&s, &config, &options).unwrap();
        assert_eq!(assembled.output, pooled.output);
        assert_eq!(assembled.reports.len(), pooled.reports.len());
    }

    #[test]
    fn any_thread_count_is_bit_identical() {
        let data = datasets::musa_cc96().truncated(25).unwrap();
        let s = sampler(&data);
        let config = McmcConfig {
            chains: 4,
            burn_in: 100,
            samples: 150,
            thin: 1,
            seed: 4_321,
        };
        let serial = run_chains_observed(&s, &config, &mut |_| {});
        for threads in [1usize, 2, 4, 0] {
            let run =
                run_chains_fault_tolerant(&s, &config, &RunOptions::with_threads(threads)).unwrap();
            assert_eq!(run.output, serial, "threads={threads} diverged");
            assert_eq!(run.reports.len(), config.chains);
        }
    }
}
