//! Univariate slice sampling (Neal 2003) on a bounded interval.
//!
//! The conditionals of `ζ` (and of `α0` in the NB case) have no
//! conjugate form; slice sampling needs no step-size tuning, leaves
//! the target invariant exactly, and degrades gracefully on the
//! plateau-shaped log-likelihoods these models produce.

use srm_rand::Rng;

/// Why a slice update could not produce a draw. Mapped onto
/// [`crate::fault::SrmError`] by the Gibbs sweep, which knows the
/// parameter name and sweep index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SliceError {
    /// `lo >= hi`: no interval to sample on.
    InvalidInterval {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The starting point lies outside `[lo, hi]`.
    StartOutOfRange {
        /// The starting point.
        x0: f64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `ln_f(x0)` is −∞ or NaN: the chain sits on a zero-density
    /// point and the vertical step is undefined.
    InfeasibleStart {
        /// The starting point.
        x0: f64,
        /// The non-finite log-density observed there.
        ln_f0: f64,
    },
    /// Shrinkage collapsed the bracket to zero width without finding
    /// a point inside the slice (a pathologically discontinuous
    /// target).
    Exhausted,
}

/// Configuration of the stepping-out slice sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceConfig {
    /// Initial bracket width, as a fraction of the support length.
    pub width_fraction: f64,
    /// Maximum stepping-out expansions on each side.
    pub max_step_out: usize,
    /// Maximum shrinkage iterations before giving up and returning
    /// the current point (a formally valid, if wasteful, move).
    pub max_shrink: usize,
}

impl Default for SliceConfig {
    fn default() -> Self {
        Self {
            width_fraction: 0.1,
            max_step_out: 16,
            max_shrink: 100,
        }
    }
}

/// Draws one slice-sampling update for a log-density `ln_f` restricted
/// to `(lo, hi)`, starting from `x0` (which must satisfy
/// `ln_f(x0) > -inf`).
///
/// Returns the new point; the chain `x0 → x` leaves the density
/// `exp(ln_f)` (restricted and renormalised on the interval)
/// invariant.
///
/// # Panics
///
/// Panics if `lo >= hi`, `x0` is outside `[lo, hi]`, or
/// `ln_f(x0) = -inf`.
///
/// # Examples
///
/// ```
/// use srm_mcmc::slice::{slice_sample, SliceConfig};
/// use srm_rand::SplitMix64;
///
/// // Sample a truncated standard normal on (-1, 3).
/// let mut rng = SplitMix64::seed_from(1);
/// let mut x = 0.5;
/// for _ in 0..100 {
///     x = slice_sample(|v| -0.5 * v * v, x, -1.0, 3.0, &SliceConfig::default(), &mut rng);
///     assert!((-1.0..=3.0).contains(&x));
/// }
/// ```
pub fn slice_sample<F, R>(
    ln_f: F,
    x0: f64,
    lo: f64,
    hi: f64,
    config: &SliceConfig,
    rng: &mut R,
) -> f64
where
    F: Fn(f64) -> f64,
    R: Rng + ?Sized,
{
    match try_slice_sample(ln_f, x0, lo, hi, config, rng) {
        Ok(x) => x,
        // Historical behaviour: an exhausted bracket keeps the current
        // point (a formally valid, if wasteful, move).
        Err(SliceError::Exhausted) => x0,
        Err(SliceError::InvalidInterval { lo, hi }) => {
            panic!("slice_sample requires lo < hi ({lo} >= {hi})")
        }
        Err(SliceError::StartOutOfRange { x0, lo, hi }) => {
            panic!("starting point {x0} outside [{lo}, {hi}]")
        }
        Err(SliceError::InfeasibleStart { .. }) => {
            panic!("slice_sample requires a feasible starting point")
        }
    }
}

/// Fallible form of [`slice_sample`]: the same update, but invalid
/// intervals, infeasible starting points, and exhausted brackets come
/// back as [`SliceError`] values instead of panics. Consumes the RNG
/// identically to [`slice_sample`] on the success path.
///
/// # Errors
///
/// See [`SliceError`] for the failure cases.
pub fn try_slice_sample<F, R>(
    ln_f: F,
    x0: f64,
    lo: f64,
    hi: f64,
    config: &SliceConfig,
    rng: &mut R,
) -> Result<f64, SliceError>
where
    F: Fn(f64) -> f64,
    R: Rng + ?Sized,
{
    // Negated comparisons are deliberate throughout: a NaN bound or
    // NaN log-density must take the error path.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(lo < hi) {
        return Err(SliceError::InvalidInterval { lo, hi });
    }
    if !(lo..=hi).contains(&x0) {
        return Err(SliceError::StartOutOfRange { x0, lo, hi });
    }
    let f0 = ln_f(x0);
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be infeasible too
    if !(f0 > f64::NEG_INFINITY) {
        return Err(SliceError::InfeasibleStart { x0, ln_f0: f0 });
    }

    // Vertical step: ln u = ln f(x0) − Exp(1).
    let ln_u = f0 + rng.next_open_f64().ln();

    // Horizontal step: position a width-w bracket around x0, then
    // step out while the endpoints are still inside the slice.
    let w = (hi - lo) * config.width_fraction;
    let mut left = (x0 - w * rng.next_f64()).max(lo);
    let mut right = (left + w).min(hi);
    for _ in 0..config.max_step_out {
        if left <= lo || ln_f(left) <= ln_u {
            break;
        }
        left = (left - w).max(lo);
    }
    for _ in 0..config.max_step_out {
        if right >= hi || ln_f(right) <= ln_u {
            break;
        }
        right = (right + w).min(hi);
    }

    // Shrinkage: sample inside the bracket, shrink toward x0 on
    // rejection.
    for _ in 0..config.max_shrink {
        let x = left + (right - left) * rng.next_f64();
        if ln_f(x) > ln_u {
            return Ok(x);
        }
        if x < x0 {
            left = x;
        } else {
            right = x;
        }
        if (right - left) < 1e-300 {
            return Err(SliceError::Exhausted);
        }
    }
    Ok(x0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_rand::SplitMix64;

    fn run_chain<F: Fn(f64) -> f64>(
        ln_f: F,
        lo: f64,
        hi: f64,
        x0: f64,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from(seed);
        let cfg = SliceConfig::default();
        let mut x = x0;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = slice_sample(&ln_f, x, lo, hi, &cfg, &mut rng);
            out.push(x);
        }
        out
    }

    #[test]
    fn samples_stay_in_support() {
        let draws = run_chain(|x| -x.abs(), -2.0, 5.0, 0.0, 5_000, 70);
        assert!(draws.iter().all(|&x| (-2.0..=5.0).contains(&x)));
    }

    #[test]
    fn recovers_truncated_normal_moments() {
        // Standard normal on (-10, 10): effectively untruncated.
        let draws = run_chain(|x| -0.5 * x * x, -10.0, 10.0, 1.0, 60_000, 71);
        let burn = &draws[5_000..];
        let mean: f64 = burn.iter().sum::<f64>() / burn.len() as f64;
        let var: f64 = burn.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / burn.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn recovers_beta_distribution() {
        // Beta(3, 2) log-density on (0, 1).
        let ln_f = |x: f64| 2.0 * x.ln() + (1.0 - x).ln();
        let draws = run_chain(ln_f, 1e-12, 1.0 - 1e-12, 0.5, 60_000, 72);
        let burn = &draws[5_000..];
        let mean: f64 = burn.iter().sum::<f64>() / burn.len() as f64;
        assert!((mean - 0.6).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn handles_sharply_peaked_target() {
        // Near-delta at 0.25 — stepping out must still find the slice.
        let ln_f = |x: f64| -((x - 0.25) / 1e-4).powi(2);
        let draws = run_chain(ln_f, 0.0, 1.0, 0.25, 5_000, 73);
        let tail = &draws[500..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 0.25).abs() < 1e-3, "mean = {mean}");
    }

    #[test]
    fn uniform_target_mixes_over_whole_interval() {
        let draws = run_chain(|_| 0.0, 2.0, 4.0, 2.1, 20_000, 74);
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
        assert!(draws.iter().any(|&x| x < 2.2));
        assert!(draws.iter().any(|&x| x > 3.8));
    }

    #[test]
    #[should_panic(expected = "feasible starting point")]
    fn infeasible_start_panics() {
        let mut rng = SplitMix64::seed_from(75);
        let _ = slice_sample(
            |_| f64::NEG_INFINITY,
            0.5,
            0.0,
            1.0,
            &SliceConfig::default(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "requires lo < hi")]
    fn inverted_interval_panics() {
        let mut rng = SplitMix64::seed_from(76);
        let _ = slice_sample(|_| 0.0, 0.5, 1.0, 0.0, &SliceConfig::default(), &mut rng);
    }

    #[test]
    fn try_variant_types_the_failures() {
        let mut rng = SplitMix64::seed_from(78);
        let cfg = SliceConfig::default();
        assert_eq!(
            try_slice_sample(|_| 0.0, 0.5, 1.0, 0.0, &cfg, &mut rng),
            Err(SliceError::InvalidInterval { lo: 1.0, hi: 0.0 })
        );
        assert_eq!(
            try_slice_sample(|_| 0.0, 2.0, 0.0, 1.0, &cfg, &mut rng),
            Err(SliceError::StartOutOfRange {
                x0: 2.0,
                lo: 0.0,
                hi: 1.0
            })
        );
        assert!(matches!(
            try_slice_sample(|_| f64::NEG_INFINITY, 0.5, 0.0, 1.0, &cfg, &mut rng),
            Err(SliceError::InfeasibleStart { x0, ln_f0 })
                if x0 == 0.5 && ln_f0 == f64::NEG_INFINITY
        ));
        assert!(matches!(
            try_slice_sample(|_| f64::NAN, 0.5, 0.0, 1.0, &cfg, &mut rng),
            Err(SliceError::InfeasibleStart { x0, ln_f0 })
                if x0 == 0.5 && ln_f0.is_nan()
        ));
    }

    #[test]
    fn try_variant_matches_panicking_form_on_success() {
        let ln_f = |x: f64| -0.5 * x * x;
        let cfg = SliceConfig::default();
        let mut rng_a = SplitMix64::seed_from(79);
        let mut rng_b = SplitMix64::seed_from(79);
        let mut xa = 0.3;
        let mut xb = 0.3;
        for _ in 0..500 {
            xa = slice_sample(ln_f, xa, -4.0, 4.0, &cfg, &mut rng_a);
            xb = try_slice_sample(ln_f, xb, -4.0, 4.0, &cfg, &mut rng_b).unwrap();
            assert_eq!(xa.to_bits(), xb.to_bits());
        }
    }

    #[test]
    fn bimodal_target_visits_both_modes() {
        // Overlapping modes: slice sampling (like any local sampler)
        // cannot tunnel through a near-zero valley, so keep the modes
        // close enough that the slice at moderate heights spans both.
        let ln_f = |x: f64| {
            let a = -((x + 1.0) / 0.8).powi(2);
            let b = -((x - 1.0) / 0.8).powi(2);
            srm_math::logsumexp::log_add_exp(a, b)
        };
        let draws = run_chain(ln_f, -5.0, 5.0, -1.0, 40_000, 77);
        let right = draws.iter().filter(|&&x| x > 0.0).count() as f64 / draws.len() as f64;
        assert!((right - 0.5).abs() < 0.1, "right fraction = {right}");
    }
}
