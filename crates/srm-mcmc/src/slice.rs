//! Univariate slice sampling (Neal 2003) on a bounded interval.
//!
//! The conditionals of `ζ` (and of `α0` in the NB case) have no
//! conjugate form; slice sampling needs no step-size tuning, leaves
//! the target invariant exactly, and degrades gracefully on the
//! plateau-shaped log-likelihoods these models produce.

use srm_rand::Rng;

/// Configuration of the stepping-out slice sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceConfig {
    /// Initial bracket width, as a fraction of the support length.
    pub width_fraction: f64,
    /// Maximum stepping-out expansions on each side.
    pub max_step_out: usize,
    /// Maximum shrinkage iterations before giving up and returning
    /// the current point (a formally valid, if wasteful, move).
    pub max_shrink: usize,
}

impl Default for SliceConfig {
    fn default() -> Self {
        Self {
            width_fraction: 0.1,
            max_step_out: 16,
            max_shrink: 100,
        }
    }
}

/// Draws one slice-sampling update for a log-density `ln_f` restricted
/// to `(lo, hi)`, starting from `x0` (which must satisfy
/// `ln_f(x0) > -inf`).
///
/// Returns the new point; the chain `x0 → x` leaves the density
/// `exp(ln_f)` (restricted and renormalised on the interval)
/// invariant.
///
/// # Panics
///
/// Panics if `lo >= hi`, `x0` is outside `[lo, hi]`, or
/// `ln_f(x0) = -inf`.
///
/// # Examples
///
/// ```
/// use srm_mcmc::slice::{slice_sample, SliceConfig};
/// use srm_rand::SplitMix64;
///
/// // Sample a truncated standard normal on (-1, 3).
/// let mut rng = SplitMix64::seed_from(1);
/// let mut x = 0.5;
/// for _ in 0..100 {
///     x = slice_sample(|v| -0.5 * v * v, x, -1.0, 3.0, &SliceConfig::default(), &mut rng);
///     assert!((-1.0..=3.0).contains(&x));
/// }
/// ```
pub fn slice_sample<F, R>(
    ln_f: F,
    x0: f64,
    lo: f64,
    hi: f64,
    config: &SliceConfig,
    rng: &mut R,
) -> f64
where
    F: Fn(f64) -> f64,
    R: Rng + ?Sized,
{
    assert!(lo < hi, "slice_sample requires lo < hi ({lo} >= {hi})");
    assert!(
        (lo..=hi).contains(&x0),
        "starting point {x0} outside [{lo}, {hi}]"
    );
    let f0 = ln_f(x0);
    assert!(
        f0 > f64::NEG_INFINITY,
        "slice_sample requires a feasible starting point"
    );

    // Vertical step: ln u = ln f(x0) − Exp(1).
    let ln_u = f0 + rng.next_open_f64().ln();

    // Horizontal step: position a width-w bracket around x0, then
    // step out while the endpoints are still inside the slice.
    let w = (hi - lo) * config.width_fraction;
    let mut left = (x0 - w * rng.next_f64()).max(lo);
    let mut right = (left + w).min(hi);
    for _ in 0..config.max_step_out {
        if left <= lo || ln_f(left) <= ln_u {
            break;
        }
        left = (left - w).max(lo);
    }
    for _ in 0..config.max_step_out {
        if right >= hi || ln_f(right) <= ln_u {
            break;
        }
        right = (right + w).min(hi);
    }

    // Shrinkage: sample inside the bracket, shrink toward x0 on
    // rejection.
    for _ in 0..config.max_shrink {
        let x = left + (right - left) * rng.next_f64();
        if ln_f(x) > ln_u {
            return x;
        }
        if x < x0 {
            left = x;
        } else {
            right = x;
        }
        if (right - left) < 1e-300 {
            break;
        }
    }
    x0
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_rand::SplitMix64;

    fn run_chain<F: Fn(f64) -> f64>(
        ln_f: F,
        lo: f64,
        hi: f64,
        x0: f64,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from(seed);
        let cfg = SliceConfig::default();
        let mut x = x0;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = slice_sample(&ln_f, x, lo, hi, &cfg, &mut rng);
            out.push(x);
        }
        out
    }

    #[test]
    fn samples_stay_in_support() {
        let draws = run_chain(|x| -x.abs(), -2.0, 5.0, 0.0, 5_000, 70);
        assert!(draws.iter().all(|&x| (-2.0..=5.0).contains(&x)));
    }

    #[test]
    fn recovers_truncated_normal_moments() {
        // Standard normal on (-10, 10): effectively untruncated.
        let draws = run_chain(|x| -0.5 * x * x, -10.0, 10.0, 1.0, 60_000, 71);
        let burn = &draws[5_000..];
        let mean: f64 = burn.iter().sum::<f64>() / burn.len() as f64;
        let var: f64 =
            burn.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / burn.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn recovers_beta_distribution() {
        // Beta(3, 2) log-density on (0, 1).
        let ln_f = |x: f64| 2.0 * x.ln() + (1.0 - x).ln();
        let draws = run_chain(ln_f, 1e-12, 1.0 - 1e-12, 0.5, 60_000, 72);
        let burn = &draws[5_000..];
        let mean: f64 = burn.iter().sum::<f64>() / burn.len() as f64;
        assert!((mean - 0.6).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn handles_sharply_peaked_target() {
        // Near-delta at 0.25 — stepping out must still find the slice.
        let ln_f = |x: f64| -((x - 0.25) / 1e-4).powi(2);
        let draws = run_chain(ln_f, 0.0, 1.0, 0.25, 5_000, 73);
        let tail = &draws[500..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 0.25).abs() < 1e-3, "mean = {mean}");
    }

    #[test]
    fn uniform_target_mixes_over_whole_interval() {
        let draws = run_chain(|_| 0.0, 2.0, 4.0, 2.1, 20_000, 74);
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
        assert!(draws.iter().any(|&x| x < 2.2));
        assert!(draws.iter().any(|&x| x > 3.8));
    }

    #[test]
    #[should_panic(expected = "feasible starting point")]
    fn infeasible_start_panics() {
        let mut rng = SplitMix64::seed_from(75);
        let _ = slice_sample(
            |_| f64::NEG_INFINITY,
            0.5,
            0.0,
            1.0,
            &SliceConfig::default(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "requires lo < hi")]
    fn inverted_interval_panics() {
        let mut rng = SplitMix64::seed_from(76);
        let _ = slice_sample(|_| 0.0, 0.5, 1.0, 0.0, &SliceConfig::default(), &mut rng);
    }

    #[test]
    fn bimodal_target_visits_both_modes() {
        // Overlapping modes: slice sampling (like any local sampler)
        // cannot tunnel through a near-zero valley, so keep the modes
        // close enough that the slice at moderate heights spans both.
        let ln_f = |x: f64| {
            let a = -((x + 1.0) / 0.8).powi(2);
            let b = -((x - 1.0) / 0.8).powi(2);
            srm_math::logsumexp::log_add_exp(a, b)
        };
        let draws = run_chain(ln_f, -5.0, 5.0, -1.0, 40_000, 77);
        let right = draws.iter().filter(|&&x| x > 0.0).count() as f64 / draws.len() as f64;
        assert!((right - 0.5).abs() < 0.1, "right fraction = {right}");
    }
}
