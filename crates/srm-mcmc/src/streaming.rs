//! Streaming in-sweep convergence accumulators.
//!
//! A [`ChainAccumulator`] ingests each kept draw row as the sampler
//! produces it and can snapshot a [`ChainCheckpoint`] at any moment in
//! O(parameters · lag window) work — no access to the chain's draw
//! history is needed. Per parameter it maintains:
//!
//! * whole-chain running moments (Welford, the same update sequence
//!   `diagnostics::psrf` applies internally, so cross-chain R̂
//!   aggregated from checkpoints matches the post-hoc value to
//!   floating-point round-off),
//! * first-half / second-half running moments keyed to the *planned*
//!   draw count, reproducing the post-hoc split used for split-R̂
//!   exactly at the final checkpoint,
//! * a fixed-lag autocovariance accumulator (ring buffer of the last
//!   `lag_window + 1` draws plus shifted-origin cross sums) whose
//!   `gamma(k)` equals the two-pass centred autocovariance of
//!   `diagnostics::autocorrelation` algebraically — ESS via Geyer's
//!   initial-positive-sequence rule then matches
//!   `diagnostics::effective_sample_size` whenever the truncation lag
//!   falls inside the window (and is an upper bound otherwise, since
//!   dropped positive tail mass can only shrink `tau`).
//!
//! Determinism contract: accumulators never touch the sampler's RNG
//! and only read rows the chain already kept, so runs with streaming
//! enabled are bit-identical to runs without (asserted in the
//! workspace observability tests).

use srm_math::RunningMoments;
use srm_obs::checkpoint::{ChainCheckpoint, MomentSummary, ParamCheckpoint};
use srm_obs::AcceptStat;

/// Default autocovariance window: lags 0..=100 are tracked, matching
/// the region where Geyer truncation lands for chains that mix at all.
pub const DEFAULT_LAG_WINDOW: usize = 100;

/// Streaming accumulator for a single scalar parameter.
#[derive(Debug, Clone)]
pub struct ParamAccumulator {
    /// First observed value; draws are shifted by it before entering
    /// the autocovariance sums so catastrophic cancellation on large
    /// offsets (e.g. `n` near the total bug count) stays bounded.
    origin: f64,
    moments: RunningMoments,
    half1: RunningMoments,
    half2: RunningMoments,
    /// Planned kept draws (for half assignment).
    target: usize,
    lag_window: usize,
    /// Last `lag_window + 1` shifted draws.
    ring: Vec<f64>,
    /// Next write position in `ring`.
    pos: usize,
    /// `cross[k] = Σ_i y_i · y_{i−k}` over pushed shifted draws.
    cross: Vec<f64>,
    /// `head[k] = Σ first k shifted draws` for k ≤ lag window.
    head: Vec<f64>,
    /// Running sum of shifted draws.
    sum: f64,
}

impl ParamAccumulator {
    /// An empty accumulator expecting `target` kept draws.
    #[must_use]
    pub fn new(target: usize, lag_window: usize) -> Self {
        let cap = lag_window + 1;
        Self {
            origin: 0.0,
            moments: RunningMoments::default(),
            half1: RunningMoments::default(),
            half2: RunningMoments::default(),
            target,
            lag_window,
            ring: vec![0.0; cap],
            pos: 0,
            cross: vec![0.0; cap],
            head: vec![0.0; cap],
            sum: 0.0,
        }
    }

    /// Ingests one kept draw.
    pub fn push(&mut self, x: f64) {
        let n = self.moments.count() as usize;
        if n == 0 {
            self.origin = x;
        }
        let y = x - self.origin;
        let cap = self.lag_window + 1;
        for k in 1..=self.lag_window.min(n) {
            self.cross[k] += y * self.ring[(self.pos + cap - k) % cap];
        }
        self.cross[0] += y * y;
        self.ring[self.pos] = y;
        self.pos = (self.pos + 1) % cap;
        if n < self.lag_window {
            self.head[n + 1] = self.head[n] + y;
        }
        self.sum += y;
        self.moments.push(x);
        // Post-hoc split halves: first `target/2` draws vs the last
        // `target/2` (the middle draw of an odd target joins neither).
        if n < self.target / 2 {
            self.half1.push(x);
        }
        if n >= self.target - self.target / 2 {
            self.half2.push(x);
        }
    }

    /// Draws ingested so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Lag-`k` autocovariance with divisor `n` — algebraically equal
    /// to the two-pass `Σ (y_i − μ)(y_{i+k} − μ) / n` of
    /// `diagnostics::autocorrelation`. Only valid for `k` within the
    /// window and `k < n`.
    fn gamma(&self, k: usize) -> f64 {
        let n = self.moments.count() as usize;
        if n == 0 || k >= n || k > self.lag_window {
            return 0.0;
        }
        let nf = n as f64;
        let mu = self.sum / nf;
        let cap = self.lag_window + 1;
        // Sum of the k most recent shifted draws (the tail that has no
        // partner at lag k).
        let tail: f64 = (1..=k).map(|j| self.ring[(self.pos + cap - j) % cap]).sum();
        (self.cross[k] - mu * (2.0 * self.sum - self.head[k] - tail) + (n - k) as f64 * mu * mu)
            / nf
    }

    /// Geyer initial-positive-sequence ESS over the tracked window —
    /// the exact rule of `diagnostics::effective_sample_size`, except
    /// that truncation is also forced at the window edge (where the
    /// estimate becomes an upper bound on the post-hoc value).
    #[must_use]
    pub fn ess(&self) -> f64 {
        let n = self.moments.count() as usize;
        if n < 4 {
            return n as f64;
        }
        let nf = n as f64;
        let gamma0 = self.gamma(0);
        if gamma0 <= 0.0 {
            return nf;
        }
        let mut tau = 1.0;
        let mut lag = 1;
        while lag + 1 < n && lag < self.lag_window {
            let pair = self.gamma(lag) + self.gamma(lag + 1);
            if pair <= 0.0 {
                break;
            }
            tau += 2.0 * pair / gamma0;
            lag += 2;
        }
        (nf / tau).min(nf)
    }

    /// Monte-Carlo standard error `sqrt(sample variance / ESS)`.
    #[must_use]
    pub fn mcse(&self) -> f64 {
        let ess = self.ess();
        if ess <= 0.0 {
            return f64::INFINITY;
        }
        (self.moments.sample_variance() / ess).sqrt()
    }

    fn summary(moments: &RunningMoments) -> MomentSummary {
        MomentSummary {
            count: moments.count(),
            mean: moments.mean(),
            variance: moments.sample_variance(),
        }
    }

    /// Snapshot of this parameter's streaming state. `ess_per_sec`
    /// is left at 0; [`ChainAccumulator::checkpoint`] fills it from
    /// the chain's wall clock.
    #[must_use]
    pub fn checkpoint(&self, parameter: &str) -> ParamCheckpoint {
        ParamCheckpoint {
            parameter: parameter.to_string(),
            moments: Self::summary(&self.moments),
            half1: Self::summary(&self.half1),
            half2: Self::summary(&self.half2),
            ess: self.ess(),
            mcse: self.mcse(),
            ess_per_sec: 0.0,
        }
    }
}

/// Streaming accumulators for every column of one chain.
#[derive(Debug, Clone)]
pub struct ChainAccumulator {
    names: Vec<String>,
    params: Vec<ParamAccumulator>,
}

impl ChainAccumulator {
    /// Accumulators for the named columns, expecting `target` kept
    /// draws per chain (used for the split-half assignment).
    #[must_use]
    pub fn new<S: AsRef<str>>(names: &[S], target: usize) -> Self {
        Self {
            names: names.iter().map(|n| n.as_ref().to_string()).collect(),
            params: names
                .iter()
                .map(|_| ParamAccumulator::new(target, DEFAULT_LAG_WINDOW))
                .collect(),
        }
    }

    /// Ingests one kept draw row (same column order as `names`).
    pub fn push_row(&mut self, row: &[f64]) {
        debug_assert_eq!(row.len(), self.params.len());
        for (acc, &x) in self.params.iter_mut().zip(row) {
            acc.push(x);
        }
    }

    /// Rows ingested so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.params.first().map_or(0, ParamAccumulator::count)
    }

    /// Snapshot of the whole chain's streaming state after `sweep`.
    ///
    /// `wall_ms` is the chain's wall-clock time so far; each
    /// parameter's `ess_per_sec` is its streaming ESS divided by that
    /// interval (0 while the clock has not advanced). The clock is
    /// the only nondeterministic input and feeds telemetry fields
    /// only — draw-derived statistics are untouched by it.
    #[must_use]
    pub fn checkpoint(
        &self,
        chain: usize,
        sweep: usize,
        kept: usize,
        wall_ms: f64,
        accept: Vec<AcceptStat>,
    ) -> ChainCheckpoint {
        let wall_secs = wall_ms / 1e3;
        ChainCheckpoint {
            chain,
            sweep,
            kept,
            wall_ms,
            params: self
                .names
                .iter()
                .zip(&self.params)
                .map(|(name, acc)| {
                    let mut param = acc.checkpoint(name);
                    if wall_secs > 0.0 && param.ess.is_finite() {
                        param.ess_per_sec = param.ess / wall_secs;
                    }
                    param
                })
                .collect(),
            accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{autocorrelation, effective_sample_size, psrf};
    use srm_obs::checkpoint::psrf_from_moments;

    /// A deterministic AR(1)-ish series with known strong positive
    /// autocorrelation, no RNG needed.
    fn ar1(n: usize, rho: f64, seed: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut x = seed;
        let mut u = 0.5f64;
        for _ in 0..n {
            // Deterministic pseudo-noise via a logistic map.
            u = 3.99 * u * (1.0 - u);
            x = rho * x + (u - 0.5);
            out.push(x);
        }
        out
    }

    fn accumulate(draws: &[f64]) -> ParamAccumulator {
        let mut acc = ParamAccumulator::new(draws.len(), DEFAULT_LAG_WINDOW);
        for &x in draws {
            acc.push(x);
        }
        acc
    }

    #[test]
    fn streaming_gamma_matches_two_pass_autocovariance() {
        let draws = ar1(500, 0.8, 0.3);
        let acc = accumulate(&draws);
        // diagnostics::autocorrelation returns rho_k = gamma_k/gamma_0.
        let rho = autocorrelation(&draws, 40);
        let gamma0 = acc.gamma(0);
        assert!(gamma0 > 0.0);
        for (k, &two_pass) in rho.iter().enumerate() {
            let streamed = acc.gamma(k) / gamma0;
            assert!(
                (streamed - two_pass).abs() < 1e-9,
                "lag {k}: streamed {streamed} vs two-pass {two_pass}"
            );
        }
    }

    #[test]
    fn streaming_gamma_is_offset_invariant() {
        let base = ar1(300, 0.5, 0.7);
        let shifted: Vec<f64> = base.iter().map(|x| x + 1.0e6).collect();
        let a = accumulate(&base);
        let b = accumulate(&shifted);
        for k in [0, 1, 5, 20] {
            assert!(
                (a.gamma(k) - b.gamma(k)).abs() < 1e-4 * a.gamma(0).abs().max(1.0),
                "lag {k} drifted under offset"
            );
        }
    }

    #[test]
    fn streaming_ess_matches_post_hoc_on_correlated_and_white_chains() {
        for (rho, seed) in [(0.8, 0.3), (0.0, 0.61), (0.95, 0.11)] {
            let draws = ar1(600, rho, seed);
            let acc = accumulate(&draws);
            let post_hoc = effective_sample_size(&draws);
            let streamed = acc.ess();
            // Exact whenever Geyer truncates inside the lag window;
            // a strongly-correlated chain may hit the window edge,
            // where streaming is an upper bound.
            if streamed <= post_hoc + 1e-6 {
                assert!(
                    (streamed - post_hoc).abs() < 1e-6 * post_hoc.max(1.0) + 1e-9
                        || streamed >= post_hoc,
                    "rho {rho}: streamed {streamed} vs post-hoc {post_hoc}"
                );
            }
            assert!(
                streamed >= post_hoc - 1e-6 * post_hoc,
                "streaming ESS must never under-report: {streamed} < {post_hoc}"
            );
            if rho < 0.9 {
                assert!(
                    (streamed - post_hoc).abs() < 1e-6 * post_hoc,
                    "rho {rho}: expected exact agreement, got {streamed} vs {post_hoc}"
                );
            }
        }
    }

    #[test]
    fn tiny_chains_report_their_own_length() {
        let acc = accumulate(&[1.0, 2.0, 3.0]);
        assert_eq!(acc.ess(), 3.0);
        let empty = ParamAccumulator::new(10, DEFAULT_LAG_WINDOW);
        assert_eq!(empty.ess(), 0.0);
    }

    #[test]
    fn halves_match_post_hoc_split_at_completion() {
        for n in [100usize, 101] {
            let draws = ar1(n, 0.6, 0.37);
            let acc = accumulate(&draws);
            let cp = acc.checkpoint("x");
            let half = n / 2;
            let first: RunningMoments = draws[..half].iter().copied().collect();
            let last: RunningMoments = draws[n - half..].iter().copied().collect();
            assert_eq!(cp.half1.count, first.count());
            assert_eq!(cp.half2.count, last.count());
            assert!((cp.half1.mean - first.mean()).abs() < 1e-12);
            assert!((cp.half2.mean - last.mean()).abs() < 1e-12);
            assert!((cp.half1.variance - first.sample_variance()).abs() < 1e-12);
            assert!((cp.half2.variance - last.sample_variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn moment_based_psrf_matches_diagnostics_psrf() {
        let a = ar1(400, 0.7, 0.21);
        let b = ar1(400, 0.7, 0.77);
        let chains: [&[f64]; 2] = [&a, &b];
        let post_hoc = psrf(&chains);
        let blocks = [
            MomentSummary {
                count: accumulate(&a).moments.count(),
                mean: accumulate(&a).moments.mean(),
                variance: accumulate(&a).moments.sample_variance(),
            },
            MomentSummary {
                count: accumulate(&b).moments.count(),
                mean: accumulate(&b).moments.mean(),
                variance: accumulate(&b).moments.sample_variance(),
            },
        ];
        let streamed = psrf_from_moments(&blocks);
        assert!(
            (streamed - post_hoc).abs() < 1e-9,
            "streamed {streamed} vs post-hoc {post_hoc}"
        );
    }

    #[test]
    fn split_halves_feed_a_split_rhat_matching_psrf_over_half_slices() {
        let a = ar1(400, 0.7, 0.21);
        let b = ar1(400, 0.7, 0.77);
        let half = 200;
        let slices: [&[f64]; 4] = [&a[..half], &a[half..], &b[..half], &b[half..]];
        let post_hoc = psrf(&slices);
        let blocks: Vec<MomentSummary> = [&a, &b]
            .iter()
            .flat_map(|draws| {
                let cp = accumulate(draws).checkpoint("x");
                [cp.half1, cp.half2]
            })
            .collect();
        let streamed = psrf_from_moments(&blocks);
        assert!(
            (streamed - post_hoc).abs() < 1e-9,
            "streamed split {streamed} vs post-hoc {post_hoc}"
        );
    }

    #[test]
    fn chain_accumulator_snapshots_all_columns() {
        let mut acc = ChainAccumulator::new(&["residual", "n"], 50);
        for i in 0..50 {
            acc.push_row(&[i as f64, 90.0 + (i % 3) as f64]);
        }
        assert_eq!(acc.count(), 50);
        let cp = acc.checkpoint(
            2,
            149,
            50,
            2_000.0,
            vec![AcceptStat {
                parameter: "zeta0".into(),
                steps: 150,
                accepted: 60,
            }],
        );
        assert_eq!(cp.chain, 2);
        assert_eq!(cp.sweep, 149);
        assert_eq!(cp.kept, 50);
        assert_eq!(cp.wall_ms, 2_000.0);
        assert_eq!(cp.params.len(), 2);
        assert_eq!(cp.params[0].parameter, "residual");
        assert_eq!(cp.params[0].moments.count, 50);
        assert!((cp.params[0].moments.mean - 24.5).abs() < 1e-12);
        assert!((cp.params[0].ess_per_sec - cp.params[0].ess / 2.0).abs() < 1e-12);
        assert_eq!(cp.accept[0].accepted, 60);
    }

    #[test]
    fn checkpoint_rate_is_zero_before_the_clock_advances() {
        let mut acc = ChainAccumulator::new(&["x"], 10);
        for i in 0..10 {
            acc.push_row(&[i as f64]);
        }
        let cp = acc.checkpoint(0, 9, 10, 0.0, vec![]);
        assert_eq!(cp.params[0].ess_per_sec, 0.0);
        assert!(cp.params[0].ess > 0.0);
    }

    #[test]
    fn mcse_is_sqrt_variance_over_ess() {
        let draws = ar1(300, 0.5, 0.4);
        let acc = accumulate(&draws);
        let expected = (acc.moments.sample_variance() / acc.ess()).sqrt();
        assert!((acc.mcse() - expected).abs() < 1e-12);
    }
}
