//! Posterior summaries: the statistics Tables II–V report, plus the
//! box-plot five-number summaries behind Figs. 2–3 and the pooled
//! kernel acceptance rates surfaced by the observability layer.

use crate::fault::ChainReport;
use crate::metropolis::ParamAcceptance;
use srm_math::accum::RunningMoments;

/// Summary statistics of a set of posterior draws.
///
/// # Examples
///
/// ```
/// use srm_mcmc::PosteriorSummary;
///
/// let draws = [1.0, 2.0, 2.0, 3.0, 4.0];
/// let s = PosteriorSummary::from_draws(&draws);
/// assert_eq!(s.median, 2.0);
/// assert_eq!(s.mode, 2.0);
/// assert_eq!(s.nan_draws, 0);
/// assert!((s.mean - 2.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSummary {
    /// Number of (non-NaN) draws summarised.
    pub count: usize,
    /// Number of NaN draws excluded from the summary. Non-zero values
    /// indicate an upstream numerical fault worth investigating.
    pub nan_draws: usize,
    /// Posterior mean.
    pub mean: f64,
    /// Posterior median (type-7 interpolated quantile).
    pub median: f64,
    /// Posterior mode. For integer-valued draws this is the most
    /// frequent value; for continuous draws a histogram mode.
    pub mode: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum draw.
    pub min: f64,
    /// Maximum draw.
    pub max: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
}

impl PosteriorSummary {
    /// Summarises a slice of draws. NaN draws are excluded from every
    /// statistic and counted in [`PosteriorSummary::nan_draws`].
    ///
    /// # Panics
    ///
    /// Panics on empty input or when every draw is NaN (zero usable
    /// draws).
    #[must_use]
    pub fn from_draws(draws: &[f64]) -> Self {
        let nan_draws = draws.iter().filter(|d| d.is_nan()).count();
        let finite: Vec<f64> = draws.iter().copied().filter(|d| !d.is_nan()).collect();
        assert!(!finite.is_empty(), "cannot summarise zero draws");
        let mut sorted = finite.clone();
        sorted.sort_by(f64::total_cmp);
        let moments: RunningMoments = finite.iter().copied().collect();
        Self {
            count: finite.len(),
            nan_draws,
            mean: moments.mean(),
            median: quantile_sorted(&sorted, 0.5),
            mode: mode_of(&finite, &sorted),
            sd: moments.sample_sd(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            q1: quantile_sorted(&sorted, 0.25),
            q3: quantile_sorted(&sorted, 0.75),
        }
    }

    /// The interquartile range `q3 − q1`.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Tukey box-plot whiskers: the most extreme draws within
    /// `1.5 · IQR` of the quartiles. Returns `(lower, upper)`.
    #[must_use]
    pub fn whiskers(&self, draws: &[f64]) -> (f64, f64) {
        let lo_fence = self.q1 - 1.5 * self.iqr();
        let hi_fence = self.q3 + 1.5 * self.iqr();
        let mut lo = self.q1;
        let mut hi = self.q3;
        for &d in draws {
            if d >= lo_fence && d < lo {
                lo = d;
            }
            if d <= hi_fence && d > hi {
                hi = d;
            }
        }
        (lo, hi)
    }

    /// Equal-tailed credible interval at level `1 − alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1)`.
    #[must_use]
    pub fn credible_interval(draws: &[f64], alpha: f64) -> (f64, f64) {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range");
        let mut sorted = draws.to_vec();
        sorted.sort_by(f64::total_cmp);
        (
            quantile_sorted(&sorted, alpha / 2.0),
            quantile_sorted(&sorted, 1.0 - alpha / 2.0),
        )
    }

    /// Highest-posterior-density interval at level `1 − alpha`: the
    /// shortest window containing the requested mass.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1)` or `draws` is empty.
    #[must_use]
    pub fn hpd_interval(draws: &[f64], alpha: f64) -> (f64, f64) {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range");
        assert!(!draws.is_empty(), "empty draws");
        let mut sorted = draws.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let keep = (((1.0 - alpha) * n as f64).ceil() as usize).clamp(1, n);
        let mut best = (sorted[0], sorted[n - 1]);
        let mut best_width = f64::INFINITY;
        for start in 0..=(n - keep) {
            let width = sorted[start + keep - 1] - sorted[start];
            if width < best_width {
                best_width = width;
                best = (sorted[start], sorted[start + keep - 1]);
            }
        }
        best
    }
}

/// Kernel acceptance rates pooled across the chains of a run.
///
/// Built from the per-chain [`ChainReport::accept`] statistics the
/// fault-tolerant runner collects; steps and accepts are summed per
/// parameter over every contributing chain.
///
/// # Examples
///
/// ```
/// use srm_mcmc::metropolis::ParamAcceptance;
/// use srm_mcmc::AcceptanceSummary;
///
/// let per_chain = [
///     vec![ParamAcceptance { parameter: "zeta0", steps: 10, accepted: 4 }],
///     vec![ParamAcceptance { parameter: "zeta0", steps: 10, accepted: 6 }],
/// ];
/// let pooled = AcceptanceSummary::pooled(per_chain.iter().map(Vec::as_slice));
/// assert_eq!(pooled.rate("zeta0"), Some(0.5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AcceptanceSummary {
    /// Pooled per-parameter statistics, in parameter order.
    pub params: Vec<ParamAcceptance>,
}

impl AcceptanceSummary {
    /// Pools per-chain acceptance slices (parameters are matched by
    /// name, so chains with differing parameter sets still pool).
    pub fn pooled<'a>(chains: impl IntoIterator<Item = &'a [ParamAcceptance]>) -> Self {
        let mut params: Vec<ParamAcceptance> = Vec::new();
        for chain in chains {
            for stat in chain {
                match params.iter_mut().find(|p| p.parameter == stat.parameter) {
                    Some(p) => {
                        p.steps += stat.steps;
                        p.accepted += stat.accepted;
                    }
                    None => params.push(*stat),
                }
            }
        }
        Self { params }
    }

    /// Pools the acceptance statistics of a run's chain reports
    /// (lost chains contribute nothing).
    #[must_use]
    pub fn from_reports(reports: &[ChainReport]) -> Self {
        Self::pooled(reports.iter().map(|r| r.accept.as_slice()))
    }

    /// The pooled acceptance rate of `parameter`, if it was sampled.
    #[must_use]
    pub fn rate(&self, parameter: &str) -> Option<f64> {
        self.params
            .iter()
            .find(|p| p.parameter == parameter)
            .map(ParamAcceptance::rate)
    }

    /// Whether any statistics were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

/// Type-7 (R default) quantile of pre-sorted data.
fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = (sorted.len() as f64 - 1.0) * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Mode estimation. Integer-valued draws (the residual counts from
/// the Gibbs sampler) get an exact most-frequent-value mode; general
/// draws fall back to the midpoint of the densest of ~√n histogram
/// bins.
fn mode_of(draws: &[f64], sorted: &[f64]) -> f64 {
    let all_integer = draws.iter().all(|&d| d.fract() == 0.0 && d.abs() < 1e15);
    if all_integer {
        // Runs over sorted values.
        let mut best_val = sorted[0];
        let mut best_run = 0usize;
        let mut run = 0usize;
        let mut current = sorted[0];
        for &v in sorted {
            if v == current {
                run += 1;
            } else {
                if run > best_run {
                    best_run = run;
                    best_val = current;
                }
                current = v;
                run = 1;
            }
        }
        if run > best_run {
            best_val = current;
        }
        return best_val;
    }
    let n = sorted.len();
    let bins = (n as f64).sqrt().ceil() as usize;
    let (min, max) = (sorted[0], sorted[n - 1]);
    if max <= min {
        return min;
    }
    let width = (max - min) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in sorted {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    min + (best as f64 + 0.5) * width
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_textbook_case() {
        let draws = [7.0, 15.0, 36.0, 39.0, 40.0, 41.0];
        let s = PosteriorSummary::from_draws(&draws);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 41.0);
        assert_eq!(s.median, 37.5);
        assert!((s.q1 - 20.25).abs() < 1e-12);
        assert!((s.q3 - 39.75).abs() < 1e-12);
    }

    #[test]
    fn integer_mode_is_most_frequent() {
        let draws = [0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 7.0];
        assert_eq!(PosteriorSummary::from_draws(&draws).mode, 1.0);
    }

    #[test]
    fn continuous_mode_near_density_peak() {
        // Draws concentrated near 3.0 with a diffuse tail.
        let mut draws = Vec::new();
        for i in 0..900 {
            draws.push(3.0 + (i % 30) as f64 * 0.01);
        }
        for i in 0..100 {
            draws.push(10.0 + i as f64 * 0.3);
        }
        let s = PosteriorSummary::from_draws(&draws);
        assert!((s.mode - 3.1).abs() < 0.5, "mode = {}", s.mode);
    }

    #[test]
    fn single_draw_summary() {
        let s = PosteriorSummary::from_draws(&[4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero draws")]
    fn empty_draws_panic() {
        let _ = PosteriorSummary::from_draws(&[]);
    }

    #[test]
    #[should_panic(expected = "zero draws")]
    fn all_nan_draws_panic() {
        let _ = PosteriorSummary::from_draws(&[f64::NAN, f64::NAN]);
    }

    #[test]
    fn nan_draws_counted_not_fatal() {
        let draws = [1.0, f64::NAN, 2.0, 2.0, f64::NAN, 3.0, 4.0];
        let s = PosteriorSummary::from_draws(&draws);
        assert_eq!(s.nan_draws, 2);
        assert_eq!(s.count, 5);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.4).abs() < 1e-12);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut draws: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        draws.push(500.0); // far outlier
        let s = PosteriorSummary::from_draws(&draws);
        let (lo, hi) = s.whiskers(&draws);
        assert!(hi < 20.0, "hi = {hi}");
        assert!((lo - 0.0).abs() < 1e-12);
    }

    #[test]
    fn credible_interval_covers_mass() {
        let draws: Vec<f64> = (0..10_000).map(|i| i as f64 / 100.0).collect();
        let (lo, hi) = PosteriorSummary::credible_interval(&draws, 0.1);
        assert!((lo - 5.0).abs() < 0.2);
        assert!((hi - 95.0).abs() < 0.2);
    }

    #[test]
    fn hpd_is_no_wider_than_equal_tailed() {
        // Skewed draws: HPD should beat the equal-tailed interval.
        let draws: Vec<f64> = (0..5_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 5_000.0;
                -u.ln() // Exp(1) quantiles
            })
            .collect();
        let (clo, chi) = PosteriorSummary::credible_interval(&draws, 0.05);
        let (hlo, hhi) = PosteriorSummary::hpd_interval(&draws, 0.05);
        assert!(hhi - hlo <= chi - clo + 1e-9);
        assert!(hlo >= 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.5);
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
    }
}
