//! Classic continuous-time NHPP software reliability models and the
//! discretisation bridge.
//!
//! The paper's discrete detection-probability curves are discrete
//! analogues of the classic continuous NHPP SRMs (its references
//! \[16\]–\[20\]): a continuous model has mean value function `m(t) =
//! ω F(t)` for a lifetime CDF `F`, and the induced *discrete* per-day
//! detection probability is the discrete hazard
//!
//! ```text
//! p_i = (F(i) − F(i−1)) / (1 − F(i−1)) = 1 − S(i)/S(i−1).
//! ```
//!
//! This module implements the standard lifetime families, the
//! discretisation, and group-data expectations, so the discrete
//! models can be validated against (and compared with) their
//! continuous ancestors.

/// A continuous lifetime distribution underlying an NHPP SRM.
///
/// # Examples
///
/// ```
/// use srm_model::continuous::Lifetime;
///
/// let exp = Lifetime::Exponential { rate: 0.1 };
/// assert!((exp.cdf(0.0)).abs() < 1e-12);
/// assert!(exp.cdf(10.0) > 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Exponential detection times (Goel–Okumoto model):
    /// `F(t) = 1 − e^{−bt}`.
    Exponential {
        /// Rate `b > 0`.
        rate: f64,
    },
    /// Weibull detection times: `F(t) = 1 − e^{−(t/λ)^k}`.
    Weibull {
        /// Shape `k > 0`.
        shape: f64,
        /// Scale `λ > 0`.
        scale: f64,
    },
    /// Pareto (Lomax) detection times:
    /// `F(t) = 1 − (1 + t/σ)^{−α}`.
    Pareto {
        /// Tail index `α > 0`.
        alpha: f64,
        /// Scale `σ > 0`.
        sigma: f64,
    },
    /// Log-logistic detection times:
    /// `F(t) = 1 / (1 + (t/α)^{−β})`.
    LogLogistic {
        /// Scale `α > 0`.
        alpha: f64,
        /// Shape `β > 0`.
        beta: f64,
    },
    /// Gamma detection times of integer shape 2 (the delayed
    /// S-shaped model): `F(t) = 1 − (1 + bt) e^{−bt}`.
    DelayedSShaped {
        /// Rate `b > 0`.
        rate: f64,
    },
}

impl Lifetime {
    /// The CDF `F(t)` (0 for negative `t`).
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match *self {
            Self::Exponential { rate } => -(-rate * t).exp_m1(),
            Self::Weibull { shape, scale } => -(-(t / scale).powf(shape)).exp_m1(),
            Self::Pareto { alpha, sigma } => 1.0 - (1.0 + t / sigma).powf(-alpha),
            Self::LogLogistic { alpha, beta } => 1.0 / (1.0 + (t / alpha).powf(-beta)),
            Self::DelayedSShaped { rate } => 1.0 - (1.0 + rate * t) * (-rate * t).exp(),
        }
    }

    /// The survival function `S(t) = 1 − F(t)`.
    #[must_use]
    pub fn survival(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// The discrete per-period hazard `p_i = 1 − S(i)/S(i−1)` for the
    /// 1-based period `i` (the paper's detection probability).
    ///
    /// # Panics
    ///
    /// Panics if `i == 0`.
    #[must_use]
    pub fn discrete_hazard(&self, i: u64) -> f64 {
        assert!(i >= 1, "periods are 1-based");
        let s_prev = self.survival((i - 1) as f64);
        if s_prev <= 0.0 {
            return 1.0;
        }
        (1.0 - self.survival(i as f64) / s_prev).clamp(0.0, 1.0)
    }

    /// The full discrete schedule `p_1..p_horizon`.
    #[must_use]
    pub fn discrete_schedule(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon as u64)
            .map(|i| self.discrete_hazard(i))
            .collect()
    }
}

/// A continuous NHPP SRM: expected `ω` total bugs with detection
/// times from `lifetime`; mean value function `m(t) = ω F(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousSrm {
    /// Expected total bug content `ω > 0`.
    pub omega: f64,
    /// Detection-time distribution.
    pub lifetime: Lifetime,
}

impl ContinuousSrm {
    /// Mean value function `m(t) = ω F(t)`.
    #[must_use]
    pub fn mean_value(&self, t: f64) -> f64 {
        self.omega * self.lifetime.cdf(t)
    }

    /// Expected count in the grouped period `(i−1, i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0`.
    #[must_use]
    pub fn expected_period_count(&self, i: u64) -> f64 {
        assert!(i >= 1, "periods are 1-based");
        self.mean_value(i as f64) - self.mean_value((i - 1) as f64)
    }

    /// Expected residual bugs after time `t`: `ω S(t)`.
    #[must_use]
    pub fn expected_residual(&self, t: f64) -> f64 {
        self.omega * self.lifetime.survival(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use srm_math::approx_eq;

    #[test]
    fn cdfs_are_valid() {
        let models = [
            Lifetime::Exponential { rate: 0.2 },
            Lifetime::Weibull {
                shape: 0.7,
                scale: 15.0,
            },
            Lifetime::Pareto {
                alpha: 1.5,
                sigma: 10.0,
            },
            Lifetime::LogLogistic {
                alpha: 20.0,
                beta: 2.0,
            },
            Lifetime::DelayedSShaped { rate: 0.1 },
        ];
        for m in models {
            assert_eq!(m.cdf(-1.0), 0.0);
            let mut prev = 0.0;
            for i in 1..200 {
                let f = m.cdf(i as f64);
                assert!((0.0..=1.0).contains(&f), "{m:?} at {i}");
                assert!(f >= prev, "{m:?} not monotone at {i}");
                prev = f;
            }
            assert!(m.cdf(1e6) > 0.9, "{m:?} tail");
        }
    }

    #[test]
    fn exponential_discretises_to_constant_p() {
        // Memorylessness ⇒ the discrete hazard of the exponential is
        // constant: p = 1 − e^{−b}, i.e. the paper's model0.
        let b = 0.08;
        let lt = Lifetime::Exponential { rate: b };
        let expected = 1.0 - (-b_f(b)).exp();
        for i in 1..100u64 {
            assert!(approx_eq(lt.discrete_hazard(i), expected, 1e-12), "i = {i}");
        }
        // And matches model0 with μ = 1 − e^{−b}.
        let p_model0 = DetectionModel::Constant.prob(&[expected], 17).unwrap();
        assert!(approx_eq(lt.discrete_hazard(17), p_model0, 1e-9));
    }

    fn b_f(b: f64) -> f64 {
        b
    }

    #[test]
    fn weibull_discretisation_matches_discrete_weibull_model() {
        // The discrete Weibull model4 is p_i = 1 − μ^{i^ω − (i−1)^ω};
        // with μ = e^{−(1/λ)^k} and ω = k it equals the discretised
        // continuous Weibull: S(i)/S(i−1) = e^{−((i/λ)^k − ((i−1)/λ)^k)}.
        let (k, lambda) = (0.6f64, 12.0f64);
        let mu = (-(1.0 / lambda).powf(k)).exp();
        let lt = Lifetime::Weibull {
            shape: k,
            scale: lambda,
        };
        for i in 1..60u64 {
            let continuous = lt.discrete_hazard(i);
            let discrete = DetectionModel::Weibull.prob(&[mu, k], i).unwrap();
            assert!(
                approx_eq(continuous, discrete, 1e-9),
                "i = {i}: {continuous} vs {discrete}"
            );
        }
    }

    #[test]
    fn pareto_hazard_decays_like_model3() {
        let lt = Lifetime::Pareto {
            alpha: 1.2,
            sigma: 5.0,
        };
        let schedule = lt.discrete_schedule(100);
        for w in schedule.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn delayed_s_shaped_peaks_then_decays() {
        let srm = ContinuousSrm {
            omega: 100.0,
            lifetime: Lifetime::DelayedSShaped { rate: 0.15 },
        };
        let counts: Vec<f64> = (1..=60).map(|i| srm.expected_period_count(i)).collect();
        let peak = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak > 0 && peak < 30, "peak at {peak}");
    }

    #[test]
    fn mean_value_accounting() {
        let srm = ContinuousSrm {
            omega: 150.0,
            lifetime: Lifetime::Exponential { rate: 0.05 },
        };
        let total_in_periods: f64 = (1..=200).map(|i| srm.expected_period_count(i)).sum();
        assert!(approx_eq(total_in_periods, srm.mean_value(200.0), 1e-9));
        assert!(approx_eq(
            srm.mean_value(200.0) + srm.expected_residual(200.0),
            150.0,
            1e-9
        ));
    }

    #[test]
    fn discretised_schedule_drives_simulator() {
        // The continuous model's discrete schedule plugs straight into
        // the exact simulator; expected detections match ω F(t).
        let srm = ContinuousSrm {
            omega: 400.0,
            lifetime: Lifetime::Weibull {
                shape: 0.8,
                scale: 20.0,
            },
        };
        let schedule = srm.lifetime.discrete_schedule(30);
        let sim = srm_data::DetectionSimulator::new(400, schedule);
        let mean_total: f64 = sim
            .replicate(501, 40)
            .iter()
            .map(|p| p.data.total() as f64)
            .sum::<f64>()
            / 40.0;
        let expected = srm.mean_value(30.0);
        assert!(
            (mean_total - expected).abs() < 0.05 * expected,
            "simulated {mean_total} vs expected {expected}"
        );
    }
}
