//! The five bug-detection-probability models (Eqs. (3)–(7)).
//!
//! Each model maps a small parameter vector `ζ` and a testing day
//! `i ≥ 1` to the probability `p_i` that any given remaining bug is
//! detected on that day. `model0` is the homogeneous environment; the
//! rest describe heterogeneous testing with time-varying probability.

/// Error raised when a detection model is evaluated with an invalid
/// parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The parameter vector has the wrong length.
    WrongDimension {
        /// The model whose evaluation failed.
        model: DetectionModel,
        /// Expected parameter count.
        expected: usize,
        /// Received parameter count.
        got: usize,
    },
    /// A parameter violates its admissible range.
    OutOfRange {
        /// Name of the parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongDimension {
                model,
                expected,
                got,
            } => write!(
                f,
                "{} expects {expected} parameters, got {got}",
                model.name()
            ),
            Self::OutOfRange {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} {constraint}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Upper limits of the uniform hyper-priors on the detection-model
/// parameters (the paper's `θ_max`, plus a symmetric bound for
/// model2's real-valued `γ` which the paper leaves implicit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZetaBounds {
    /// Upper limit for model1's `θ` (`θ ~ Uniform(0, θ_max)`).
    pub theta_max: f64,
    /// Symmetric limit for model2's `γ` (`γ ~ Uniform(−γ_max, γ_max)`).
    pub gamma_max: f64,
}

impl Default for ZetaBounds {
    fn default() -> Self {
        Self {
            theta_max: 10.0,
            gamma_max: 10.0,
        }
    }
}

/// Numerical margin keeping `μ`, `ω` strictly inside their open
/// intervals during sampling/optimisation.
pub const OPEN_EPS: f64 = 1e-9;

/// The five detection-probability models of the paper.
///
/// # Examples
///
/// ```
/// use srm_model::DetectionModel;
///
/// // model0: homogeneous testing, p_i = μ on every day.
/// let p = DetectionModel::Constant.prob(&[0.3], 17).unwrap();
/// assert_eq!(p, 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionModel {
    /// model0: `p_i = μ` (homogeneous testing).
    Constant,
    /// model1: `p_i = 1 − μ/(θ i + 1)` (Padgett–Spurrier).
    PadgettSpurrier,
    /// model2: `p_i = (1 − μ)/(μ^{ln i − γ + 1} + 1)` (discrete
    /// log-logistic hazard).
    LogLogistic,
    /// model3: `p_i = 1 − μ^{ln((i+2)/(i+1))}` (discrete Pareto
    /// hazard).
    Pareto,
    /// model4: `p_i = 1 − μ^{i^ω − (i−1)^ω}` (discrete Weibull
    /// hazard).
    Weibull,
}

impl DetectionModel {
    /// All five models in paper order (`model0`…`model4`).
    pub const ALL: [Self; 5] = [
        Self::Constant,
        Self::PadgettSpurrier,
        Self::LogLogistic,
        Self::Pareto,
        Self::Weibull,
    ];

    /// The paper's index (0–4).
    #[must_use]
    pub fn id(&self) -> usize {
        match self {
            Self::Constant => 0,
            Self::PadgettSpurrier => 1,
            Self::LogLogistic => 2,
            Self::Pareto => 3,
            Self::Weibull => 4,
        }
    }

    /// The paper's label, `"model0"`…`"model4"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Constant => "model0",
            Self::PadgettSpurrier => "model1",
            Self::LogLogistic => "model2",
            Self::Pareto => "model3",
            Self::Weibull => "model4",
        }
    }

    /// Number of parameters in `ζ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Self::Constant | Self::Pareto => 1,
            Self::PadgettSpurrier | Self::LogLogistic | Self::Weibull => 2,
        }
    }

    /// Parameter names, in the order `ζ` is laid out.
    #[must_use]
    pub fn param_names(&self) -> &'static [&'static str] {
        match self {
            Self::Constant | Self::Pareto => &["mu"],
            Self::PadgettSpurrier => &["mu", "theta"],
            Self::LogLogistic => &["mu", "gamma"],
            Self::Weibull => &["mu", "omega"],
        }
    }

    /// Box bounds of the uniform priors on `ζ`, given the
    /// hyper-parameter limits.
    #[must_use]
    pub fn bounds(&self, limits: &ZetaBounds) -> Vec<(f64, f64)> {
        let unit = (OPEN_EPS, 1.0 - OPEN_EPS);
        match self {
            Self::Constant | Self::Pareto => vec![unit],
            Self::PadgettSpurrier => vec![unit, (OPEN_EPS, limits.theta_max)],
            Self::LogLogistic => vec![unit, (-limits.gamma_max, limits.gamma_max)],
            Self::Weibull => vec![unit, unit],
        }
    }

    /// Validates a parameter vector against dimension and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] describing the first violation found.
    pub fn validate(&self, zeta: &[f64]) -> Result<(), ModelError> {
        if zeta.len() != self.dim() {
            return Err(ModelError::WrongDimension {
                model: *self,
                expected: self.dim(),
                got: zeta.len(),
            });
        }
        let mu = zeta[0];
        if !(mu > 0.0 && mu < 1.0 && mu.is_finite()) {
            return Err(ModelError::OutOfRange {
                name: "mu",
                value: mu,
                constraint: "must be in (0, 1)",
            });
        }
        match self {
            Self::PadgettSpurrier => {
                let theta = zeta[1];
                if !(theta > 0.0 && theta.is_finite()) {
                    return Err(ModelError::OutOfRange {
                        name: "theta",
                        value: theta,
                        constraint: "must be > 0",
                    });
                }
            }
            Self::LogLogistic => {
                let gamma = zeta[1];
                if !gamma.is_finite() {
                    return Err(ModelError::OutOfRange {
                        name: "gamma",
                        value: gamma,
                        constraint: "must be finite",
                    });
                }
            }
            Self::Weibull => {
                let omega = zeta[1];
                if !(omega > 0.0 && omega < 1.0 && omega.is_finite()) {
                    return Err(ModelError::OutOfRange {
                        name: "omega",
                        value: omega,
                        constraint: "must be in (0, 1)",
                    });
                }
            }
            Self::Constant | Self::Pareto => {}
        }
        Ok(())
    }

    /// Detection probability `p_i` on (1-based) day `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `zeta` is invalid or `day` is 0.
    pub fn prob(&self, zeta: &[f64], day: u64) -> Result<f64, ModelError> {
        self.validate(zeta)?;
        if day == 0 {
            return Err(ModelError::OutOfRange {
                name: "day",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(self.prob_unchecked(zeta, day))
    }

    /// Detection probability without validation; parameters must have
    /// passed [`DetectionModel::validate`] and `day >= 1`. Hot path of
    /// the samplers.
    #[must_use]
    pub fn prob_unchecked(&self, zeta: &[f64], day: u64) -> f64 {
        let i = day as f64;
        let mu = zeta[0];
        let p = match self {
            Self::Constant => mu,
            Self::PadgettSpurrier => 1.0 - mu / (zeta[1] * i + 1.0),
            Self::LogLogistic => {
                let gamma = zeta[1];
                (1.0 - mu) / (mu.powf(i.ln() - gamma + 1.0) + 1.0)
            }
            Self::Pareto => 1.0 - mu.powf(((i + 2.0) / (i + 1.0)).ln()),
            Self::Weibull => {
                let omega = zeta[1];
                1.0 - mu.powf(i.powf(omega) - (i - 1.0).powf(omega))
            }
        };
        // Keep strictly inside (0, 1): the likelihood takes ln p and
        // ln q, and boundary values only arise from round-off here.
        p.clamp(OPEN_EPS, 1.0 - OPEN_EPS)
    }

    /// The probability schedule `p_1, …, p_horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `zeta` is invalid.
    pub fn probs(&self, zeta: &[f64], horizon: usize) -> Result<Vec<f64>, ModelError> {
        self.validate(zeta)?;
        Ok((1..=horizon as u64)
            .map(|i| self.prob_unchecked(zeta, i))
            .collect())
    }
}

impl std::fmt::Display for DetectionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_names_dims_consistent() {
        for (idx, m) in DetectionModel::ALL.iter().enumerate() {
            assert_eq!(m.id(), idx);
            assert_eq!(m.name(), format!("model{idx}"));
            assert_eq!(m.dim(), m.param_names().len());
            assert_eq!(m.dim(), m.bounds(&ZetaBounds::default()).len());
        }
    }

    #[test]
    fn constant_model_flat_schedule() {
        let probs = DetectionModel::Constant.probs(&[0.42], 10).unwrap();
        assert!(probs.iter().all(|&p| (p - 0.42).abs() < 1e-12));
    }

    #[test]
    fn padgett_spurrier_increases_to_one() {
        let m = DetectionModel::PadgettSpurrier;
        let zeta = [0.9, 0.5];
        let probs = m.probs(&zeta, 200).unwrap();
        for w in probs.windows(2) {
            assert!(w[1] >= w[0], "schedule must be nondecreasing");
        }
        // p_1 = 1 − 0.9/1.5 = 0.4; p_∞ → 1.
        assert!((probs[0] - 0.4).abs() < 1e-12);
        assert!(probs[199] > 0.98);
    }

    #[test]
    fn pareto_hazard_decays() {
        let m = DetectionModel::Pareto;
        let probs = m.probs(&[0.3], 100).unwrap();
        for w in probs.windows(2) {
            assert!(w[1] <= w[0], "Pareto hazard must decay");
        }
        // p_1 = 1 − 0.3^{ln(3/2)}.
        let expected = 1.0 - 0.3f64.powf((3.0f64 / 2.0).ln());
        assert!((probs[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn weibull_hazard_decays_for_omega_below_one() {
        let probs = DetectionModel::Weibull.probs(&[0.5, 0.4], 50).unwrap();
        for w in probs.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // p_1 = 1 − μ.
        assert!((probs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_logistic_limits() {
        let m = DetectionModel::LogLogistic;
        let zeta = [0.4, 0.0];
        let probs = m.probs(&zeta, 2_000).unwrap();
        // As i → ∞ the hazard rises to 1 − μ.
        assert!((probs[1_999] - 0.6).abs() < 0.02);
        // Finite everywhere and inside (0, 1).
        assert!(probs.iter().all(|&p| p > 0.0 && p < 1.0));
    }

    #[test]
    fn gamma_shifts_log_logistic_curve() {
        let m = DetectionModel::LogLogistic;
        let lo = m.prob(&[0.4, -2.0], 5).unwrap();
        let hi = m.prob(&[0.4, 2.0], 5).unwrap();
        // Larger γ shrinks the exponent of μ^{ln i − γ + 1}; with
        // μ < 1 that grows the denominator, lowering p.
        assert!(hi < lo, "hi = {hi}, lo = {lo}");
    }

    #[test]
    fn probabilities_always_in_open_unit_interval() {
        let cases: Vec<(DetectionModel, Vec<f64>)> = vec![
            (DetectionModel::Constant, vec![1.0 - 1e-12]),
            (DetectionModel::PadgettSpurrier, vec![0.999_999, 1e-6]),
            (DetectionModel::LogLogistic, vec![0.001, 9.0]),
            (DetectionModel::Pareto, vec![0.999_999]),
            (DetectionModel::Weibull, vec![0.999_999, 0.999_999]),
        ];
        for (m, zeta) in cases {
            for day in [1u64, 2, 10, 1_000] {
                let p = m.prob_unchecked(&zeta, day);
                assert!(p > 0.0 && p < 1.0, "{m} day {day}: p = {p}");
            }
        }
    }

    #[test]
    fn validation_rejects_wrong_dimension() {
        let err = DetectionModel::PadgettSpurrier
            .validate(&[0.5])
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::WrongDimension {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(DetectionModel::Constant.validate(&[0.0]).is_err());
        assert!(DetectionModel::Constant.validate(&[1.0]).is_err());
        assert!(DetectionModel::PadgettSpurrier
            .validate(&[0.5, 0.0])
            .is_err());
        assert!(DetectionModel::Weibull.validate(&[0.5, 1.0]).is_err());
        assert!(DetectionModel::LogLogistic
            .validate(&[0.5, f64::INFINITY])
            .is_err());
    }

    #[test]
    fn day_zero_rejected() {
        let err = DetectionModel::Constant.prob(&[0.5], 0).unwrap_err();
        assert!(err.to_string().contains("day"));
    }

    #[test]
    fn bounds_respect_limits() {
        let limits = ZetaBounds {
            theta_max: 25.0,
            gamma_max: 3.0,
        };
        let b1 = DetectionModel::PadgettSpurrier.bounds(&limits);
        assert_eq!(b1[1].1, 25.0);
        let b2 = DetectionModel::LogLogistic.bounds(&limits);
        assert_eq!(b2[1], (-3.0, 3.0));
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(DetectionModel::Pareto.to_string(), "model3");
    }
}
