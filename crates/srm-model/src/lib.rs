//! Discrete-time software reliability models.
//!
//! This crate implements §2–§3 of the paper:
//!
//! * [`detection`] — the five bug-detection-probability curves
//!   (`model0`–`model4`, Eqs. (3)–(7));
//! * [`likelihood`] — the grouped-data likelihood (Eq. (2)) and the
//!   pointwise binomial terms WAIC needs;
//! * [`prior`] — the Poisson and negative-binomial priors on the
//!   initial bug content `N`;
//! * [`posterior`] — the analytic posteriors of the residual bug
//!   count (Proposition 1 and the *corrected* Proposition 2; see
//!   DESIGN.md for the reconciliation of Eq. (13));
//! * [`predictive`] — posterior-predictive distribution of the next
//!   day's count;
//! * [`mle`] — the maximum-likelihood baseline (NHPP marginal fits
//!   with AIC/BIC), used for comparison against the Bayesian fits;
//! * [`nhpp`] — the continuous-time NHPP/NHMPP correspondence (mean
//!   value functions).
//!
//! # Examples
//!
//! ```
//! use srm_model::detection::DetectionModel;
//! use srm_model::posterior::poisson_posterior;
//!
//! let model = DetectionModel::PadgettSpurrier;
//! let probs = model.probs(&[0.9, 0.05], 96).unwrap();
//! let data = srm_data::datasets::musa_cc96();
//! let post = poisson_posterior(150.0, &probs, &data);
//! assert!(post.mean() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod continuous;
pub mod detection;
pub mod likelihood;
pub mod markov;
pub mod mle;
pub mod nhpp;
pub mod posterior;
pub mod predictive;
pub mod prior;
pub mod reliability;

pub use detection::{DetectionModel, ModelError, ZetaBounds};
pub use likelihood::GroupedLikelihood;
pub use posterior::{nb_posterior, poisson_posterior, ResidualPosterior};
pub use prior::BugPrior;
