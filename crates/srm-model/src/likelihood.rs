//! The grouped-data likelihood of Eq. (2) and its pointwise pieces.
//!
//! For initial content `N`, daily counts `x_1..x_k` with cumulative
//! sums `s_i`, and detection probabilities `p_i` (with `q_i = 1−p_i`):
//!
//! ```text
//! ln L(N, p) = ln Γ(N+1) − ln Γ(N−s_k+1) − Σ ln Γ(x_i+1)
//!            + Σ x_i ln p_i + Σ (N − s_i) ln q_i
//! ```
//!
//! The per-day factor `P(X_i = x_i | N − s_{i−1}, p_i)` is the
//! binomial p.m.f. of Eq. (1); WAIC treats those as the pointwise
//! predictive terms.

use crate::detection::DetectionModel;
use srm_data::BugCountData;
use srm_math::special::{ln_binomial, ln_factorial};

/// Precomputed sufficient statistics for evaluating Eq. (2) quickly
/// during MCMC: the samplers evaluate the likelihood thousands of
/// times against the same data with different `(N, ζ)`.
///
/// # Examples
///
/// ```
/// use srm_data::BugCountData;
/// use srm_model::{DetectionModel, GroupedLikelihood};
///
/// let data = BugCountData::new(vec![3, 1, 0, 2]).unwrap();
/// let lik = GroupedLikelihood::new(&data);
/// let ll = lik.ln_likelihood_model(10, DetectionModel::Constant, &[0.3]).unwrap();
/// assert!(ll.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedLikelihood {
    counts: Vec<u64>,
    cumulative: Vec<u64>,
    total: u64,
    /// `Σ ln x_i!`, independent of parameters.
    ln_fact_counts: f64,
}

impl GroupedLikelihood {
    /// Builds the evaluator from grouped data.
    #[must_use]
    pub fn new(data: &BugCountData) -> Self {
        let ln_fact_counts = data.counts().iter().map(|&x| ln_factorial(x)).sum();
        Self {
            counts: data.counts().to_vec(),
            cumulative: data.cumulative().to_vec(),
            total: data.total(),
            ln_fact_counts,
        }
    }

    /// Number of testing days `k`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.counts.len()
    }

    /// Total detected bugs `s_k`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The daily counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Log-likelihood `ln P(x | N, p)` for an explicit probability
    /// schedule `probs` (length ≥ horizon; extra entries ignored).
    ///
    /// Returns `-inf` when `N < s_k` (impossible data).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is shorter than the data horizon.
    #[must_use]
    pub fn ln_likelihood(&self, n: u64, probs: &[f64]) -> f64 {
        assert!(
            probs.len() >= self.counts.len(),
            "schedule shorter than data ({} < {})",
            probs.len(),
            self.counts.len()
        );
        if n < self.total {
            return f64::NEG_INFINITY;
        }
        let mut ll = ln_factorial(n) - ln_factorial(n - self.total) - self.ln_fact_counts;
        for ((&count, &p), &cum) in self.counts.iter().zip(probs).zip(&self.cumulative) {
            let q = 1.0 - p;
            let x = count as f64;
            let remaining_after = (n - cum) as f64;
            if p <= 0.0 {
                if count > 0 {
                    return f64::NEG_INFINITY;
                }
                continue; // x_i = 0 and p = 0 contributes factor 1
            }
            if q <= 0.0 {
                if remaining_after > 0.0 {
                    return f64::NEG_INFINITY;
                }
                ll += x * p.ln();
                continue;
            }
            ll += x * p.ln() + remaining_after * q.ln();
        }
        ll
    }

    /// Log-likelihood with the schedule generated from a detection
    /// model and parameter vector.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the model.
    pub fn ln_likelihood_model(
        &self,
        n: u64,
        model: DetectionModel,
        zeta: &[f64],
    ) -> Result<f64, crate::detection::ModelError> {
        let probs = model.probs(zeta, self.horizon())?;
        Ok(self.ln_likelihood(n, &probs))
    }

    /// The pointwise log term `ln P(X_i = x_i | N − s_{i−1}, p_i)`
    /// (Eq. (1)) for 1-based day `i` — the WAIC building block.
    ///
    /// Returns `-inf` for impossible configurations.
    ///
    /// # Panics
    ///
    /// Panics if `day` is 0 or beyond the horizon.
    #[must_use]
    pub fn ln_pointwise(&self, n: u64, probs: &[f64], day: usize) -> f64 {
        assert!(
            day >= 1 && day <= self.counts.len(),
            "day {day} out of range"
        );
        let x = self.counts[day - 1];
        let s_prev = if day == 1 {
            0
        } else {
            self.cumulative[day - 2]
        };
        if n < s_prev + x {
            return f64::NEG_INFINITY;
        }
        let trials = n - s_prev;
        let p = probs[day - 1];
        if p <= 0.0 {
            return if x == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if p >= 1.0 {
            return if x == trials { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial(trials, x) + x as f64 * p.ln() + (trials - x) as f64 * (1.0 - p).ln()
    }

    /// All pointwise log terms at once (one per day).
    #[must_use]
    pub fn ln_pointwise_all(&self, n: u64, probs: &[f64]) -> Vec<f64> {
        (1..=self.counts.len())
            .map(|day| self.ln_pointwise(n, probs, day))
            .collect()
    }

    /// `Π_{i ≤ k} q_i` — the survival factor of Props. 1–2, returned
    /// in log space for stability.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is shorter than the data horizon.
    #[must_use]
    pub fn ln_survival(&self, probs: &[f64]) -> f64 {
        assert!(probs.len() >= self.counts.len());
        probs[..self.counts.len()]
            .iter()
            .map(|&p| (1.0 - p).max(0.0).ln())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_math::approx_eq;

    fn tiny() -> (GroupedLikelihood, Vec<f64>) {
        let data = BugCountData::new(vec![2, 1]).unwrap();
        (GroupedLikelihood::new(&data), vec![0.4, 0.25])
    }

    /// Brute-force Eq. (2) by multiplying the sequential binomials of
    /// Eq. (1) — an independent derivation path.
    fn brute_force_ll(n: u64, counts: &[u64], probs: &[f64]) -> f64 {
        let mut remaining = n;
        let mut ll = 0.0;
        for (i, &x) in counts.iter().enumerate() {
            if x > remaining {
                return f64::NEG_INFINITY;
            }
            let p = probs[i];
            ll += ln_binomial(remaining, x)
                + x as f64 * p.ln()
                + (remaining - x) as f64 * (1.0 - p).ln();
            remaining -= x;
        }
        ll
    }

    #[test]
    fn matches_sequential_binomial_factorisation() {
        let (lik, probs) = tiny();
        for n in 3..30u64 {
            let direct = lik.ln_likelihood(n, &probs);
            let seq = brute_force_ll(n, lik.counts(), &probs);
            assert!(approx_eq(direct, seq, 1e-10), "n = {n}: {direct} vs {seq}");
        }
    }

    #[test]
    fn matches_on_musa_data() {
        let data = srm_data::datasets::musa_cc96();
        let lik = GroupedLikelihood::new(&data);
        let probs = DetectionModel::PadgettSpurrier
            .probs(&[0.9, 0.05], data.len())
            .unwrap();
        for &n in &[136u64, 150, 300, 1000] {
            let direct = lik.ln_likelihood(n, &probs);
            let seq = brute_force_ll(n, data.counts(), &probs);
            assert!(approx_eq(direct, seq, 1e-8), "n = {n}");
        }
    }

    #[test]
    fn impossible_n_is_neg_inf() {
        let (lik, probs) = tiny();
        assert_eq!(lik.ln_likelihood(2, &probs), f64::NEG_INFINITY);
        assert!(lik.ln_likelihood(3, &probs).is_finite());
    }

    #[test]
    fn pointwise_terms_sum_to_joint() {
        let (lik, probs) = tiny();
        for n in 3..20u64 {
            let joint = lik.ln_likelihood(n, &probs);
            let sum: f64 = lik.ln_pointwise_all(n, &probs).iter().sum();
            assert!(approx_eq(joint, sum, 1e-10), "n = {n}");
        }
    }

    #[test]
    fn pointwise_probabilities_normalise() {
        // Σ_x P(X_2 = x | ·) over all feasible x must be 1.
        let data = BugCountData::new(vec![2, 0]).unwrap();
        let probs = [0.4, 0.25];
        let n = 10u64;
        let mut total = 0.0;
        for x2 in 0..=(n - 2) {
            let d = BugCountData::new(vec![2, x2]).unwrap();
            let l = GroupedLikelihood::new(&d);
            total += l.ln_pointwise(n, &probs, 2).exp();
        }
        assert!(approx_eq(total, 1.0, 1e-10), "total = {total}");
        let _ = data; // silence unused in non-test builds
    }

    #[test]
    fn certain_detection_edge_cases() {
        // p = 1 on day 1: all N bugs must be found that day.
        let data = BugCountData::new(vec![5]).unwrap();
        let lik = GroupedLikelihood::new(&data);
        assert_eq!(lik.ln_likelihood(5, &[1.0]), 0.0);
        assert_eq!(lik.ln_likelihood(6, &[1.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn zero_detection_edge_cases() {
        // p = 0: only zero counts are possible.
        let data = BugCountData::new(vec![0, 1]).unwrap();
        let lik = GroupedLikelihood::new(&data);
        assert_eq!(lik.ln_likelihood(5, &[0.0, 0.5]), {
            // day 1 contributes factor 1; day 2 is Binom(5, 0.5) at 1.
            ln_binomial(5, 1) + 1.0 * 0.5f64.ln() + 4.0 * 0.5f64.ln()
        });
        let data2 = BugCountData::new(vec![1]).unwrap();
        let lik2 = GroupedLikelihood::new(&data2);
        assert_eq!(lik2.ln_likelihood(5, &[0.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn survival_factor_is_log_product() {
        let (lik, probs) = tiny();
        let expected = (0.6f64).ln() + (0.75f64).ln();
        assert!(approx_eq(lik.ln_survival(&probs), expected, 1e-12));
    }

    #[test]
    fn model_schedule_integration() {
        let data = BugCountData::new(vec![1, 2, 0]).unwrap();
        let lik = GroupedLikelihood::new(&data);
        let via_model = lik
            .ln_likelihood_model(8, DetectionModel::Constant, &[0.3])
            .unwrap();
        let direct = lik.ln_likelihood(8, &[0.3, 0.3, 0.3]);
        assert!(approx_eq(via_model, direct, 1e-12));
        assert!(lik
            .ln_likelihood_model(8, DetectionModel::Constant, &[1.5])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "schedule shorter")]
    fn short_schedule_panics() {
        let (lik, _) = tiny();
        let _ = lik.ln_likelihood(5, &[0.5]);
    }

    #[test]
    fn likelihood_maximised_near_true_n_constant_model() {
        // With p known, the profile likelihood in N should peak near
        // the true initial content.
        let sim = srm_data::DetectionSimulator::new(200, vec![0.05; 60]);
        let project = sim.run(77);
        let lik = GroupedLikelihood::new(&project.data);
        let probs = vec![0.05; 60];
        let best_n = (project.data.total()..400)
            .max_by(|&a, &b| {
                lik.ln_likelihood(a, &probs)
                    .partial_cmp(&lik.ln_likelihood(b, &probs))
                    .unwrap()
            })
            .unwrap();
        assert!(
            (best_n as i64 - 200).unsigned_abs() < 40,
            "best_n = {best_n}"
        );
    }
}
