//! The unified non-homogeneous Markov (pure-death) process view.
//!
//! Li, Dohi & Okamura (2023) — cited by the paper — observe that both
//! the NHPP- and NHMPP-based SRMs are special cases of one
//! non-homogeneous Markov process: the remaining-bug count is a death
//! chain whose day-`i` transition is binomial thinning with
//! probability `p_i`, and the prior on the initial state is
//! arbitrary. This module implements exact forward filtering for that
//! general chain:
//!
//! * any prior p.m.f. over the initial content (truncated support);
//! * exact posterior of the residual count after the data;
//! * exact marginal log-likelihood (the filter's normalising
//!   constants).
//!
//! Besides being a modelling generalisation, this is an independent
//! numerical oracle: for Poisson/NB priors its output must equal
//! Propositions 1–2, which the tests verify.

use srm_data::BugCountData;
use srm_math::special::ln_binomial;

/// Error raised by the forward filter.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// The prior p.m.f. was empty or had no positive mass.
    DegeneratePrior,
    /// The data contain more bugs than the prior support allows.
    SupportExceeded {
        /// Total bugs in the data.
        total: u64,
        /// Largest initial content with prior mass.
        support_max: usize,
    },
    /// The probability schedule is shorter than the data.
    ScheduleTooShort,
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DegeneratePrior => write!(f, "prior has no positive mass"),
            Self::SupportExceeded { total, support_max } => write!(
                f,
                "data total {total} exceeds prior support maximum {support_max}"
            ),
            Self::ScheduleTooShort => write!(f, "schedule shorter than data"),
        }
    }
}

impl std::error::Error for FilterError {}

/// The outcome of exact forward filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredPosterior {
    /// `posterior[r]` = P(residual = r | data), r = 0.. .
    pub residual_pmf: Vec<f64>,
    /// Exact marginal log-likelihood `ln P(x)` under the prior.
    pub log_marginal: f64,
}

impl FilteredPosterior {
    /// Posterior mean of the residual count.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.residual_pmf
            .iter()
            .enumerate()
            .map(|(r, &p)| r as f64 * p)
            .sum()
    }

    /// Posterior variance of the residual count.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.residual_pmf
            .iter()
            .enumerate()
            .map(|(r, &p)| (r as f64 - mean).powi(2) * p)
            .sum()
    }

    /// Smallest `r` with cumulative mass ≥ `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> usize {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1)");
        let mut acc = 0.0;
        for (r, &mass) in self.residual_pmf.iter().enumerate() {
            acc += mass;
            if acc >= p {
                return r;
            }
        }
        self.residual_pmf.len().saturating_sub(1)
    }
}

/// Exact forward filter for the death chain: takes an arbitrary prior
/// p.m.f. over the *initial* bug content (index = count, truncated
/// support) and returns the residual posterior and marginal
/// likelihood.
///
/// Complexity is O(support × days); supports of a few thousand run in
/// milliseconds.
///
/// # Errors
///
/// Returns [`FilterError`] on degenerate priors, insufficient support
/// or short schedules.
///
/// # Examples
///
/// ```
/// use srm_data::BugCountData;
/// use srm_model::markov::forward_filter;
///
/// // A uniform prior over 0..=50 initial bugs — something neither
/// // Proposition covers.
/// let prior = vec![1.0; 51];
/// let data = BugCountData::new(vec![3, 2]).unwrap();
/// let post = forward_filter(&prior, &[0.2, 0.2], &data).unwrap();
/// let total: f64 = post.residual_pmf.iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
pub fn forward_filter(
    prior_pmf: &[f64],
    probs: &[f64],
    data: &BugCountData,
) -> Result<FilteredPosterior, FilterError> {
    let support = prior_pmf.len();
    let prior_total: f64 = prior_pmf.iter().sum();
    if support == 0 || prior_total <= 0.0 {
        return Err(FilterError::DegeneratePrior);
    }
    if probs.len() < data.len() {
        return Err(FilterError::ScheduleTooShort);
    }
    let total = data.total();
    if (total as usize) >= support {
        return Err(FilterError::SupportExceeded {
            total,
            support_max: support - 1,
        });
    }

    // State: unnormalised density over the *remaining* count.
    // Initially remaining = initial content.
    let mut state: Vec<f64> = prior_pmf.iter().map(|&w| w / prior_total).collect();
    let mut log_marginal = 0.0;

    for (day, &x) in data.counts().iter().enumerate() {
        let p = probs[day];
        let x = x as usize;
        // P(next remaining = m − x, observe x | remaining = m)
        //   = C(m, x) p^x q^{m−x}.
        let mut next = vec![0.0f64; state.len().saturating_sub(x)];
        let (ln_p, ln_q) = if p <= 0.0 {
            (f64::NEG_INFINITY, 0.0)
        } else if p >= 1.0 {
            (0.0, f64::NEG_INFINITY)
        } else {
            (p.ln(), (1.0 - p).ln())
        };
        for (m, &w) in state.iter().enumerate().skip(x) {
            if w <= 0.0 {
                continue;
            }
            let ln_trans = if p <= 0.0 {
                if x == 0 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            } else if p >= 1.0 {
                if m == x {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            } else {
                ln_binomial(m as u64, x as u64) + x as f64 * ln_p + (m - x) as f64 * ln_q
            };
            if ln_trans > f64::NEG_INFINITY {
                next[m - x] += w * ln_trans.exp();
            }
        }
        let step_mass: f64 = next.iter().sum();
        if step_mass <= 0.0 {
            // Data impossible under this prior/schedule.
            return Ok(FilteredPosterior {
                residual_pmf: vec![1.0],
                log_marginal: f64::NEG_INFINITY,
            });
        }
        log_marginal += step_mass.ln();
        for w in &mut next {
            *w /= step_mass;
        }
        state = next;
    }

    Ok(FilteredPosterior {
        residual_pmf: state,
        log_marginal,
    })
}

/// Builds a truncated prior p.m.f. from a [`crate::prior::BugPrior`],
/// keeping mass up to `support_max` (the tail is dropped; choose the
/// truncation so the dropped mass is negligible).
///
/// # Examples
///
/// ```
/// use srm_model::markov::truncated_prior_pmf;
/// use srm_model::BugPrior;
///
/// let prior = BugPrior::poisson(20.0).unwrap();
/// let pmf = truncated_prior_pmf(&prior, 200);
/// let total: f64 = pmf.iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn truncated_prior_pmf(prior: &crate::prior::BugPrior, support_max: usize) -> Vec<f64> {
    (0..=support_max as u64)
        .map(|n| prior.ln_pmf(n).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::{nb_posterior, poisson_posterior};
    use crate::prior::BugPrior;
    use srm_math::approx_eq;

    fn case() -> (BugCountData, Vec<f64>) {
        let data = BugCountData::new(vec![4, 1, 0, 3]).unwrap();
        (data, vec![0.25, 0.15, 0.3, 0.2])
    }

    #[test]
    fn matches_proposition_one() {
        let (data, probs) = case();
        let prior = BugPrior::poisson(25.0).unwrap();
        let pmf = truncated_prior_pmf(&prior, 400);
        let filtered = forward_filter(&pmf, &probs, &data).unwrap();
        let analytic = poisson_posterior(25.0, &probs, &data);
        for r in 0..60u64 {
            assert!(
                approx_eq(
                    filtered.residual_pmf[r as usize],
                    analytic.ln_pmf(r).exp(),
                    1e-8
                ),
                "r = {r}"
            );
        }
        assert!(approx_eq(filtered.mean(), analytic.mean(), 1e-6));
    }

    #[test]
    fn matches_corrected_proposition_two() {
        let (data, probs) = case();
        let prior = BugPrior::neg_binomial(3.0, 0.2).unwrap();
        let pmf = truncated_prior_pmf(&prior, 1_500);
        let filtered = forward_filter(&pmf, &probs, &data).unwrap();
        let analytic = nb_posterior(3.0, 0.2, &probs, &data);
        for r in 0..100u64 {
            assert!(
                approx_eq(
                    filtered.residual_pmf[r as usize],
                    analytic.ln_pmf(r).exp(),
                    1e-7
                ),
                "r = {r}"
            );
        }
    }

    #[test]
    fn marginal_matches_direct_sum() {
        // ln P(x) = ln Σ_n prior(n) L(x | n) computed directly.
        let (data, probs) = case();
        let prior = BugPrior::poisson(15.0).unwrap();
        let pmf = truncated_prior_pmf(&prior, 300);
        let filtered = forward_filter(&pmf, &probs, &data).unwrap();
        let lik = crate::likelihood::GroupedLikelihood::new(&data);
        let logs: Vec<f64> = (0..300u64)
            .map(|n| prior.ln_pmf(n) + lik.ln_likelihood(n, &probs))
            .collect();
        let direct = srm_math::log_sum_exp(&logs);
        assert!(
            approx_eq(filtered.log_marginal, direct, 1e-8),
            "{} vs {direct}",
            filtered.log_marginal
        );
    }

    #[test]
    fn arbitrary_prior_is_supported() {
        // A bimodal prior no Proposition covers: mass at 10 and 40.
        let mut pmf = vec![0.0; 60];
        pmf[10] = 0.5;
        pmf[40] = 0.5;
        let data = BugCountData::new(vec![8, 4]).unwrap();
        let filtered = forward_filter(&pmf, &[0.4, 0.4], &data).unwrap();
        // 12 bugs found: the 10-mode cannot explain the data, so the
        // posterior is the point mass at 40 − 12 = 28 residual bugs.
        assert!(filtered.residual_pmf.len() <= 48);
        let mean = filtered.mean();
        assert!(approx_eq(mean, 28.0, 1e-9), "mean = {mean}");
        assert!(approx_eq(filtered.residual_pmf[28], 1.0, 1e-9));
        let total: f64 = filtered.residual_pmf.iter().sum();
        assert!(approx_eq(total, 1.0, 1e-12));
    }

    #[test]
    fn impossible_data_reported() {
        // Prior support max 5 but 8 bugs observed.
        let pmf = vec![1.0; 6];
        let data = BugCountData::new(vec![8]).unwrap();
        let err = forward_filter(&pmf, &[0.5], &data).unwrap_err();
        assert!(matches!(err, FilterError::SupportExceeded { total: 8, .. }));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let data = BugCountData::new(vec![1]).unwrap();
        assert_eq!(
            forward_filter(&[], &[0.5], &data).unwrap_err(),
            FilterError::DegeneratePrior
        );
        assert_eq!(
            forward_filter(&[0.0, 0.0], &[0.5], &data).unwrap_err(),
            FilterError::DegeneratePrior
        );
        assert_eq!(
            forward_filter(&[1.0; 10], &[], &data).unwrap_err(),
            FilterError::ScheduleTooShort
        );
    }

    #[test]
    fn edge_probabilities() {
        // p = 1 drains everything on day one.
        let pmf = truncated_prior_pmf(&BugPrior::poisson(5.0).unwrap(), 60);
        let data = BugCountData::new(vec![7]).unwrap();
        let filtered = forward_filter(&pmf, &[1.0], &data).unwrap();
        assert!(approx_eq(filtered.residual_pmf[0], 1.0, 1e-12));
        // p = 0 with zero observations leaves the prior intact
        // (shifted by nothing).
        let data0 = BugCountData::new(vec![0]).unwrap();
        let filtered0 = forward_filter(&pmf, &[0.0], &data0).unwrap();
        for (r, &m) in filtered0.residual_pmf.iter().enumerate().take(20) {
            assert!(approx_eq(m, pmf[r] / pmf.iter().sum::<f64>(), 1e-9));
        }
    }

    #[test]
    fn quantile_consistency() {
        let pmf = truncated_prior_pmf(&BugPrior::poisson(30.0).unwrap(), 300);
        let data = BugCountData::new(vec![2, 3]).unwrap();
        let filtered = forward_filter(&pmf, &[0.1, 0.1], &data).unwrap();
        let median = filtered.quantile(0.5);
        let mut acc = 0.0;
        for &m in &filtered.residual_pmf[..median] {
            acc += m;
        }
        assert!(acc < 0.5);
        assert!(acc + filtered.residual_pmf[median] >= 0.5);
    }
}
