//! Maximum-likelihood baseline (the non-Bayesian comparator).
//!
//! Under the Poisson prior, marginalising `N` makes the daily counts
//! independent Poissons: `x_i ~ Poisson(λ0 w_i)` with
//! `w_i = p_i Π_{j<i} q_j` — the discrete NHPP-based SRM. Its MLE has
//! a closed-form profile in `λ0` (`λ̂0 = s_k / Σ w_i`), leaving a 1–2
//! dimensional search over `ζ` that Nelder–Mead handles. AIC/BIC are
//! valid here (the paper notes they are *not* valid for the Bayesian
//! fits, which is why it uses WAIC — we implement both sides so the
//! contrast is reproducible).

use crate::detection::{DetectionModel, ModelError, ZetaBounds};
use srm_data::BugCountData;
use srm_math::optim::{nelder_mead, NelderMeadConfig};
use srm_math::special::ln_factorial;

/// Result of a maximum-likelihood NHPP fit.
#[derive(Debug, Clone, PartialEq)]
pub struct MleFit {
    /// The detection model that was fitted.
    pub model: DetectionModel,
    /// Fitted detection parameters `ζ̂`.
    pub zeta: Vec<f64>,
    /// Fitted expected initial content `λ̂0`.
    pub lambda0: f64,
    /// Maximised log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion `2k − 2 ln L̂` (parameters:
    /// `|ζ| + 1` for `λ0`).
    pub aic: f64,
    /// Bayesian information criterion `k ln n − 2 ln L̂`.
    pub bic: f64,
    /// Whether the optimiser reported convergence.
    pub converged: bool,
}

impl MleFit {
    /// Expected residual bugs after the last observed day:
    /// `λ̂0 Π q̂_i`.
    #[must_use]
    pub fn expected_residual(&self, horizon: usize) -> f64 {
        // The optimiser only ever stores in-domain parameters; an
        // out-of-domain vector would have scored -inf and been rejected.
        let probs = self
            .model
            .probs(&self.zeta, horizon)
            .unwrap_or_else(|_| unreachable!());
        let survival: f64 = probs.iter().map(|&p| (1.0 - p).ln()).sum();
        self.lambda0 * survival.exp()
    }

    /// Asymptotic standard errors of `(λ0, ζ…)` from the inverse of
    /// the observed information (numerical Hessian of the negative
    /// marginal log-likelihood at the MLE). Returns `None` when the
    /// Hessian is singular — which genuinely happens when the MLE sits
    /// on the identifiability ridge (models 0/3/4 on growth-less
    /// data), and is worth surfacing rather than papering over.
    #[must_use]
    pub fn standard_errors(&self, data: &BugCountData) -> Option<Vec<f64>> {
        let counts = data.counts().to_vec();
        let horizon = data.len();
        let model = self.model;
        let dim = 1 + self.zeta.len();
        let neg_ll = move |theta: &[f64]| -> f64 {
            let lambda0 = theta[0];
            let zeta = &theta[1..];
            if lambda0 <= 0.0 || model.validate(zeta).is_err() {
                return f64::INFINITY;
            }
            let mut survival = 1.0;
            let mut ll = 0.0;
            for (i, &x) in counts.iter().enumerate() {
                let p = model.prob_unchecked(zeta, (i + 1) as u64);
                let w = p * survival;
                survival *= 1.0 - p;
                let mean = lambda0 * w;
                if mean <= 0.0 {
                    if x > 0 {
                        return f64::INFINITY;
                    }
                    continue;
                }
                ll += x as f64 * mean.ln() - mean - ln_factorial(x);
            }
            let _ = horizon;
            -ll
        };
        let mut theta = Vec::with_capacity(dim);
        theta.push(self.lambda0);
        theta.extend_from_slice(&self.zeta);
        let hessian = srm_math::optim::numerical_hessian(neg_ll, &theta, 1e-4);
        if hessian.iter().flatten().any(|v| !v.is_finite()) {
            return None;
        }
        let cov = srm_math::optim::invert_matrix(&hessian)?;
        let ses: Vec<f64> = (0..dim).map(|i| cov[i][i].max(0.0).sqrt()).collect();
        if ses.iter().all(|s| s.is_finite() && *s > 0.0) {
            Some(ses)
        } else {
            None
        }
    }
}

/// The marginal (NHPP) log-likelihood for a given schedule, profiled
/// over `λ0`; returns `(profile λ0, log-likelihood)`.
fn profile_loglik(counts: &[u64], probs: &[f64]) -> (f64, f64) {
    let total: u64 = counts.iter().sum();
    let mut survival = 1.0;
    let mut weights = Vec::with_capacity(counts.len());
    for &p in &probs[..counts.len()] {
        weights.push(p * survival);
        survival *= 1.0 - p;
    }
    let weight_sum: f64 = weights.iter().sum();
    if weight_sum <= 0.0 || total == 0 {
        // No detectability (or no data): λ̂0 → 0; define ll at limit.
        let ll = -counts.iter().map(|&x| ln_factorial(x)).sum::<f64>();
        return (0.0, if total == 0 { ll } else { f64::NEG_INFINITY });
    }
    let lambda0 = total as f64 / weight_sum;
    let mut ll = 0.0;
    for (&x, &w) in counts.iter().zip(&weights) {
        let mean = lambda0 * w;
        if mean <= 0.0 {
            if x > 0 {
                return (lambda0, f64::NEG_INFINITY);
            }
            continue;
        }
        ll += x as f64 * mean.ln() - mean - ln_factorial(x);
    }
    (lambda0, ll)
}

/// Fits the discrete NHPP model by maximum likelihood with a
/// multi-start Nelder–Mead search over `ζ`.
///
/// # Errors
///
/// Returns [`ModelError`] if every start fails to produce a finite
/// likelihood (cannot happen for valid data, but kept explicit).
pub fn fit_nhpp(
    data: &BugCountData,
    model: DetectionModel,
    limits: &ZetaBounds,
) -> Result<MleFit, ModelError> {
    let bounds = model.bounds(limits);
    let horizon = data.len();
    let counts = data.counts().to_vec();

    let objective = |zeta: &[f64]| -> f64 {
        if model.validate(zeta).is_err() {
            return f64::INFINITY;
        }
        let probs: Vec<f64> = (1..=horizon as u64)
            .map(|i| model.prob_unchecked(zeta, i))
            .collect();
        let (_, ll) = profile_loglik(&counts, &probs);
        -ll
    };

    // Multi-start grid: 3 points per dimension inside the box.
    let mut starts: Vec<Vec<f64>> = vec![vec![]];
    for &(lo, hi) in &bounds {
        let mut next = Vec::new();
        for s in &starts {
            for frac in [0.15, 0.5, 0.85] {
                let mut v = s.clone();
                v.push(lo + frac * (hi - lo));
                next.push(v);
            }
        }
        starts = next;
    }

    let config = NelderMeadConfig {
        max_evals: 5_000,
        ..NelderMeadConfig::default()
    };
    let mut best: Option<(Vec<f64>, f64, bool)> = None;
    for start in starts {
        let r = nelder_mead(objective, &start, Some(&bounds), &config);
        if r.fx.is_finite() {
            let better = best.as_ref().is_none_or(|(_, fx, _)| r.fx < *fx);
            if better {
                best = Some((r.x, r.fx, r.converged));
            }
        }
    }
    let (zeta, neg_ll, converged) = best.ok_or(ModelError::OutOfRange {
        name: "zeta",
        value: f64::NAN,
        constraint: "no feasible starting point",
    })?;

    let probs = model.probs(&zeta, horizon)?;
    let (lambda0, log_likelihood) = profile_loglik(&counts, &probs);
    debug_assert!((log_likelihood + neg_ll).abs() < 1e-6);
    let k = (model.dim() + 1) as f64;
    let n = data.len() as f64;
    Ok(MleFit {
        model,
        zeta,
        lambda0,
        log_likelihood,
        aic: 2.0 * k - 2.0 * log_likelihood,
        bic: k * n.ln() - 2.0 * log_likelihood,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_data::datasets;

    #[test]
    fn profile_lambda_matches_closed_form() {
        let counts = [3u64, 2, 1];
        let probs = [0.2, 0.2, 0.2];
        let (lambda0, ll) = profile_loglik(&counts, &probs);
        // w = [0.2, 0.16, 0.128], Σw = 0.488, λ̂0 = 6/0.488.
        assert!((lambda0 - 6.0 / 0.488).abs() < 1e-10);
        assert!(ll.is_finite());
        // Perturbing λ0 must not improve the likelihood.
        let ll_at = |l: f64| {
            let w = [0.2, 0.16, 0.128];
            counts
                .iter()
                .zip(&w)
                .map(|(&x, &wi)| {
                    let m = l * wi;
                    x as f64 * m.ln() - m - ln_factorial(x)
                })
                .sum::<f64>()
        };
        assert!(ll_at(lambda0) >= ll_at(lambda0 * 1.05) - 1e-12);
        assert!(ll_at(lambda0) >= ll_at(lambda0 * 0.95) - 1e-12);
    }

    #[test]
    fn recovers_simulated_constant_model() {
        let sim = srm_data::DetectionSimulator::new(300, vec![0.04; 80]);
        let project = sim.run(2024);
        let fit = fit_nhpp(
            &project.data,
            DetectionModel::Constant,
            &ZetaBounds::default(),
        )
        .unwrap();
        assert!((fit.zeta[0] - 0.04).abs() < 0.02, "mu = {}", fit.zeta[0]);
        assert!(
            (fit.lambda0 - 300.0).abs() < 90.0,
            "lambda0 = {}",
            fit.lambda0
        );
    }

    #[test]
    fn all_models_fit_musa_data() {
        let data = datasets::musa_cc96();
        let mut lls = Vec::new();
        for model in DetectionModel::ALL {
            let fit = fit_nhpp(&data, model, &ZetaBounds::default()).unwrap();
            assert!(fit.log_likelihood.is_finite(), "{model}");
            assert!(fit.lambda0 >= 136.0 * 0.5, "{model}: λ0 = {}", fit.lambda0);
            assert!(fit.aic > 0.0 && fit.bic > 0.0);
            lls.push((model, fit.log_likelihood, fit.aic));
        }
        // The heterogeneous models with a time-scale parameter
        // (model1, model2) must clearly beat the rest on this
        // dataset, mirroring the paper's WAIC ranking where model1
        // dominates and model2 trails it closely.
        let aic_of = |target: DetectionModel| lls.iter().find(|(m, _, _)| *m == target).unwrap().2;
        let hetero_best =
            aic_of(DetectionModel::PadgettSpurrier).min(aic_of(DetectionModel::LogLogistic));
        for loser in [
            DetectionModel::Constant,
            DetectionModel::Pareto,
            DetectionModel::Weibull,
        ] {
            assert!(
                aic_of(loser) > hetero_best + 10.0,
                "{loser} unexpectedly competitive"
            );
        }
    }

    #[test]
    fn standard_errors_cover_simulated_truth() {
        // Simulate from the constant model and check the λ0 SE is the
        // right order: the truth should lie within ~3 SEs of the MLE.
        let sim = srm_data::DetectionSimulator::new(300, vec![0.05; 70]);
        let project = sim.run(4_041);
        let fit = fit_nhpp(
            &project.data,
            DetectionModel::Constant,
            &ZetaBounds::default(),
        )
        .unwrap();
        let ses = fit
            .standard_errors(&project.data)
            .expect("information exists");
        assert_eq!(ses.len(), 2); // (λ0, μ)
        assert!(ses[0] > 1.0, "λ0 SE = {}", ses[0]);
        assert!(
            (fit.lambda0 - 300.0).abs() < 4.0 * ses[0],
            "MLE {} truth 300 SE {}",
            fit.lambda0,
            ses[0]
        );
        assert!(ses[1] > 0.0 && ses[1] < 0.2, "μ SE = {}", ses[1]);
    }

    #[test]
    fn ridge_mle_reports_singular_information() {
        // model0 on the musa data sits on the identifiability ridge
        // (λ̂0 → boundary huge); the observed information there is
        // effectively singular and must be reported as such.
        let data = datasets::musa_cc96();
        let fit = fit_nhpp(&data, DetectionModel::Constant, &ZetaBounds::default()).unwrap();
        // Either None (singular) or gigantic SEs; both communicate
        // "do not trust these point estimates".
        match fit.standard_errors(&data) {
            None => {}
            Some(ses) => assert!(ses[0] > 0.1 * fit.lambda0, "λ0 SE suspiciously small"),
        }
    }

    #[test]
    fn aic_bic_ordering() {
        // BIC penalises harder than AIC once ln n > 2.
        let data = datasets::musa_cc96();
        let fit = fit_nhpp(&data, DetectionModel::Weibull, &ZetaBounds::default()).unwrap();
        assert!(fit.bic > fit.aic);
    }

    #[test]
    fn expected_residual_decreases_with_horizon() {
        let data = datasets::musa_cc96();
        let fit = fit_nhpp(
            &data,
            DetectionModel::PadgettSpurrier,
            &ZetaBounds::default(),
        )
        .unwrap();
        let r96 = fit.expected_residual(96);
        let r146 = fit.expected_residual(146);
        assert!(r146 < r96);
        assert!(r146 >= 0.0);
    }

    #[test]
    fn zero_data_profile_is_degenerate() {
        let (lambda0, ll) = profile_loglik(&[0, 0], &[0.3, 0.3]);
        assert_eq!(lambda0, 0.0);
        assert!(ll.is_finite());
    }
}
