//! Continuous-time correspondence: NHPP / NHMPP mean value functions.
//!
//! Marginalising `N` turns the discrete detection process into a
//! non-homogeneous (mixed) Poisson process whose mean value function
//! at day `i` is `m(i) = E[N] · (1 − Π_{j ≤ i} q_j)`. This module
//! exposes those curves for plotting (Fig. 1 overlays) and for
//! validating the simulator against theory.

use crate::detection::DetectionModel;
use crate::prior::BugPrior;

/// The expected cumulative detection curve `m(1), …, m(horizon)` of
/// the marginal process induced by `prior` and the detection model.
///
/// # Panics
///
/// Panics if `zeta` is invalid for `model`.
///
/// # Examples
///
/// ```
/// use srm_model::{BugPrior, DetectionModel};
/// use srm_model::nhpp::mean_value_curve;
///
/// let prior = BugPrior::poisson(100.0).unwrap();
/// let curve = mean_value_curve(&prior, DetectionModel::Constant, &[0.1], 50);
/// assert!(curve[49] > curve[0]);
/// assert!(curve[49] <= 100.0);
/// ```
#[must_use]
pub fn mean_value_curve(
    prior: &BugPrior,
    model: DetectionModel,
    zeta: &[f64],
    horizon: usize,
) -> Vec<f64> {
    let probs = match model.probs(zeta, horizon) {
        Ok(p) => p,
        Err(e) => panic!("mean_value_curve: {e:?}"),
    };
    let mean_n = prior.mean();
    let mut survival = 1.0;
    probs
        .iter()
        .map(|&p| {
            survival *= 1.0 - p;
            mean_n * (1.0 - survival)
        })
        .collect()
}

/// The expected *daily* detection intensity `m(i) − m(i−1)`.
#[must_use]
pub fn intensity_curve(
    prior: &BugPrior,
    model: DetectionModel,
    zeta: &[f64],
    horizon: usize,
) -> Vec<f64> {
    let cumulative = mean_value_curve(prior, model, zeta, horizon);
    let mut prev = 0.0;
    cumulative
        .into_iter()
        .map(|m| {
            let d = m - prev;
            prev = m;
            d
        })
        .collect()
}

/// Expected residual bugs after `horizon` days,
/// `E[N] · Π_{j ≤ horizon} q_j`.
#[must_use]
pub fn expected_residual(
    prior: &BugPrior,
    model: DetectionModel,
    zeta: &[f64],
    horizon: usize,
) -> f64 {
    let curve = mean_value_curve(prior, model, zeta, horizon);
    prior.mean() - curve.last().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_and_bounded() {
        let prior = BugPrior::poisson(250.0).unwrap();
        for model in DetectionModel::ALL {
            let zeta: Vec<f64> = match model.dim() {
                1 => vec![0.5],
                _ => vec![0.5, 0.3],
            };
            let curve = mean_value_curve(&prior, model, &zeta, 120);
            for w in curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{model}");
            }
            assert!(*curve.last().unwrap() <= 250.0 + 1e-9, "{model}");
        }
    }

    #[test]
    fn intensity_sums_back_to_mean_value() {
        let prior = BugPrior::neg_binomial(4.0, 0.25).unwrap();
        let model = DetectionModel::Weibull;
        let zeta = [0.6, 0.5];
        let m = mean_value_curve(&prior, model, &zeta, 60);
        let intensity = intensity_curve(&prior, model, &zeta, 60);
        let sum: f64 = intensity.iter().sum();
        assert!((sum - m[59]).abs() < 1e-9);
    }

    #[test]
    fn residual_plus_curve_is_total_mean() {
        let prior = BugPrior::poisson(80.0).unwrap();
        let model = DetectionModel::Constant;
        let curve = mean_value_curve(&prior, model, &[0.07], 40);
        let residual = expected_residual(&prior, model, &[0.07], 40);
        assert!((curve[39] + residual - 80.0).abs() < 1e-9);
        // Closed form for the constant model: 80 · 0.93^40.
        assert!((residual - 80.0 * 0.93f64.powi(40)).abs() < 1e-9);
    }

    #[test]
    fn simulation_tracks_mean_value_curve() {
        // Average many simulated projects; the empirical cumulative
        // curve must match m(i) for the constant model.
        let n0 = 400u64;
        let p = 0.06;
        let horizon = 30;
        let sim = srm_data::DetectionSimulator::new(n0, vec![p; horizon]);
        let reps = sim.replicate(9_000, 40);
        let prior = BugPrior::poisson(n0 as f64).unwrap();
        let theory = mean_value_curve(&prior, DetectionModel::Constant, &[p], horizon);
        for day in [5usize, 15, 30] {
            let avg: f64 = reps
                .iter()
                .map(|r| r.data.detected_by(day) as f64)
                .sum::<f64>()
                / reps.len() as f64;
            assert!(
                (avg - theory[day - 1]).abs() < 0.06 * theory[day - 1],
                "day {day}: avg {avg} vs theory {}",
                theory[day - 1]
            );
        }
    }
}
