//! Analytic posteriors of the residual bug count (Propositions 1–2).
//!
//! With the probability schedule known, both priors are conjugate for
//! the residual count `R = N − s_k`:
//!
//! * **Proposition 1** (Poisson prior): `R | x ~ Poisson(λ_k)` with
//!   `λ_k = λ0 Π_{i≤k} q_i`.
//! * **Proposition 2** (negative-binomial prior, *corrected*; see
//!   DESIGN.md): `R | x ~ NB(α_k, β_k)` with `α_k = α0 + s_k` and
//!   `1 − β_k = (1 − β0) Π_{i≤k} q_i`. The paper prints
//!   `β_k = β0 Π q_i` (Eq. (13)), which does not reduce to the prior
//!   at `k = 0`; the corrected form does, and
//!   the `nb_posterior_matches_enumeration` test verifies it against
//!   brute-force Bayes.

use crate::likelihood::GroupedLikelihood;
use srm_data::BugCountData;
use srm_rand::{Distribution, NegativeBinomial, Poisson, Rng};

/// The posterior distribution of the residual number of bugs
/// `R = N − s_k` after the `k`-th testing day.
///
/// # Examples
///
/// ```
/// use srm_data::BugCountData;
/// use srm_model::posterior::poisson_posterior;
///
/// let data = BugCountData::new(vec![5, 3]).unwrap();
/// let probs = [0.5, 0.5];
/// let post = poisson_posterior(20.0, &probs, &data);
/// // λ_k = 20 · 0.5 · 0.5 = 5
/// assert!((post.mean() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResidualPosterior {
    /// `R ~ Poisson(λ_k)`; `λ_k = 0` degenerates to the point mass at
    /// zero.
    Poisson {
        /// The posterior rate `λ_k >= 0`.
        lambda_k: f64,
    },
    /// `R ~ NB(α_k, β_k)` with success probability `β_k`.
    NegBinomial {
        /// Posterior size `α_k = α0 + s_k`.
        alpha_k: f64,
        /// Posterior success probability `β_k ∈ (0, 1]`.
        beta_k: f64,
    },
}

impl ResidualPosterior {
    /// Posterior mean of the residual count.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Poisson { lambda_k } => lambda_k,
            Self::NegBinomial { alpha_k, beta_k } => alpha_k * (1.0 - beta_k) / beta_k,
        }
    }

    /// Posterior variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            Self::Poisson { lambda_k } => lambda_k,
            Self::NegBinomial { alpha_k, beta_k } => alpha_k * (1.0 - beta_k) / (beta_k * beta_k),
        }
    }

    /// Posterior standard deviation.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Log posterior mass `ln P(R = r | x)`.
    #[must_use]
    pub fn ln_pmf(&self, r: u64) -> f64 {
        match *self {
            Self::Poisson { lambda_k } => {
                if lambda_k <= 0.0 {
                    return if r == 0 { 0.0 } else { f64::NEG_INFINITY };
                }
                r as f64 * lambda_k.ln() - lambda_k - srm_math::ln_factorial(r)
            }
            Self::NegBinomial { alpha_k, beta_k } => {
                if beta_k >= 1.0 {
                    return if r == 0 { 0.0 } else { f64::NEG_INFINITY };
                }
                srm_math::special::ln_nb_coeff(alpha_k, r)
                    + alpha_k * beta_k.ln()
                    + r as f64 * (1.0 - beta_k).ln()
            }
        }
    }

    /// Cumulative probability `P(R <= r | x)` by direct summation.
    #[must_use]
    pub fn cdf(&self, r: u64) -> f64 {
        let mut acc = 0.0;
        for j in 0..=r {
            acc += self.ln_pmf(j).exp();
        }
        acc.min(1.0)
    }

    /// Smallest `r` with `P(R <= r) >= p` — the posterior quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        let mut acc = 0.0;
        let mut r = 0u64;
        // Hard cap far beyond any plausible posterior mass to keep the
        // loop finite under numerical underflow.
        let cap = (self.mean() + 20.0 * self.sd() + 1_000.0) as u64;
        loop {
            acc += self.ln_pmf(r).exp();
            if acc >= p || r >= cap {
                return r;
            }
            r += 1;
        }
    }

    /// Posterior median (the 0.5 quantile).
    #[must_use]
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Posterior mode (closed form for both families).
    #[must_use]
    pub fn mode(&self) -> u64 {
        match *self {
            Self::Poisson { lambda_k } => lambda_k.floor() as u64,
            Self::NegBinomial { alpha_k, beta_k } => {
                if alpha_k <= 1.0 || beta_k >= 1.0 {
                    0
                } else {
                    ((alpha_k - 1.0) * (1.0 - beta_k) / beta_k).floor() as u64
                }
            }
        }
    }

    /// Draws one residual count from the posterior.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            Self::Poisson { lambda_k } => {
                if lambda_k <= 0.0 {
                    0
                } else {
                    // lambda_k > 0 was checked just above.
                    Poisson::new(lambda_k)
                        .unwrap_or_else(|_| unreachable!())
                        .sample(rng)
                }
            }
            // The update rules keep alpha_k > 0 and beta_k in (0, 1].
            Self::NegBinomial { alpha_k, beta_k } => NegativeBinomial::new(alpha_k, beta_k)
                .unwrap_or_else(|_| unreachable!())
                .sample(rng),
        }
    }
}

/// Proposition 1: the residual-count posterior under the Poisson
/// prior, `R ~ Poisson(λ0 Π q_i)`.
///
/// # Panics
///
/// Panics if `lambda0 <= 0` or the schedule is shorter than the data.
#[must_use]
pub fn poisson_posterior(lambda0: f64, probs: &[f64], data: &BugCountData) -> ResidualPosterior {
    assert!(lambda0 > 0.0, "lambda0 must be > 0, got {lambda0}");
    let lik = GroupedLikelihood::new(data);
    let lambda_k = lambda0 * lik.ln_survival(probs).exp();
    ResidualPosterior::Poisson { lambda_k }
}

/// Proposition 2 (corrected): the residual-count posterior under the
/// negative-binomial prior, `R ~ NB(α0 + s_k, β_k)` with
/// `1 − β_k = (1 − β0) Π q_i`.
///
/// # Panics
///
/// Panics if `alpha0 <= 0`, `beta0 ∉ (0, 1)` or the schedule is
/// shorter than the data.
#[must_use]
pub fn nb_posterior(
    alpha0: f64,
    beta0: f64,
    probs: &[f64],
    data: &BugCountData,
) -> ResidualPosterior {
    assert!(alpha0 > 0.0, "alpha0 must be > 0, got {alpha0}");
    assert!(
        beta0 > 0.0 && beta0 < 1.0,
        "beta0 must be in (0, 1), got {beta0}"
    );
    let lik = GroupedLikelihood::new(data);
    let survival = lik.ln_survival(probs).exp();
    let alpha_k = alpha0 + data.total() as f64;
    let beta_k = 1.0 - (1.0 - beta0) * survival;
    ResidualPosterior::NegBinomial { alpha_k, beta_k }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::prior::BugPrior;
    use srm_math::approx_eq;

    /// Brute-force posterior of R by enumerating N = s_k + r and
    /// applying Bayes with the full likelihood (Eq. (2)).
    fn enumerate_posterior(
        prior: &BugPrior,
        probs: &[f64],
        data: &BugCountData,
        max_r: u64,
    ) -> Vec<f64> {
        let lik = GroupedLikelihood::new(data);
        let s_k = data.total();
        let logs: Vec<f64> = (0..=max_r)
            .map(|r| prior.ln_pmf(s_k + r) + lik.ln_likelihood(s_k + r, probs))
            .collect();
        let z = srm_math::log_sum_exp(&logs);
        logs.iter().map(|l| (l - z).exp()).collect()
    }

    fn small_case() -> (BugCountData, Vec<f64>) {
        let data = BugCountData::new(vec![3, 1, 2]).unwrap();
        (data, vec![0.3, 0.2, 0.25])
    }

    #[test]
    fn poisson_posterior_matches_enumeration() {
        let (data, probs) = small_case();
        let lambda0 = 15.0;
        let analytic = poisson_posterior(lambda0, &probs, &data);
        let prior = BugPrior::poisson(lambda0).unwrap();
        let brute = enumerate_posterior(&prior, &probs, &data, 120);
        for (r, &b) in brute.iter().enumerate().take(60) {
            let a = analytic.ln_pmf(r as u64).exp();
            assert!(approx_eq(a, b, 1e-8), "r = {r}: analytic {a} vs brute {b}");
        }
    }

    #[test]
    fn nb_posterior_matches_enumeration() {
        // Verifies the *corrected* Proposition 2 against brute-force
        // Bayes — this is the reconciliation test promised in
        // DESIGN.md.
        let (data, probs) = small_case();
        let (alpha0, beta0) = (2.5, 0.15);
        let analytic = nb_posterior(alpha0, beta0, &probs, &data);
        let prior = BugPrior::neg_binomial(alpha0, beta0).unwrap();
        let brute = enumerate_posterior(&prior, &probs, &data, 400);
        for (r, &b) in brute.iter().enumerate().take(150) {
            let a = analytic.ln_pmf(r as u64).exp();
            assert!(approx_eq(a, b, 1e-7), "r = {r}: analytic {a} vs brute {b}");
        }
    }

    #[test]
    fn paper_printed_update_fails_enumeration() {
        // The literal Eq. (13) update (β_k = β0 Π q_i) disagrees with
        // brute-force Bayes — documenting that the correction is
        // necessary, not cosmetic.
        let (data, probs) = small_case();
        let (alpha0, beta0) = (2.5, 0.15);
        let lik = GroupedLikelihood::new(&data);
        let survival = lik.ln_survival(&probs).exp();
        let printed = ResidualPosterior::NegBinomial {
            alpha_k: alpha0 + data.total() as f64,
            beta_k: beta0 * survival,
        };
        let prior = BugPrior::neg_binomial(alpha0, beta0).unwrap();
        let brute = enumerate_posterior(&prior, &probs, &data, 400);
        let mut max_err = 0.0f64;
        for (r, &b) in brute.iter().enumerate().take(150) {
            max_err = max_err.max((printed.ln_pmf(r as u64).exp() - b).abs());
        }
        assert!(
            max_err > 1e-3,
            "printed update unexpectedly close: {max_err}"
        );
    }

    #[test]
    fn homogeneous_nb_reduces_to_chun() {
        // In the homogeneous case p_i = p, 1 − β_k = (1 − β0) q^k.
        let data = BugCountData::new(vec![2, 2, 1]).unwrap();
        let p = 0.2;
        let post = nb_posterior(3.0, 0.4, &[p; 3], &data);
        match post {
            ResidualPosterior::NegBinomial { alpha_k, beta_k } => {
                assert!(approx_eq(alpha_k, 8.0, 1e-12));
                assert!(approx_eq(1.0 - beta_k, 0.6 * 0.8f64.powi(3), 1e-12));
            }
            ResidualPosterior::Poisson { .. } => panic!("wrong family"),
        }
    }

    #[test]
    fn k_zero_reduces_to_prior() {
        // With no informative days (p → 0 so nothing can be seen and
        // the single count is 0), the posterior equals the prior.
        let data = BugCountData::new(vec![0]).unwrap();
        let probs = [1e-15];
        let post = nb_posterior(3.0, 0.4, &probs, &data);
        let prior = BugPrior::neg_binomial(3.0, 0.4).unwrap();
        for r in 0..50u64 {
            assert!(approx_eq(post.ln_pmf(r).exp(), prior.ln_pmf(r).exp(), 1e-9));
        }
    }

    #[test]
    fn summaries_are_consistent() {
        let post = ResidualPosterior::Poisson { lambda_k: 7.3 };
        assert_eq!(post.mode(), 7);
        assert!(post.cdf(post.median()) >= 0.5);
        if post.median() > 0 {
            assert!(post.cdf(post.median() - 1) < 0.5);
        }
        assert!(approx_eq(post.sd(), 7.3f64.sqrt(), 1e-12));
    }

    #[test]
    fn nb_mode_closed_form_agrees_with_argmax() {
        for &(a, b) in &[(5.0, 0.3), (1.5, 0.6), (0.8, 0.5), (20.0, 0.1)] {
            let post = ResidualPosterior::NegBinomial {
                alpha_k: a,
                beta_k: b,
            };
            let argmax = (0..5_000u64)
                .max_by(|&x, &y| post.ln_pmf(x).partial_cmp(&post.ln_pmf(y)).unwrap())
                .unwrap();
            assert_eq!(post.mode(), argmax, "a = {a}, b = {b}");
        }
    }

    #[test]
    fn degenerate_posteriors_are_point_masses() {
        let p = ResidualPosterior::Poisson { lambda_k: 0.0 };
        assert_eq!(p.ln_pmf(0), 0.0);
        assert_eq!(p.mean(), 0.0);
        let nb = ResidualPosterior::NegBinomial {
            alpha_k: 3.0,
            beta_k: 1.0,
        };
        assert_eq!(nb.ln_pmf(0), 0.0);
        assert_eq!(nb.ln_pmf(2), f64::NEG_INFINITY);
        let mut rng = srm_rand::SplitMix64::seed_from(61);
        assert_eq!(nb.sample(&mut rng), 0);
    }

    #[test]
    fn sampling_matches_analytic_mean() {
        use srm_rand::SplitMix64;
        let (data, probs) = small_case();
        let post = nb_posterior(2.0, 0.2, &probs, &data);
        let mut rng = SplitMix64::seed_from(62);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| post.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (m - post.mean()).abs() < 0.02 * post.mean().max(1.0),
            "{m} vs {}",
            post.mean()
        );
    }

    #[test]
    fn virtual_testing_collapses_posterior() {
        // Appending zero-count days shrinks the posterior mean toward
        // 0 under both priors (the paper's Figs. 2–3 behaviour).
        let base = srm_data::datasets::musa_cc96();
        let model = crate::detection::DetectionModel::PadgettSpurrier;
        let zeta = [0.9, 0.08];
        let mean_at = |extra: usize| {
            let data = base.extended_with_zeros(extra);
            let probs = model.probs(&zeta, data.len()).unwrap();
            poisson_posterior(200.0, &probs, &data).mean()
        };
        let m0 = mean_at(0);
        let m20 = mean_at(20);
        let m50 = mean_at(50);
        assert!(m0 > m20 && m20 > m50, "{m0} > {m20} > {m50} violated");
    }
}
