//! Posterior-predictive distribution of future counts.
//!
//! Given the residual-count posterior after day `k` and a detection
//! probability `p_{k+1}` for the next day, the predictive count is a
//! thinned residual:
//!
//! * Poisson posterior `R ~ Poisson(λ_k)` → `X_{k+1} ~ Poisson(λ_k p)`;
//! * NB posterior `R ~ NB(α_k, β_k)` → `X_{k+1} ~ NB(α_k, β')` with
//!   `1 − β' = p(1 − β_k) / (1 − (1−p)(1−β_k))` (binomial thinning of
//!   a negative binomial stays negative binomial).

use crate::posterior::ResidualPosterior;

/// The predictive distribution of the next day's bug count.
///
/// # Examples
///
/// ```
/// use srm_model::posterior::ResidualPosterior;
/// use srm_model::predictive::next_day_predictive;
///
/// let post = ResidualPosterior::Poisson { lambda_k: 10.0 };
/// let pred = next_day_predictive(&post, 0.3);
/// assert!((pred.mean() - 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn next_day_predictive(posterior: &ResidualPosterior, p_next: f64) -> ResidualPosterior {
    assert!(
        (0.0..=1.0).contains(&p_next),
        "p_next must be in [0, 1], got {p_next}"
    );
    match *posterior {
        ResidualPosterior::Poisson { lambda_k } => ResidualPosterior::Poisson {
            lambda_k: lambda_k * p_next,
        },
        ResidualPosterior::NegBinomial { alpha_k, beta_k } => {
            // Thinning: X | R ~ Binom(R, p). The p.g.f. algebra gives
            // another NB with the same size.
            let w = 1.0 - beta_k; // "failure" weight of the residual
            let denom = 1.0 - (1.0 - p_next) * w;
            let new_fail = if denom <= 0.0 {
                0.0
            } else {
                p_next * w / denom
            };
            ResidualPosterior::NegBinomial {
                alpha_k,
                beta_k: 1.0 - new_fail,
            }
        }
    }
}

/// Expected cumulative number of *future* detections over the next
/// `horizon` days given the residual posterior and a probability
/// schedule for those days (sequential thinning).
///
/// # Panics
///
/// Panics if `future_probs` is shorter than `horizon`.
#[must_use]
pub fn expected_future_detections(
    posterior: &ResidualPosterior,
    future_probs: &[f64],
    horizon: usize,
) -> f64 {
    assert!(
        future_probs.len() >= horizon,
        "schedule shorter than horizon"
    );
    let mut survival = 1.0;
    let mut expected = 0.0;
    let residual_mean = posterior.mean();
    for &p in &future_probs[..horizon] {
        expected += residual_mean * survival * p;
        survival *= 1.0 - p;
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_math::approx_eq;
    use srm_rand::SplitMix64;

    #[test]
    fn poisson_predictive_thins_rate() {
        let post = ResidualPosterior::Poisson { lambda_k: 8.0 };
        let pred = next_day_predictive(&post, 0.25);
        assert!(approx_eq(pred.mean(), 2.0, 1e-12));
    }

    #[test]
    fn nb_predictive_matches_monte_carlo() {
        // Thin NB draws through a Binomial and compare the histogram
        // to the analytic predictive p.m.f.
        use srm_rand::{Binomial, Distribution};
        let post = ResidualPosterior::NegBinomial {
            alpha_k: 4.0,
            beta_k: 0.5,
        };
        let p = 0.4;
        let pred = next_day_predictive(&post, p);
        let mut rng = SplitMix64::seed_from(63);
        let n = 200_000;
        let mut hist = vec![0usize; 50];
        for _ in 0..n {
            let r = post.sample(&mut rng);
            let x = if r == 0 {
                0
            } else {
                Binomial::new(r, p).unwrap().sample(&mut rng)
            };
            if (x as usize) < hist.len() {
                hist[x as usize] += 1;
            }
        }
        for x in 0..12u64 {
            let expected = pred.ln_pmf(x).exp();
            let observed = hist[x as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.006,
                "x = {x}: obs {observed} vs exp {expected}"
            );
        }
    }

    #[test]
    fn extreme_probabilities() {
        let post = ResidualPosterior::NegBinomial {
            alpha_k: 3.0,
            beta_k: 0.6,
        };
        let nothing = next_day_predictive(&post, 0.0);
        assert_eq!(nothing.mean(), 0.0);
        let everything = next_day_predictive(&post, 1.0);
        assert!(approx_eq(everything.mean(), post.mean(), 1e-12));
    }

    #[test]
    fn expected_future_detections_saturates_at_residual_mean() {
        let post = ResidualPosterior::Poisson { lambda_k: 12.0 };
        let probs = vec![0.2; 200];
        let short = expected_future_detections(&post, &probs, 3);
        let long = expected_future_detections(&post, &probs, 200);
        assert!(short < long);
        assert!(long <= 12.0 + 1e-9);
        assert!(approx_eq(long, 12.0, 1e-6)); // (1−0.2)^200 ≈ 0
    }

    #[test]
    #[should_panic(expected = "p_next must be in [0, 1]")]
    fn rejects_bad_probability() {
        let post = ResidualPosterior::Poisson { lambda_k: 1.0 };
        let _ = next_day_predictive(&post, 1.5);
    }
}
