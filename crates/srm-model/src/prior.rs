//! Priors on the initial software bug content `N`.

use srm_math::special::{ln_factorial, ln_nb_coeff};
use srm_rand::{Distribution, NegativeBinomial, Poisson, Rng};

/// Prior distribution of the initial number of bugs.
///
/// * `Poisson(λ0)` — the discrete counterpart of the NHPP-based SRM
///   (Rallis & Lansdowne).
/// * `NegBinomial(α0, β0)` — `P(N = n) = C(n+α0−1, n) β0^{α0} (1−β0)^n`,
///   the counterpart of the NHMPP-based SRM (Chun, generalised).
///
/// # Examples
///
/// ```
/// use srm_model::BugPrior;
///
/// let prior = BugPrior::poisson(100.0).unwrap();
/// assert_eq!(prior.mean(), 100.0);
/// let nb = BugPrior::neg_binomial(4.0, 0.2).unwrap();
/// assert!(nb.variance() > nb.mean()); // over-dispersed
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BugPrior {
    /// `N ~ Poisson(λ0)`.
    Poisson {
        /// The prior mean `λ0 > 0`.
        lambda0: f64,
    },
    /// `N ~ NB(α0, β0)` with success probability `β0`.
    NegBinomial {
        /// Size parameter `α0 > 0`.
        alpha0: f64,
        /// Success probability `β0 ∈ (0, 1)`.
        beta0: f64,
    },
}

/// Validation error for prior parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorError {
    /// Offending parameter name.
    pub name: &'static str,
    /// Rejected value.
    pub value: f64,
}

impl std::fmt::Display for PriorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid prior parameter `{}` = {}",
            self.name, self.value
        )
    }
}

impl std::error::Error for PriorError {}

impl BugPrior {
    /// Creates a Poisson prior.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda0 > 0` and finite.
    pub fn poisson(lambda0: f64) -> Result<Self, PriorError> {
        if !(lambda0.is_finite() && lambda0 > 0.0) {
            return Err(PriorError {
                name: "lambda0",
                value: lambda0,
            });
        }
        Ok(Self::Poisson { lambda0 })
    }

    /// Creates a negative-binomial prior.
    ///
    /// # Errors
    ///
    /// Returns an error unless `alpha0 > 0` and `beta0 ∈ (0, 1)`.
    pub fn neg_binomial(alpha0: f64, beta0: f64) -> Result<Self, PriorError> {
        if !(alpha0.is_finite() && alpha0 > 0.0) {
            return Err(PriorError {
                name: "alpha0",
                value: alpha0,
            });
        }
        if !(beta0.is_finite() && beta0 > 0.0 && beta0 < 1.0) {
            return Err(PriorError {
                name: "beta0",
                value: beta0,
            });
        }
        Ok(Self::NegBinomial { alpha0, beta0 })
    }

    /// Short label used in tables: `"poisson"` / `"negbinom"`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Poisson { .. } => "poisson",
            Self::NegBinomial { .. } => "negbinom",
        }
    }

    /// Prior mean of `N`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Poisson { lambda0 } => lambda0,
            Self::NegBinomial { alpha0, beta0 } => alpha0 * (1.0 - beta0) / beta0,
        }
    }

    /// Prior variance of `N`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            Self::Poisson { lambda0 } => lambda0,
            Self::NegBinomial { alpha0, beta0 } => alpha0 * (1.0 - beta0) / (beta0 * beta0),
        }
    }

    /// Log prior mass `ln P(N = n)`.
    #[must_use]
    pub fn ln_pmf(&self, n: u64) -> f64 {
        match *self {
            Self::Poisson { lambda0 } => n as f64 * lambda0.ln() - lambda0 - ln_factorial(n),
            Self::NegBinomial { alpha0, beta0 } => {
                ln_nb_coeff(alpha0, n) + alpha0 * beta0.ln() + n as f64 * (1.0 - beta0).ln()
            }
        }
    }

    /// Draws an initial bug content from the prior.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            // Both parameter sets were validated at construction.
            Self::Poisson { lambda0 } => Poisson::new(lambda0)
                .unwrap_or_else(|_| unreachable!())
                .sample(rng),
            Self::NegBinomial { alpha0, beta0 } => NegativeBinomial::new(alpha0, beta0)
                .unwrap_or_else(|_| unreachable!())
                .sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_math::approx_eq;

    #[test]
    fn constructors_validate() {
        assert!(BugPrior::poisson(0.0).is_err());
        assert!(BugPrior::poisson(f64::NAN).is_err());
        assert!(BugPrior::neg_binomial(0.0, 0.5).is_err());
        assert!(BugPrior::neg_binomial(1.0, 1.0).is_err());
        assert!(BugPrior::neg_binomial(1.0, 0.0).is_err());
    }

    #[test]
    fn poisson_pmf_normalises() {
        let prior = BugPrior::poisson(12.0).unwrap();
        let total: f64 = (0..200).map(|n| prior.ln_pmf(n).exp()).sum();
        assert!(approx_eq(total, 1.0, 1e-12));
    }

    #[test]
    fn nb_pmf_normalises_and_matches_moments() {
        let prior = BugPrior::neg_binomial(3.0, 0.3).unwrap();
        let mut total = 0.0;
        let mut mean = 0.0;
        let mut second = 0.0;
        for n in 0..2_000u64 {
            let p = prior.ln_pmf(n).exp();
            total += p;
            mean += n as f64 * p;
            second += (n as f64) * (n as f64) * p;
        }
        assert!(approx_eq(total, 1.0, 1e-9));
        assert!(approx_eq(mean, prior.mean(), 1e-6));
        assert!(approx_eq(second - mean * mean, prior.variance(), 1e-4));
    }

    #[test]
    fn sampling_matches_mean() {
        use srm_rand::SplitMix64;
        let mut rng = SplitMix64::seed_from(60);
        for prior in [
            BugPrior::poisson(40.0).unwrap(),
            BugPrior::neg_binomial(5.0, 0.25).unwrap(),
        ] {
            let n = 50_000;
            let m: f64 = (0..n).map(|_| prior.sample(&mut rng) as f64).sum::<f64>() / n as f64;
            assert!(
                (m - prior.mean()).abs() < 0.03 * prior.mean(),
                "{}: {m} vs {}",
                prior.label(),
                prior.mean()
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(BugPrior::poisson(1.0).unwrap().label(), "poisson");
        assert_eq!(
            BugPrior::neg_binomial(1.0, 0.5).unwrap().label(),
            "negbinom"
        );
    }
}
