//! Software reliability metrics derived from the residual-count
//! posterior.
//!
//! The operational question behind the whole model: *if we release
//! now, what is the probability that no bug surfaces in the next `h`
//! days?* Each remaining bug independently stays undetected through
//! days `k+1..k+h` with probability `z = Π q_i`, so the reliability is
//! the probability generating function of the residual count at `z`:
//!
//! * Poisson posterior: `E[z^R] = exp(λ_k (z − 1))`;
//! * NB posterior: `E[z^R] = ( β_k / (1 − (1−β_k) z) )^{α_k}`.

use crate::posterior::ResidualPosterior;

/// Evaluates the probability generating function `E[z^R]` of the
/// residual posterior at `z ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `z ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_model::posterior::ResidualPosterior;
/// use srm_model::reliability::pgf;
///
/// let post = ResidualPosterior::Poisson { lambda_k: 2.0 };
/// // z = 1: certainty. z = 0: P(R = 0) = e^{−2}.
/// assert!((pgf(&post, 1.0) - 1.0).abs() < 1e-12);
/// assert!((pgf(&post, 0.0) - (-2.0f64).exp()).abs() < 1e-12);
/// ```
#[must_use]
pub fn pgf(posterior: &ResidualPosterior, z: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&z),
        "pgf requires z in [0, 1], got {z}"
    );
    match *posterior {
        ResidualPosterior::Poisson { lambda_k } => (lambda_k * (z - 1.0)).exp(),
        ResidualPosterior::NegBinomial { alpha_k, beta_k } => {
            if beta_k >= 1.0 {
                return 1.0; // point mass at R = 0
            }
            let denom = 1.0 - (1.0 - beta_k) * z;
            (beta_k / denom).powf(alpha_k)
        }
    }
}

/// The software reliability over the next `horizon` days: the
/// posterior probability that *no* residual bug is detected during
/// days `k+1..k+horizon`, given the future detection-probability
/// schedule.
///
/// # Panics
///
/// Panics if `future_probs` is shorter than `horizon` or contains
/// values outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use srm_model::posterior::ResidualPosterior;
/// use srm_model::reliability::reliability;
///
/// let post = ResidualPosterior::Poisson { lambda_k: 1.5 };
/// let r10 = reliability(&post, &[0.1; 30], 10);
/// let r30 = reliability(&post, &[0.1; 30], 30);
/// assert!(r10 > r30);                       // longer exposure, more risk
/// assert!((0.0..=1.0).contains(&r30));
/// ```
#[must_use]
pub fn reliability(posterior: &ResidualPosterior, future_probs: &[f64], horizon: usize) -> f64 {
    assert!(
        future_probs.len() >= horizon,
        "schedule shorter than horizon"
    );
    let mut z = 1.0;
    for &p in &future_probs[..horizon] {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        z *= 1.0 - p;
    }
    pgf(posterior, z)
}

/// The reliability curve `R(1), …, R(horizon)` — one value per future
/// day, suitable for plotting release-readiness.
///
/// # Panics
///
/// Panics under the same conditions as [`reliability`].
#[must_use]
pub fn reliability_curve(
    posterior: &ResidualPosterior,
    future_probs: &[f64],
    horizon: usize,
) -> Vec<f64> {
    assert!(
        future_probs.len() >= horizon,
        "schedule shorter than horizon"
    );
    let mut z = 1.0;
    future_probs[..horizon]
        .iter()
        .map(|&p| {
            z *= 1.0 - p;
            pgf(posterior, z)
        })
        .collect()
}

/// Smallest horizon (in days) after which the reliability first drops
/// below `threshold`, or `None` if it never does within the schedule.
///
/// Useful inverted: "how many more quiet days until we trust the
/// release at level `threshold`" is answered by fitting at later
/// observation points and re-evaluating.
#[must_use]
pub fn days_until_reliability_below(
    posterior: &ResidualPosterior,
    future_probs: &[f64],
    threshold: f64,
) -> Option<usize> {
    let curve = reliability_curve(posterior, future_probs, future_probs.len());
    curve.iter().position(|&r| r < threshold).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_math::approx_eq;
    use srm_rand::{Rng, SplitMix64};

    #[test]
    fn pgf_endpoints() {
        let nb = ResidualPosterior::NegBinomial {
            alpha_k: 3.0,
            beta_k: 0.4,
        };
        assert!(approx_eq(pgf(&nb, 1.0), 1.0, 1e-12));
        // z = 0 gives P(R = 0) = β^α.
        assert!(approx_eq(pgf(&nb, 0.0), 0.4f64.powf(3.0), 1e-12));
    }

    #[test]
    fn pgf_matches_series_expansion() {
        for post in [
            ResidualPosterior::Poisson { lambda_k: 3.7 },
            ResidualPosterior::NegBinomial {
                alpha_k: 2.2,
                beta_k: 0.35,
            },
        ] {
            for &z in &[0.2f64, 0.5, 0.9] {
                let series: f64 = (0..400)
                    .map(|r| post.ln_pmf(r).exp() * z.powi(r as i32))
                    .sum();
                assert!(
                    approx_eq(pgf(&post, z), series, 1e-9),
                    "z = {z}: {} vs {series}",
                    pgf(&post, z)
                );
            }
        }
    }

    #[test]
    fn pgf_degenerate_nb_is_one() {
        let point = ResidualPosterior::NegBinomial {
            alpha_k: 5.0,
            beta_k: 1.0,
        };
        assert_eq!(pgf(&point, 0.3), 1.0);
    }

    #[test]
    fn reliability_matches_monte_carlo() {
        // Simulate: draw R, then thin through the schedule; compare
        // the zero-detection frequency with the closed form.
        let post = ResidualPosterior::Poisson { lambda_k: 4.0 };
        let schedule = [0.15, 0.1, 0.2, 0.05];
        let analytic = reliability(&post, &schedule, 4);
        let mut rng = SplitMix64::seed_from(71);
        let trials = 200_000;
        let mut silent = 0usize;
        for _ in 0..trials {
            let r = post.sample(&mut rng);
            let mut undetected = true;
            'bugs: for _ in 0..r {
                for &p in &schedule {
                    if rng.next_f64() < p {
                        undetected = false;
                        break 'bugs;
                    }
                }
            }
            if undetected {
                silent += 1;
            }
        }
        let empirical = silent as f64 / trials as f64;
        assert!(
            (empirical - analytic).abs() < 0.005,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn curve_is_nonincreasing() {
        let post = ResidualPosterior::NegBinomial {
            alpha_k: 6.0,
            beta_k: 0.5,
        };
        let curve = reliability_curve(&post, &[0.08; 50], 50);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(curve[0] < 1.0);
    }

    #[test]
    fn threshold_crossing() {
        let post = ResidualPosterior::Poisson { lambda_k: 10.0 };
        let probs = vec![0.2; 30];
        let day = days_until_reliability_below(&post, &probs, 0.5).unwrap();
        // R(h) = exp(10(0.8^h − 1)); drops below 0.5 on day 1 already.
        assert_eq!(day, 1);
        // A tiny residual never crosses a generous threshold.
        let safe = ResidualPosterior::Poisson { lambda_k: 1e-6 };
        assert_eq!(days_until_reliability_below(&safe, &probs, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "z in [0, 1]")]
    fn pgf_rejects_bad_z() {
        let _ = pgf(&ResidualPosterior::Poisson { lambda_k: 1.0 }, 1.5);
    }
}
