//! Typed payloads for `diagnostic-checkpoint` events and their
//! cross-chain aggregation.
//!
//! The engine emits one checkpoint per chain (deterministic for any
//! thread count — each carries only that chain's state), so anything
//! cross-chain (R̂, split-R̂, pooled MCSE) is computed at the consumer
//! from the per-chain moment summaries carried in the payload. The
//! aggregation here uses exactly the Gelman–Rubin formula of
//! `srm_mcmc::diagnostics::psrf` — W is the mean of within-chain
//! sample variances, B/n the variance of the chain means — so a final
//! checkpoint aggregate agrees with the post-hoc report up to
//! floating-point round-off.

use crate::event::AcceptStat;
use crate::json::Value;

/// Streaming moment summary of a block of draws (a chain, or one half
/// of a chain for split-R̂).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MomentSummary {
    /// Number of draws in the block.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (divides by `n − 1`; 0 below n = 2).
    pub variance: f64,
}

impl MomentSummary {
    /// JSON payload (`{n, mean, variance}`).
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("n", Value::Num(self.count as f64)),
            ("mean", Value::Num(self.mean)),
            ("variance", Value::Num(self.variance)),
        ])
    }

    /// Parses the payload written by [`MomentSummary::to_value`].
    #[must_use]
    pub fn from_value(value: &Value) -> Option<Self> {
        Some(Self {
            count: value.get("n")?.as_f64()? as u64,
            mean: value.get("mean")?.as_f64()?,
            variance: value.get("variance")?.as_f64()?,
        })
    }
}

/// One parameter's streaming summary at a checkpoint: whole-chain
/// moments, first/second-half moments (for split-R̂), and the chain's
/// own ESS/MCSE from the in-sweep autocovariance accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamCheckpoint {
    /// Parameter name (chain column).
    pub parameter: String,
    /// Whole-chain moments over the kept draws so far.
    pub moments: MomentSummary,
    /// Moments of the first half of the *planned* draws.
    pub half1: MomentSummary,
    /// Moments of the last half of the planned draws (fills only once
    /// the chain passes its midpoint; see `srm_mcmc::streaming`).
    pub half2: MomentSummary,
    /// Per-chain effective sample size (Geyer initial positive
    /// sequence over the fixed-lag autocovariance window).
    pub ess: f64,
    /// Per-chain Monte-Carlo standard error `sqrt(variance / ess)`.
    pub mcse: f64,
    /// Effective samples per wall-clock second of this chain
    /// (`ess / (wall_ms / 1000)`; 0 before the clock has advanced).
    pub ess_per_sec: f64,
}

impl ParamCheckpoint {
    /// JSON payload of one parameter entry.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("parameter", Value::Str(self.parameter.clone())),
            ("n", Value::Num(self.moments.count as f64)),
            ("mean", Value::Num(self.moments.mean)),
            ("variance", Value::Num(self.moments.variance)),
            ("half1", self.half1.to_value()),
            ("half2", self.half2.to_value()),
            ("ess", Value::Num(self.ess)),
            ("mcse", Value::Num(self.mcse)),
            ("ess_per_sec", Value::Num(self.ess_per_sec)),
        ])
    }

    /// Parses the payload written by [`ParamCheckpoint::to_value`].
    #[must_use]
    pub fn from_value(value: &Value) -> Option<Self> {
        Some(Self {
            parameter: value.get("parameter")?.as_str()?.to_owned(),
            moments: MomentSummary {
                count: value.get("n")?.as_f64()? as u64,
                mean: value.get("mean")?.as_f64()?,
                variance: value.get("variance")?.as_f64()?,
            },
            half1: MomentSummary::from_value(value.get("half1")?)?,
            half2: MomentSummary::from_value(value.get("half2")?)?,
            // Non-finite ESS/MCSE serialise as JSON null; recover NaN.
            ess: value.get("ess")?.as_f64().unwrap_or(f64::NAN),
            mcse: value.get("mcse")?.as_f64().unwrap_or(f64::NAN),
            // Absent on schema ≤ 3 traces; default to 0.
            ess_per_sec: value
                .get("ess_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// One chain's full `diagnostic-checkpoint` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainCheckpoint {
    /// Chain index.
    pub chain: usize,
    /// Index of the most recently completed sweep (0-based,
    /// monotonically increasing within a chain).
    pub sweep: usize,
    /// Post-thinning draws kept so far.
    pub kept: usize,
    /// Wall-clock milliseconds since this chain started sampling,
    /// measured at checkpoint emission. Nondeterministic (a clock
    /// reading), unlike every other field.
    pub wall_ms: f64,
    /// Per-parameter streaming summaries, in chain column order.
    pub params: Vec<ParamCheckpoint>,
    /// Per-parameter Metropolis acceptance so far.
    pub accept: Vec<AcceptStat>,
}

impl ChainCheckpoint {
    /// Parses a full `diagnostic-checkpoint` JSON record (as found on
    /// a JSONL trace line) back into the typed payload.
    #[must_use]
    pub fn from_value(value: &Value) -> Option<Self> {
        let params = value
            .get("params")?
            .as_arr()?
            .iter()
            .map(ParamCheckpoint::from_value)
            .collect::<Option<Vec<_>>>()?;
        let accept = value
            .get("accept")?
            .as_arr()?
            .iter()
            .map(|a| {
                Some(AcceptStat {
                    parameter: a.get("parameter")?.as_str()?.to_owned(),
                    steps: a.get("steps")?.as_f64()? as u64,
                    accepted: a.get("accepted")?.as_f64()? as u64,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            chain: value.get("chain")?.as_f64()? as usize,
            sweep: value.get("sweep")?.as_f64()? as usize,
            kept: value.get("kept")?.as_f64()? as usize,
            // Absent on schema ≤ 3 traces; default to 0.
            wall_ms: value.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
            params,
            accept,
        })
    }
}

/// A cross-chain convergence summary for one parameter, computed from
/// the latest checkpoint of each chain.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateDiagnostic {
    /// Parameter name.
    pub parameter: String,
    /// Pooled mean across chains.
    pub mean: f64,
    /// Whole-chain Gelman–Rubin R̂ (NaN below two chains).
    pub rhat: f64,
    /// Split-R̂ over the `2m` chain halves (NaN until at least two
    /// halves hold two draws each).
    pub split_rhat: f64,
    /// Total effective sample size (sum of per-chain ESS).
    pub ess: f64,
    /// Aggregate MCSE: `sqrt(pooled variance / total ESS)`.
    pub mcse: f64,
    /// Total ESS per total chain wall-clock second (ESS per
    /// CPU-second of sampling: chains running in parallel sum their
    /// clocks). 0 before any chain's clock has advanced.
    pub ess_per_sec: f64,
}

impl AggregateDiagnostic {
    /// JSON payload of one aggregate entry.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("parameter", Value::Str(self.parameter.clone())),
            ("mean", Value::Num(self.mean)),
            ("rhat", Value::Num(self.rhat)),
            ("split_rhat", Value::Num(self.split_rhat)),
            ("ess", Value::Num(self.ess)),
            ("mcse", Value::Num(self.mcse)),
            ("ess_per_sec", Value::Num(self.ess_per_sec)),
        ])
    }
}

/// Gelman–Rubin R̂ from per-block moment summaries — the same formula
/// as `srm_mcmc::diagnostics::psrf`, evaluated on streamed moments
/// instead of raw draws. `n` (the per-chain draw count entering the
/// `(n−1)/n` shrink factor) is taken as the smallest block count, so
/// equal-length blocks (every completed run) reproduce the post-hoc
/// value exactly. Returns NaN below two blocks or below two draws in
/// the shortest block.
#[must_use]
pub fn psrf_from_moments(blocks: &[MomentSummary]) -> f64 {
    let m = blocks.len();
    if m < 2 {
        return f64::NAN;
    }
    let n = blocks.iter().map(|b| b.count).min().unwrap_or(0);
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mf = m as f64;
    let w: f64 = blocks.iter().map(|b| b.variance).sum::<f64>() / mf;
    let grand: f64 = blocks.iter().map(|b| b.mean).sum::<f64>() / mf;
    let b_over_n: f64 = blocks.iter().map(|b| (b.mean - grand).powi(2)).sum::<f64>() / (mf - 1.0);
    if w <= 0.0 {
        return if b_over_n <= 0.0 { 1.0 } else { f64::INFINITY };
    }
    let v_hat = (nf - 1.0) / nf * w + b_over_n;
    (v_hat / w).sqrt()
}

/// Merges moment summaries (Chan's parallel-Welford update) — used to
/// pool per-chain moments for the aggregate mean and MCSE.
fn merge_moments(blocks: &[MomentSummary]) -> MomentSummary {
    let mut acc = MomentSummary::default();
    let mut m2 = 0.0f64;
    for b in blocks {
        if b.count == 0 {
            continue;
        }
        let b_m2 = b.variance * (b.count.saturating_sub(1)) as f64;
        if acc.count == 0 {
            acc = *b;
            m2 = b_m2;
            continue;
        }
        let total = acc.count + b.count;
        let delta = b.mean - acc.mean;
        acc.mean += delta * b.count as f64 / total as f64;
        m2 += b_m2 + delta * delta * (acc.count as f64) * (b.count as f64) / total as f64;
        acc.count = total;
    }
    acc.variance = if acc.count < 2 {
        0.0
    } else {
        m2 / (acc.count - 1) as f64
    };
    acc
}

/// Computes per-parameter cross-chain convergence summaries from the
/// latest checkpoint of each chain. Parameters are matched by name
/// (the engine emits identical column orders on every chain); chains
/// missing a parameter are skipped for that entry.
#[must_use]
pub fn aggregate(checkpoints: &[&ChainCheckpoint]) -> Vec<AggregateDiagnostic> {
    let Some(first) = checkpoints.first() else {
        return Vec::new();
    };
    first
        .params
        .iter()
        .map(|lead| {
            let per_chain: Vec<(&ChainCheckpoint, &ParamCheckpoint)> = checkpoints
                .iter()
                .filter_map(|c| {
                    c.params
                        .iter()
                        .find(|p| p.parameter == lead.parameter)
                        .map(|p| (*c, p))
                })
                .collect();
            let moments: Vec<MomentSummary> = per_chain.iter().map(|(_, p)| p.moments).collect();
            let halves: Vec<MomentSummary> = per_chain
                .iter()
                .flat_map(|(_, p)| [p.half1, p.half2])
                .filter(|h| h.count >= 2)
                .collect();
            let pooled = merge_moments(&moments);
            let ess: f64 = per_chain.iter().map(|(_, p)| p.ess).sum();
            let mcse = if ess > 0.0 {
                (pooled.variance / ess).sqrt()
            } else {
                f64::INFINITY
            };
            let wall_secs: f64 = per_chain.iter().map(|(c, _)| c.wall_ms).sum::<f64>() / 1e3;
            let ess_per_sec = if wall_secs > 0.0 && ess.is_finite() {
                ess / wall_secs
            } else {
                0.0
            };
            AggregateDiagnostic {
                parameter: lead.parameter.clone(),
                mean: pooled.mean,
                rhat: psrf_from_moments(&moments),
                split_rhat: psrf_from_moments(&halves),
                ess,
                mcse,
                ess_per_sec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments_of(draws: &[f64]) -> MomentSummary {
        let n = draws.len() as f64;
        let mean = draws.iter().sum::<f64>() / n;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        MomentSummary {
            count: draws.len() as u64,
            mean,
            variance: var,
        }
    }

    fn checkpoint(chain: usize, draws: &[f64], ess: f64) -> ChainCheckpoint {
        let half = draws.len() / 2;
        ChainCheckpoint {
            chain,
            sweep: draws.len() - 1,
            kept: draws.len(),
            wall_ms: 500.0,
            params: vec![ParamCheckpoint {
                parameter: "residual".into(),
                moments: moments_of(draws),
                half1: moments_of(&draws[..half]),
                half2: moments_of(&draws[draws.len() - half..]),
                ess,
                mcse: (moments_of(draws).variance / ess).sqrt(),
                ess_per_sec: ess / 0.5,
            }],
            accept: vec![AcceptStat {
                parameter: "zeta0".into(),
                steps: 10,
                accepted: 4,
            }],
        }
    }

    #[test]
    fn psrf_from_moments_matches_direct_formula() {
        let a: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i * 53) % 97) as f64).collect();
        let blocks = [moments_of(&a), moments_of(&b)];
        let nf = 200.0;
        let w = (blocks[0].variance + blocks[1].variance) / 2.0;
        let grand = (blocks[0].mean + blocks[1].mean) / 2.0;
        let b_over_n = (blocks[0].mean - grand).powi(2) + (blocks[1].mean - grand).powi(2);
        let expected = (((nf - 1.0) / nf * w + b_over_n) / w).sqrt();
        assert!((psrf_from_moments(&blocks) - expected).abs() < 1e-12);
    }

    #[test]
    fn psrf_degenerate_cases() {
        let constant = MomentSummary {
            count: 10,
            mean: 3.0,
            variance: 0.0,
        };
        assert!(psrf_from_moments(&[constant]).is_nan());
        assert_eq!(psrf_from_moments(&[constant, constant]), 1.0);
        let shifted = MomentSummary {
            mean: 4.0,
            ..constant
        };
        assert_eq!(
            psrf_from_moments(&[constant, shifted]),
            f64::INFINITY,
            "constant chains with different means diverge"
        );
        let short = MomentSummary {
            count: 1,
            mean: 0.0,
            variance: 0.0,
        };
        assert!(psrf_from_moments(&[short, short]).is_nan());
    }

    #[test]
    fn aggregate_pools_means_and_sums_ess() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| (i as f64) + 10.0).collect();
        let ca = checkpoint(0, &a, 50.0);
        let cb = checkpoint(1, &b, 70.0);
        let agg = aggregate(&[&ca, &cb]);
        assert_eq!(agg.len(), 1);
        let d = &agg[0];
        assert_eq!(d.parameter, "residual");
        assert!((d.ess - 120.0).abs() < 1e-12);
        let pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let expect = moments_of(&pooled);
        assert!((d.mean - expect.mean).abs() < 1e-9);
        assert!((d.mcse - (expect.variance / 120.0).sqrt()).abs() < 1e-9);
        assert!(d.rhat.is_finite() && d.rhat >= 1.0);
        assert!(d.split_rhat.is_finite());
        // Two chains at 500 ms each: 120 ESS over one CPU-second.
        assert!((d.ess_per_sec - 120.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_without_wall_time_reports_zero_rate() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let mut c = checkpoint(0, &a, 25.0);
        c.wall_ms = 0.0;
        let agg = aggregate(&[&c]);
        assert_eq!(agg[0].ess_per_sec, 0.0);
    }

    #[test]
    fn aggregate_of_nothing_is_empty_and_single_chain_has_nan_rhat() {
        assert!(aggregate(&[]).is_empty());
        let a: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let c = checkpoint(0, &a, 25.0);
        let agg = aggregate(&[&c]);
        assert!(agg[0].rhat.is_nan());
        // One chain still yields two halves, so split-R̂ is defined.
        assert!(agg[0].split_rhat.is_finite());
    }

    #[test]
    fn param_checkpoint_round_trips_through_json() {
        let p = ParamCheckpoint {
            parameter: "lambda0".into(),
            moments: MomentSummary {
                count: 42,
                mean: 1.5,
                variance: 0.25,
            },
            half1: MomentSummary {
                count: 21,
                mean: 1.4,
                variance: 0.2,
            },
            half2: MomentSummary {
                count: 21,
                mean: 1.6,
                variance: 0.3,
            },
            ess: 30.5,
            mcse: 0.09,
            ess_per_sec: 61.0,
        };
        let back = ParamCheckpoint::from_value(&p.to_value()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn schema_v3_payloads_without_new_fields_still_parse() {
        // A pre-v4 param entry: no ess_per_sec.
        let p = ParamCheckpoint {
            parameter: "n".into(),
            moments: MomentSummary {
                count: 10,
                mean: 2.0,
                variance: 1.0,
            },
            half1: MomentSummary::default(),
            half2: MomentSummary::default(),
            ess: 8.0,
            mcse: 0.35,
            ess_per_sec: 123.0,
        };
        let mut value = p.to_value();
        if let Value::Obj(fields) = &mut value {
            fields.retain(|(k, _)| k != "ess_per_sec");
        }
        let back = ParamCheckpoint::from_value(&value).unwrap();
        assert_eq!(back.ess_per_sec, 0.0);
        assert_eq!(back.ess, 8.0);
    }

    #[test]
    fn chain_checkpoint_parses_full_event_payload() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let c = checkpoint(3, &a, 12.0);
        // Build the event-shaped JSON by hand (mirrors Event::to_value).
        let value = Value::obj(vec![
            ("type", Value::Str("diagnostic-checkpoint".into())),
            ("chain", Value::Num(c.chain as f64)),
            ("sweep", Value::Num(c.sweep as f64)),
            ("kept", Value::Num(c.kept as f64)),
            ("wall_ms", Value::Num(c.wall_ms)),
            (
                "params",
                Value::Arr(c.params.iter().map(ParamCheckpoint::to_value).collect()),
            ),
            (
                "accept",
                Value::Arr(
                    c.accept
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("parameter", Value::Str(s.parameter.clone())),
                                ("steps", Value::Num(s.steps as f64)),
                                ("accepted", Value::Num(s.accepted as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let back = ChainCheckpoint::from_value(&value).unwrap();
        assert_eq!(back, c);
    }
}
