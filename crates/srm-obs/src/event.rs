//! The typed event taxonomy emitted by the instrumented engine.
//!
//! Every observable moment in a run maps to one [`Event`] variant.
//! Sinks receive events by reference and decide independently what to
//! do with them (format a progress line, append a JSONL record, bump a
//! counter). Serialisation lives here — `kind()` gives the stable
//! kebab-case discriminator written to the `"type"` field, and
//! `to_value()` the full JSON payload — so every sink shares a single
//! formatting path.

use crate::checkpoint::ChainCheckpoint;
use crate::json::Value;
use crate::profile::PhaseSnapshot;

/// Version of the event taxonomy below. Bumped whenever a kind is
/// added, removed, or changes its required fields, so trace consumers
/// can detect schema drift. Version 1 was the PR 2 taxonomy; version 2
/// adds the `srm-serve` job lifecycle and cache events; version 3 adds
/// the streaming `diagnostic-checkpoint` kind; version 4 adds the
/// `profile` phase-time kind and the `wall_ms`/`ess_per_sec` fields
/// on `diagnostic-checkpoint`; version 5 adds the simulation-based
/// calibration kinds `sbc-cell-start` / `sbc-rep-done` /
/// `sbc-cell-done`; version 6 adds the multi-dataset batch kinds
/// `batch-start` / `batch-item-done` / `batch-done`; version 7 makes
/// `trace_id` a required field on every trace line (injected by the
/// sinks, not carried by the variants) and adds the request-
/// correlation kinds `access` / `flightrec-dump`.
pub const SCHEMA_VERSION: u64 = 7;

/// The event-taxonomy version. Since v7 this is an alias of the
/// workspace-wide [`SCHEMA_VERSION`] — the previously scattered
/// per-document constants all resolve here.
pub const EVENT_SCHEMA_VERSION: u64 = SCHEMA_VERSION;

/// Per-parameter accept statistics carried by [`Event::ChainDone`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptStat {
    /// Parameter name (e.g. `"zeta0"`).
    pub parameter: String,
    /// Kernel steps taken for this parameter.
    pub steps: u64,
    /// Steps on which the parameter actually moved.
    pub accepted: u64,
}

impl AcceptStat {
    /// Fraction of steps accepted (0 when no steps were taken).
    pub fn rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }
}

/// A structured, typed trace event.
///
/// Numeric context (chain index, sweep index) is carried inline so an
/// event is meaningful on its own line of a JSONL trace even when
/// chains interleave.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A top-level invocation began (one per CLI run).
    RunStart {
        /// CLI command (`fit`, `select`, `trend`, …).
        command: String,
        /// Detection-model identifier, if the run has one.
        model: String,
        /// Prior family (`poisson` / `negbinom`), if applicable.
        prior: String,
        /// Root RNG seed.
        seed: u64,
        /// FNV-1a hash of the dataset's daily counts, hex-encoded.
        dataset_hash: String,
    },
    /// A named phase (sampling, waic, summary, diagnostics, …) began.
    PhaseStart {
        /// Phase name.
        phase: &'static str,
    },
    /// A named phase finished.
    PhaseEnd {
        /// Phase name.
        phase: &'static str,
        /// Wall-clock duration in milliseconds.
        wall_ms: f64,
    },
    /// A chain's sweep loop began.
    ChainStart {
        /// Chain index.
        chain: usize,
        /// Total sweeps this chain will attempt (burn-in + kept·thin).
        sweeps: usize,
    },
    /// A sweep is about to run (emitted at the sink's stride).
    SweepStart {
        /// Chain index.
        chain: usize,
        /// Sweep index within the chain.
        sweep: usize,
        /// Total sweeps planned for the chain.
        total: usize,
    },
    /// A sweep completed (emitted at the sink's stride).
    SweepEnd {
        /// Chain index.
        chain: usize,
        /// Sweep index within the chain.
        sweep: usize,
        /// Total sweeps planned for the chain.
        total: usize,
        /// Post-thinning draws kept so far.
        kept: usize,
    },
    /// One Metropolis accept/reject decision (stride-sampled).
    Metropolis {
        /// Chain index.
        chain: usize,
        /// Sweep index.
        sweep: usize,
        /// Parameter the random-walk kernel updated.
        parameter: &'static str,
        /// Whether the proposal was accepted.
        accepted: bool,
    },
    /// A sweep failed with a recoverable fault (slice-expansion
    /// exhaustion, non-finite rate, injected fault, …).
    SweepFault {
        /// Chain index.
        chain: usize,
        /// Sweep index that faulted.
        sweep: usize,
        /// `SrmError::kind()` kebab-case label.
        kind: String,
        /// Human-readable error rendering.
        detail: String,
    },
    /// A faulted sweep is being retried from the pre-sweep state.
    Retry {
        /// Chain index.
        chain: usize,
        /// Sweep index being retried.
        sweep: usize,
        /// Retries consumed so far on this chain (including this one).
        retries: u64,
    },
    /// The deterministic fault-injection harness fired.
    FaultInjected {
        /// Chain index.
        chain: usize,
        /// Sweep index the fault was planted on.
        sweep: usize,
        /// Injected fault kind label.
        kind: String,
    },
    /// A chain panicked and was contained by the runner.
    ChainPanicked {
        /// Chain index.
        chain: usize,
        /// Panic payload rendering.
        detail: String,
    },
    /// A chain's sweep loop finished (successfully).
    ChainDone {
        /// Chain index.
        chain: usize,
        /// Retries the chain consumed.
        retries: u64,
        /// Per-parameter acceptance statistics.
        accept: Vec<AcceptStat>,
    },
    /// One entry of a fault-tolerant run's final report. Emitted once
    /// per surviving chain after the run is assembled, so counting
    /// these (plus `CellFailure`) reproduces the engine's own fault
    /// counters exactly.
    ChainReport {
        /// Chain index.
        chain: usize,
        /// Whether the chain recovered after a fault.
        recovered: bool,
        /// Retries consumed.
        retries: u64,
        /// First-fault kind label, if any fault occurred.
        fault: Option<String>,
        /// Wall-clock time the chain spent on its worker thread, in
        /// milliseconds.
        wall_ms: f64,
    },
    /// An experiment cell began.
    CellStart {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Observation-point day.
        day: usize,
    },
    /// An experiment cell finished.
    CellEnd {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Observation-point day.
        day: usize,
        /// Wall-clock duration in milliseconds.
        wall_ms: f64,
    },
    /// An experiment cell was abandoned with an error.
    CellFailure {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Observation-point day.
        day: usize,
        /// `SrmError::kind()` label of the terminal error.
        kind: String,
    },
    /// A WAIC evaluation completed.
    Waic {
        /// Model the criterion was computed for.
        model: String,
        /// WAIC total (deviance scale).
        total: f64,
        /// Effective number of parameters.
        p_waic: f64,
        /// Posterior draws the estimate used.
        draws: usize,
    },
    /// Final convergence diagnostics for one parameter.
    Diagnostic {
        /// Parameter name.
        parameter: String,
        /// Potential scale reduction factor.
        psrf: f64,
        /// Geweke z-score.
        geweke_z: f64,
        /// Effective sample size.
        ess: f64,
    },
    /// A one-line CLI diagnostic (the same string printed to stderr).
    CliDiagnostic {
        /// Severity label (`error`, `warning`).
        level: &'static str,
        /// The diagnostic message.
        message: String,
    },
    /// A service job left the queue and began executing (or was
    /// answered directly from the fit cache).
    JobStart {
        /// Server-assigned job id.
        job_id: String,
        /// Job kind (`fit`, `select`, `predict`).
        kind: String,
        /// Content-addressed cache key of the job.
        cache_key: String,
    },
    /// A service job reached a terminal state.
    JobDone {
        /// Server-assigned job id.
        job_id: String,
        /// Terminal status (`done`, `failed`, `cancelled`).
        status: String,
        /// Whether the result was served from the fit cache.
        cached: bool,
        /// Wall-clock time from submission to the terminal state, ms.
        wall_ms: f64,
    },
    /// A job's cache key was found in the fit cache — the stored
    /// result is returned verbatim and no sampling happens.
    CacheHit {
        /// Content-addressed cache key that matched.
        cache_key: String,
    },
    /// A job's cache key was absent from the fit cache — the job runs
    /// the full pipeline and its result is stored under this key.
    CacheMiss {
        /// Content-addressed cache key that missed.
        cache_key: String,
    },
    /// A periodic streaming-diagnostics snapshot for one chain:
    /// per-parameter running moments, split halves, ESS/MCSE, and
    /// acceptance so far. Emitted every `checkpoint_every` sweeps
    /// (and once at chain end) when checkpoints are enabled.
    DiagnosticCheckpoint {
        /// The full per-chain checkpoint payload.
        checkpoint: ChainCheckpoint,
    },
    /// The run's phase-time profile — one aggregate snapshot of the
    /// span profiler, emitted once at the end of a `--profile` run.
    Profile {
        /// Per-phase aggregates, sorted by `/`-joined span path.
        phases: Vec<PhaseSnapshot>,
    },
    /// A simulation-based-calibration cell was scheduled.
    SbcCellStart {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Replications this cell will run.
        reps: usize,
    },
    /// One SBC replication finished (successfully or not).
    SbcRepDone {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Replication index within the cell.
        rep: usize,
        /// Rank of the true `N` in the thinned posterior, or the
        /// `num_ranks` sentinel when the inner fit failed.
        rank: usize,
        /// Number of distinct rank values (`M + 1`).
        num_ranks: usize,
    },
    /// A simulation-based-calibration cell was aggregated and gated.
    SbcCellDone {
        /// Prior family label.
        prior: String,
        /// Detection-model name.
        model: String,
        /// Replications attempted.
        reps: usize,
        /// Replications whose inner fit failed or degraded.
        failures: usize,
        /// Chi-square uniformity statistic of the `N` rank histogram.
        chi2: f64,
        /// Upper-tail p-value of `chi2`.
        p_value: f64,
        /// Whether the cell passed the uniformity gate.
        passed: bool,
        /// Wall-clock time the cell's replications took, ms.
        wall_ms: f64,
    },
    /// A multi-dataset batch began executing.
    BatchStart {
        /// Batch identifier (`batch-N` on the service, the master
        /// seed rendering on the CLI).
        batch_id: String,
        /// Number of items (datasets) in the batch.
        items: usize,
        /// Master seed the per-item seeds were split from.
        master_seed: u64,
    },
    /// One batch item reached a terminal state.
    BatchItemDone {
        /// Batch identifier.
        batch_id: String,
        /// Item index within the batch (submission order).
        item: usize,
        /// Item label (file stem, dataset name, or caller-supplied).
        label: String,
        /// Terminal status (`done`, `degraded`, `failed`).
        status: String,
        /// Whether the item was served from a cache (the in-batch
        /// duplicate-dataset cache or the service fit cache) without
        /// sampling.
        cached: bool,
        /// Wall-clock time attributed to the item, ms (0 for cached
        /// items).
        wall_ms: f64,
    },
    /// A multi-dataset batch finished.
    BatchDone {
        /// Batch identifier.
        batch_id: String,
        /// Number of items in the batch.
        items: usize,
        /// Items that ended `failed`.
        failed: usize,
        /// Items served from a cache without sampling.
        cache_hits: usize,
        /// Wall-clock time for the whole batch, ms.
        wall_ms: f64,
    },
    /// One HTTP request, as the structured access log records it. The
    /// request's trace id is injected by the sink (like every other
    /// line), so the variant carries only the request outcome.
    Access {
        /// Request method (`GET`, `POST`, …).
        method: String,
        /// Request path.
        path: String,
        /// Response status code.
        status: u16,
        /// Response body size in bytes.
        bytes: u64,
        /// Whether the request was answered from the fit cache.
        cache_hit: bool,
        /// Time the correlated work spent waiting on the job queue,
        /// ms (0 when nothing queued during this request).
        queue_wait_ms: f64,
        /// Time spent inside the engine (`fit` spans) attributable to
        /// this request, ms.
        engine_ms: f64,
        /// Time spent serialising responses/results, ms.
        serialize_ms: f64,
    },
    /// The flight recorder dumped its rings to disk. Written as the
    /// first line of every `flightrec-<ts>.jsonl` file.
    FlightRecDump {
        /// Why the dump happened (`panic`, `engine-failure`,
        /// `sigterm`, `on-demand`, …).
        reason: String,
        /// Events captured in the dump.
        events: u64,
    },
}

/// Every `kind()` label, for schema validation.
pub const EVENT_KINDS: &[&str] = &[
    "run-start",
    "phase-start",
    "phase-end",
    "chain-start",
    "sweep-start",
    "sweep-end",
    "metropolis",
    "sweep-fault",
    "retry",
    "fault-injected",
    "chain-panicked",
    "chain-done",
    "chain-report",
    "cell-start",
    "cell-end",
    "cell-failure",
    "waic",
    "diagnostic",
    "cli-diagnostic",
    "job-start",
    "job-done",
    "cache-hit",
    "cache-miss",
    "diagnostic-checkpoint",
    "profile",
    "sbc-cell-start",
    "sbc-rep-done",
    "sbc-cell-done",
    "batch-start",
    "batch-item-done",
    "batch-done",
    "access",
    "flightrec-dump",
];

impl Event {
    /// Stable kebab-case discriminator, written as the `"type"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run-start",
            Event::PhaseStart { .. } => "phase-start",
            Event::PhaseEnd { .. } => "phase-end",
            Event::ChainStart { .. } => "chain-start",
            Event::SweepStart { .. } => "sweep-start",
            Event::SweepEnd { .. } => "sweep-end",
            Event::Metropolis { .. } => "metropolis",
            Event::SweepFault { .. } => "sweep-fault",
            Event::Retry { .. } => "retry",
            Event::FaultInjected { .. } => "fault-injected",
            Event::ChainPanicked { .. } => "chain-panicked",
            Event::ChainDone { .. } => "chain-done",
            Event::ChainReport { .. } => "chain-report",
            Event::CellStart { .. } => "cell-start",
            Event::CellEnd { .. } => "cell-end",
            Event::CellFailure { .. } => "cell-failure",
            Event::Waic { .. } => "waic",
            Event::Diagnostic { .. } => "diagnostic",
            Event::CliDiagnostic { .. } => "cli-diagnostic",
            Event::JobStart { .. } => "job-start",
            Event::JobDone { .. } => "job-done",
            Event::CacheHit { .. } => "cache-hit",
            Event::CacheMiss { .. } => "cache-miss",
            Event::DiagnosticCheckpoint { .. } => "diagnostic-checkpoint",
            Event::Profile { .. } => "profile",
            Event::SbcCellStart { .. } => "sbc-cell-start",
            Event::SbcRepDone { .. } => "sbc-rep-done",
            Event::SbcCellDone { .. } => "sbc-cell-done",
            Event::BatchStart { .. } => "batch-start",
            Event::BatchItemDone { .. } => "batch-item-done",
            Event::BatchDone { .. } => "batch-done",
            Event::Access { .. } => "access",
            Event::FlightRecDump { .. } => "flightrec-dump",
        }
    }

    /// The chain index this event concerns, if it is chain-scoped.
    pub fn chain(&self) -> Option<usize> {
        match self {
            Event::ChainStart { chain, .. }
            | Event::SweepStart { chain, .. }
            | Event::SweepEnd { chain, .. }
            | Event::Metropolis { chain, .. }
            | Event::SweepFault { chain, .. }
            | Event::Retry { chain, .. }
            | Event::FaultInjected { chain, .. }
            | Event::ChainPanicked { chain, .. }
            | Event::ChainDone { chain, .. }
            | Event::ChainReport { chain, .. } => Some(*chain),
            Event::DiagnosticCheckpoint { checkpoint } => Some(checkpoint.chain),
            _ => None,
        }
    }

    /// Full JSON payload, including the `"type"` discriminator.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            vec![("type".to_string(), Value::Str(self.kind().to_string()))];
        let mut push = |k: &str, v: Value| pairs.push((k.to_string(), v));
        match self {
            Event::RunStart {
                command,
                model,
                prior,
                seed,
                dataset_hash,
            } => {
                push("command", Value::Str(command.clone()));
                push("model", Value::Str(model.clone()));
                push("prior", Value::Str(prior.clone()));
                push("seed", Value::Num(*seed as f64));
                push("dataset_hash", Value::Str(dataset_hash.clone()));
            }
            Event::PhaseStart { phase } => push("phase", Value::Str(phase.to_string())),
            Event::PhaseEnd { phase, wall_ms } => {
                push("phase", Value::Str(phase.to_string()));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::ChainStart { chain, sweeps } => {
                push("chain", Value::Num(*chain as f64));
                push("sweeps", Value::Num(*sweeps as f64));
            }
            Event::SweepStart {
                chain,
                sweep,
                total,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("total", Value::Num(*total as f64));
            }
            Event::SweepEnd {
                chain,
                sweep,
                total,
                kept,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("total", Value::Num(*total as f64));
                push("kept", Value::Num(*kept as f64));
            }
            Event::Metropolis {
                chain,
                sweep,
                parameter,
                accepted,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("parameter", Value::Str(parameter.to_string()));
                push("accepted", Value::Bool(*accepted));
            }
            Event::SweepFault {
                chain,
                sweep,
                kind,
                detail,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("kind", Value::Str(kind.clone()));
                push("detail", Value::Str(detail.clone()));
            }
            Event::Retry {
                chain,
                sweep,
                retries,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("retries", Value::Num(*retries as f64));
            }
            Event::FaultInjected { chain, sweep, kind } => {
                push("chain", Value::Num(*chain as f64));
                push("sweep", Value::Num(*sweep as f64));
                push("kind", Value::Str(kind.clone()));
            }
            Event::ChainPanicked { chain, detail } => {
                push("chain", Value::Num(*chain as f64));
                push("detail", Value::Str(detail.clone()));
            }
            Event::ChainDone {
                chain,
                retries,
                accept,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("retries", Value::Num(*retries as f64));
                push(
                    "accept",
                    Value::Arr(
                        accept
                            .iter()
                            .map(|a| {
                                Value::obj(vec![
                                    ("parameter", Value::Str(a.parameter.clone())),
                                    ("steps", Value::Num(a.steps as f64)),
                                    ("accepted", Value::Num(a.accepted as f64)),
                                    ("rate", Value::Num(a.rate())),
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            Event::ChainReport {
                chain,
                recovered,
                retries,
                fault,
                wall_ms,
            } => {
                push("chain", Value::Num(*chain as f64));
                push("recovered", Value::Bool(*recovered));
                push("retries", Value::Num(*retries as f64));
                push(
                    "fault",
                    match fault {
                        Some(kind) => Value::Str(kind.clone()),
                        None => Value::Null,
                    },
                );
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::CellStart { prior, model, day } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("day", Value::Num(*day as f64));
            }
            Event::CellEnd {
                prior,
                model,
                day,
                wall_ms,
            } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("day", Value::Num(*day as f64));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::CellFailure {
                prior,
                model,
                day,
                kind,
            } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("day", Value::Num(*day as f64));
                push("kind", Value::Str(kind.clone()));
            }
            Event::Waic {
                model,
                total,
                p_waic,
                draws,
            } => {
                push("model", Value::Str(model.clone()));
                push("total", Value::Num(*total));
                push("p_waic", Value::Num(*p_waic));
                push("draws", Value::Num(*draws as f64));
            }
            Event::Diagnostic {
                parameter,
                psrf,
                geweke_z,
                ess,
            } => {
                push("parameter", Value::Str(parameter.clone()));
                push("psrf", Value::Num(*psrf));
                push("geweke_z", Value::Num(*geweke_z));
                push("ess", Value::Num(*ess));
            }
            Event::CliDiagnostic { level, message } => {
                push("level", Value::Str(level.to_string()));
                push("message", Value::Str(message.clone()));
            }
            Event::JobStart {
                job_id,
                kind,
                cache_key,
            } => {
                push("job_id", Value::Str(job_id.clone()));
                push("kind", Value::Str(kind.clone()));
                push("cache_key", Value::Str(cache_key.clone()));
            }
            Event::JobDone {
                job_id,
                status,
                cached,
                wall_ms,
            } => {
                push("job_id", Value::Str(job_id.clone()));
                push("status", Value::Str(status.clone()));
                push("cached", Value::Bool(*cached));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::CacheHit { cache_key } => {
                push("cache_key", Value::Str(cache_key.clone()));
            }
            Event::CacheMiss { cache_key } => {
                push("cache_key", Value::Str(cache_key.clone()));
            }
            Event::DiagnosticCheckpoint { checkpoint } => {
                push("chain", Value::Num(checkpoint.chain as f64));
                push("sweep", Value::Num(checkpoint.sweep as f64));
                push("kept", Value::Num(checkpoint.kept as f64));
                push("wall_ms", Value::Num(checkpoint.wall_ms));
                push(
                    "params",
                    Value::Arr(checkpoint.params.iter().map(|p| p.to_value()).collect()),
                );
                push(
                    "accept",
                    Value::Arr(
                        checkpoint
                            .accept
                            .iter()
                            .map(|a| {
                                Value::obj(vec![
                                    ("parameter", Value::Str(a.parameter.clone())),
                                    ("steps", Value::Num(a.steps as f64)),
                                    ("accepted", Value::Num(a.accepted as f64)),
                                    ("rate", Value::Num(a.rate())),
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            Event::Profile { phases } => {
                push(
                    "phases",
                    Value::Arr(phases.iter().map(PhaseSnapshot::to_value).collect()),
                );
            }
            Event::SbcCellStart { prior, model, reps } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("reps", Value::Num(*reps as f64));
            }
            Event::SbcRepDone {
                prior,
                model,
                rep,
                rank,
                num_ranks,
            } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("rep", Value::Num(*rep as f64));
                push("rank", Value::Num(*rank as f64));
                push("num_ranks", Value::Num(*num_ranks as f64));
            }
            Event::SbcCellDone {
                prior,
                model,
                reps,
                failures,
                chi2,
                p_value,
                passed,
                wall_ms,
            } => {
                push("prior", Value::Str(prior.clone()));
                push("model", Value::Str(model.clone()));
                push("reps", Value::Num(*reps as f64));
                push("failures", Value::Num(*failures as f64));
                push("chi2", Value::Num(*chi2));
                push("p_value", Value::Num(*p_value));
                push("passed", Value::Bool(*passed));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::BatchStart {
                batch_id,
                items,
                master_seed,
            } => {
                push("batch_id", Value::Str(batch_id.clone()));
                push("items", Value::Num(*items as f64));
                push("master_seed", Value::Num(*master_seed as f64));
            }
            Event::BatchItemDone {
                batch_id,
                item,
                label,
                status,
                cached,
                wall_ms,
            } => {
                push("batch_id", Value::Str(batch_id.clone()));
                push("item", Value::Num(*item as f64));
                push("label", Value::Str(label.clone()));
                push("status", Value::Str(status.clone()));
                push("cached", Value::Bool(*cached));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::BatchDone {
                batch_id,
                items,
                failed,
                cache_hits,
                wall_ms,
            } => {
                push("batch_id", Value::Str(batch_id.clone()));
                push("items", Value::Num(*items as f64));
                push("failed", Value::Num(*failed as f64));
                push("cache_hits", Value::Num(*cache_hits as f64));
                push("wall_ms", Value::Num(*wall_ms));
            }
            Event::Access {
                method,
                path,
                status,
                bytes,
                cache_hit,
                queue_wait_ms,
                engine_ms,
                serialize_ms,
            } => {
                push("method", Value::Str(method.clone()));
                push("path", Value::Str(path.clone()));
                push("status", Value::Num(f64::from(*status)));
                push("bytes", Value::Num(*bytes as f64));
                push("cache_hit", Value::Bool(*cache_hit));
                push("queue_wait_ms", Value::Num(*queue_wait_ms));
                push("engine_ms", Value::Num(*engine_ms));
                push("serialize_ms", Value::Num(*serialize_ms));
            }
            Event::FlightRecDump { reason, events } => {
                push("reason", Value::Str(reason.clone()));
                push("events", Value::Num(*events as f64));
            }
        }
        Value::Obj(pairs)
    }
}

/// The non-`type` fields required for a given event kind, for schema
/// validation of JSONL traces.
pub fn required_fields(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "run-start" => &["command", "model", "prior", "seed", "dataset_hash"],
        "phase-start" => &["phase"],
        "phase-end" => &["phase", "wall_ms"],
        "chain-start" => &["chain", "sweeps"],
        "sweep-start" => &["chain", "sweep", "total"],
        "sweep-end" => &["chain", "sweep", "total", "kept"],
        "metropolis" => &["chain", "sweep", "parameter", "accepted"],
        "sweep-fault" => &["chain", "sweep", "kind", "detail"],
        "retry" => &["chain", "sweep", "retries"],
        "fault-injected" => &["chain", "sweep", "kind"],
        "chain-panicked" => &["chain", "detail"],
        "chain-done" => &["chain", "retries", "accept"],
        "chain-report" => &["chain", "recovered", "retries", "fault", "wall_ms"],
        "cell-start" => &["prior", "model", "day"],
        "cell-end" => &["prior", "model", "day", "wall_ms"],
        "cell-failure" => &["prior", "model", "day", "kind"],
        "waic" => &["model", "total", "p_waic", "draws"],
        "diagnostic" => &["parameter", "psrf", "geweke_z", "ess"],
        "cli-diagnostic" => &["level", "message"],
        "job-start" => &["job_id", "kind", "cache_key"],
        "job-done" => &["job_id", "status", "cached", "wall_ms"],
        "cache-hit" => &["cache_key"],
        "cache-miss" => &["cache_key"],
        "diagnostic-checkpoint" => &["chain", "sweep", "kept", "wall_ms", "params", "accept"],
        "profile" => &["phases"],
        "sbc-cell-start" => &["prior", "model", "reps"],
        "sbc-rep-done" => &["prior", "model", "rep", "rank", "num_ranks"],
        "sbc-cell-done" => &[
            "prior", "model", "reps", "failures", "chi2", "p_value", "passed", "wall_ms",
        ],
        "batch-start" => &["batch_id", "items", "master_seed"],
        "batch-item-done" => &["batch_id", "item", "label", "status", "cached", "wall_ms"],
        "batch-done" => &["batch_id", "items", "failed", "cache_hits", "wall_ms"],
        "access" => &["method", "path", "status", "bytes", "cache_hit"],
        "flightrec-dump" => &["reason", "events"],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_registered_and_fields_complete() {
        let samples: Vec<Event> = vec![
            Event::RunStart {
                command: "fit".into(),
                model: "model2".into(),
                prior: "poisson".into(),
                seed: 7,
                dataset_hash: "deadbeef".into(),
            },
            Event::PhaseStart { phase: "sampling" },
            Event::PhaseEnd {
                phase: "sampling",
                wall_ms: 12.5,
            },
            Event::ChainStart {
                chain: 0,
                sweeps: 100,
            },
            Event::SweepStart {
                chain: 0,
                sweep: 0,
                total: 100,
            },
            Event::SweepEnd {
                chain: 0,
                sweep: 0,
                total: 100,
                kept: 0,
            },
            Event::Metropolis {
                chain: 1,
                sweep: 3,
                parameter: "zeta0",
                accepted: true,
            },
            Event::SweepFault {
                chain: 1,
                sweep: 9,
                kind: "slice-exhausted".into(),
                detail: "slice expansion exhausted".into(),
            },
            Event::Retry {
                chain: 1,
                sweep: 9,
                retries: 1,
            },
            Event::FaultInjected {
                chain: 1,
                sweep: 9,
                kind: "nan-rate".into(),
            },
            Event::ChainPanicked {
                chain: 2,
                detail: "boom".into(),
            },
            Event::ChainDone {
                chain: 0,
                retries: 0,
                accept: vec![AcceptStat {
                    parameter: "zeta0".into(),
                    steps: 10,
                    accepted: 4,
                }],
            },
            Event::ChainReport {
                chain: 0,
                recovered: true,
                retries: 1,
                fault: Some("panic".into()),
                wall_ms: 12.5,
            },
            Event::CellStart {
                prior: "poisson".into(),
                model: "model1".into(),
                day: 48,
            },
            Event::CellEnd {
                prior: "poisson".into(),
                model: "model1".into(),
                day: 48,
                wall_ms: 3.0,
            },
            Event::CellFailure {
                prior: "negbinom".into(),
                model: "model4".into(),
                day: 48,
                kind: "degenerate-posterior".into(),
            },
            Event::Waic {
                model: "model3".into(),
                total: 211.4,
                p_waic: 2.1,
                draws: 4000,
            },
            Event::Diagnostic {
                parameter: "residual".into(),
                psrf: 1.01,
                geweke_z: 0.3,
                ess: 950.0,
            },
            Event::CliDiagnostic {
                level: "error",
                message: "unknown flag".into(),
            },
            Event::JobStart {
                job_id: "j1".into(),
                kind: "fit".into(),
                cache_key: "0123456789abcdef".into(),
            },
            Event::JobDone {
                job_id: "j1".into(),
                status: "done".into(),
                cached: false,
                wall_ms: 80.5,
            },
            Event::CacheHit {
                cache_key: "0123456789abcdef".into(),
            },
            Event::CacheMiss {
                cache_key: "0123456789abcdef".into(),
            },
            Event::DiagnosticCheckpoint {
                checkpoint: ChainCheckpoint {
                    chain: 0,
                    sweep: 49,
                    kept: 25,
                    wall_ms: 120.0,
                    params: vec![crate::checkpoint::ParamCheckpoint {
                        parameter: "residual".into(),
                        moments: crate::checkpoint::MomentSummary {
                            count: 25,
                            mean: 4.2,
                            variance: 1.1,
                        },
                        half1: crate::checkpoint::MomentSummary {
                            count: 25,
                            mean: 4.2,
                            variance: 1.1,
                        },
                        half2: crate::checkpoint::MomentSummary::default(),
                        ess: 18.0,
                        mcse: 0.25,
                        ess_per_sec: 150.0,
                    }],
                    accept: vec![AcceptStat {
                        parameter: "zeta0".into(),
                        steps: 50,
                        accepted: 21,
                    }],
                },
            },
            Event::Profile {
                phases: vec![PhaseSnapshot {
                    path: "chain/sweep".into(),
                    count: 100,
                    total_ns: 5_000_000,
                    self_ns: 4_000_000,
                    min_ns: 40_000,
                    max_ns: 90_000,
                    buckets: vec![0; crate::profile::HIST_BUCKETS],
                }],
            },
            Event::SbcCellStart {
                prior: "poisson".into(),
                model: "model0".into(),
                reps: 64,
            },
            Event::SbcRepDone {
                prior: "poisson".into(),
                model: "model0".into(),
                rep: 5,
                rank: 311,
                num_ranks: 1000,
            },
            Event::SbcCellDone {
                prior: "negbinom".into(),
                model: "model3".into(),
                reps: 64,
                failures: 0,
                chi2: 7.2,
                p_value: 0.62,
                passed: true,
                wall_ms: 4200.0,
            },
            Event::BatchStart {
                batch_id: "batch-1".into(),
                items: 4,
                master_seed: 2024,
            },
            Event::BatchItemDone {
                batch_id: "batch-1".into(),
                item: 2,
                label: "musa_cc96".into(),
                status: "done".into(),
                cached: false,
                wall_ms: 310.0,
            },
            Event::BatchDone {
                batch_id: "batch-1".into(),
                items: 4,
                failed: 0,
                cache_hits: 1,
                wall_ms: 1250.0,
            },
            Event::Access {
                method: "POST".into(),
                path: "/v1/jobs".into(),
                status: 202,
                bytes: 96,
                cache_hit: false,
                queue_wait_ms: 0.4,
                engine_ms: 0.0,
                serialize_ms: 0.1,
            },
            Event::FlightRecDump {
                reason: "sigterm".into(),
                events: 128,
            },
        ];
        assert_eq!(samples.len(), EVENT_KINDS.len());
        for event in &samples {
            assert!(EVENT_KINDS.contains(&event.kind()), "{}", event.kind());
            let value = event.to_value();
            assert_eq!(
                value.get("type").and_then(|v| v.as_str()),
                Some(event.kind())
            );
            let required = required_fields(event.kind()).unwrap();
            for field in required {
                assert!(
                    value.get(field).is_some(),
                    "{} missing field {field}",
                    event.kind()
                );
            }
        }
    }

    #[test]
    fn chain_scope_is_reported() {
        let e = Event::Retry {
            chain: 3,
            sweep: 5,
            retries: 1,
        };
        assert_eq!(e.chain(), Some(3));
        let e = Event::PhaseStart { phase: "waic" };
        assert_eq!(e.chain(), None);
    }

    #[test]
    fn accept_stat_rate_handles_zero_steps() {
        let a = AcceptStat {
            parameter: "zeta0".into(),
            steps: 0,
            accepted: 0,
        };
        assert_eq!(a.rate(), 0.0);
        let a = AcceptStat {
            parameter: "zeta0".into(),
            steps: 8,
            accepted: 2,
        };
        assert!((a.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unknown_kind_has_no_schema() {
        assert!(required_fields("not-an-event").is_none());
    }

    #[test]
    fn diagnostic_checkpoint_round_trips_through_json() {
        let checkpoint = ChainCheckpoint {
            chain: 2,
            sweep: 99,
            kept: 50,
            wall_ms: 321.5,
            params: vec![crate::checkpoint::ParamCheckpoint {
                parameter: "lambda0".into(),
                moments: crate::checkpoint::MomentSummary {
                    count: 50,
                    mean: 0.5,
                    variance: 0.01,
                },
                half1: crate::checkpoint::MomentSummary {
                    count: 25,
                    mean: 0.49,
                    variance: 0.012,
                },
                half2: crate::checkpoint::MomentSummary {
                    count: 25,
                    mean: 0.51,
                    variance: 0.008,
                },
                ess: 31.5,
                mcse: 0.017,
                ess_per_sec: 98.0,
            }],
            accept: vec![AcceptStat {
                parameter: "zeta1".into(),
                steps: 100,
                accepted: 37,
            }],
        };
        let event = Event::DiagnosticCheckpoint {
            checkpoint: checkpoint.clone(),
        };
        let value = event.to_value();
        assert_eq!(event.chain(), Some(2));
        let text = value.to_json();
        let parsed = crate::json::parse(&text).unwrap();
        let back = ChainCheckpoint::from_value(&parsed).unwrap();
        assert_eq!(back, checkpoint);
    }
}
