//! Crash/error flight recorder: a bounded ring of recent events per
//! thread, dumpable to disk when something goes wrong.
//!
//! The recorder answers "what was the system doing just before the
//! failure?" without paying for a full trace. Each thread that emits
//! events gets its own ring of the last N recorded lines, registered
//! in a process-wide registry; the record path locks only the calling
//! thread's own ring (uncontended in steady state), so the cost is a
//! few atomics and one cheap mutex. When disabled — the default —
//! recording is a single relaxed atomic load.
//!
//! Dumps (`flightrec-<ts>.jsonl` in the chosen directory) are written
//! on panic, on engine failure, on SIGTERM drain, and on demand via
//! `GET /v1/debug/events`. Dump I/O follows the workspace degradation
//! policy: a failed write bumps an error counter and the process
//! keeps serving.
//!
//! The recorder observes the run and never feeds anything back: it
//! has no access to the sampler's RNG, so draws are bit-identical
//! with the recorder on or off (property-tested at the workspace
//! level).

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::Event;
use crate::json::Value;
use crate::recorder::{Counter, Recorder};
use crate::sinks::JsonlSink;
use crate::trace_id::TraceId;

/// Default per-thread ring capacity.
pub const DEFAULT_FLIGHTREC_CAPACITY: usize = 256;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One captured event line.
#[derive(Debug, Clone)]
struct Captured {
    /// Global capture sequence number (total order across threads).
    seq: u64,
    /// The event's JSON payload with `trace_id`, `seq`, and `thread`
    /// already injected.
    value: Value,
}

/// One thread's bounded ring.
#[derive(Debug)]
struct ThreadRing {
    thread: String,
    slots: Mutex<VecDeque<Captured>>,
}

/// Process-wide recorder state.
#[derive(Debug)]
struct Registry {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    seq: AtomicU64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    recorded: Counter,
    dumps: Counter,
    dump_errors: Counter,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(DEFAULT_FLIGHTREC_CAPACITY),
        seq: AtomicU64::new(0),
        rings: Mutex::new(Vec::new()),
        recorded: Counter::new(),
        dumps: Counter::new(),
        dump_errors: Counter::new(),
    })
}

thread_local! {
    static RING: OnceLock<Arc<ThreadRing>> = const { OnceLock::new() };
}

fn own_ring() -> Arc<ThreadRing> {
    RING.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let name = std::thread::current().name().map_or_else(
                || format!("{:?}", std::thread::current().id()),
                str::to_owned,
            );
            let ring = Arc::new(ThreadRing {
                thread: name,
                slots: Mutex::new(VecDeque::new()),
            });
            lock_ignoring_poison(&registry().rings).push(Arc::clone(&ring));
            ring
        }))
    })
}

/// Turns the recorder on with the given per-thread capacity.
pub fn enable(capacity: usize) {
    let reg = registry();
    reg.capacity
        .store(capacity.clamp(1, 65_536), Ordering::Relaxed);
    reg.enabled.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Rings keep their contents (a dump after
/// disable still shows the run-up).
pub fn disable() {
    registry().enabled.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently capturing.
#[must_use]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Empties every ring (tests and targeted debugging sessions).
pub fn clear() {
    let rings: Vec<Arc<ThreadRing>> = lock_ignoring_poison(&registry().rings).clone();
    for ring in rings {
        lock_ignoring_poison(&ring.slots).clear();
    }
}

/// Captures one event under the given trace id. A no-op when the
/// recorder is disabled.
pub fn record_event(event: &Event, trace_id: &str) {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    let ring = own_ring();
    let seq = reg.seq.fetch_add(1, Ordering::Relaxed);
    let mut value = event.to_value();
    if let Value::Obj(pairs) = &mut value {
        pairs.insert(1, ("trace_id".to_owned(), Value::Str(trace_id.to_owned())));
        pairs.insert(2, ("seq".to_owned(), Value::Num(seq as f64)));
        pairs.insert(3, ("thread".to_owned(), Value::Str(ring.thread.clone())));
    }
    let capacity = reg.capacity.load(Ordering::Relaxed);
    let mut slots = lock_ignoring_poison(&ring.slots);
    while slots.len() >= capacity {
        slots.pop_front();
    }
    slots.push_back(Captured { seq, value });
    drop(slots);
    reg.recorded.incr();
}

/// A [`Recorder`] that feeds a job's events into the flight recorder
/// under the job's trace id. Cheap to construct; tee one per job.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    trace_id: String,
}

impl FlightRecorder {
    /// A recorder tagging captures with `trace_id`.
    #[must_use]
    pub fn new(trace_id: TraceId) -> Self {
        Self {
            trace_id: trace_id.to_hex(),
        }
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        enabled()
    }

    fn sweep_stride(&self) -> usize {
        JsonlSink::DEFAULT_SWEEP_STRIDE
    }

    fn record(&self, event: &Event) {
        record_event(event, &self.trace_id);
    }
}

/// The merged contents of every ring, in capture order.
#[must_use]
pub fn snapshot() -> Vec<Value> {
    let rings: Vec<Arc<ThreadRing>> = lock_ignoring_poison(&registry().rings).clone();
    let mut all: Vec<Captured> = Vec::new();
    for ring in rings {
        all.extend(lock_ignoring_poison(&ring.slots).iter().cloned());
    }
    all.sort_by_key(|c| c.seq);
    all.into_iter().map(|c| c.value).collect()
}

/// Counters for `/metrics` and the debug endpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightRecStats {
    /// Whether capture is on.
    pub enabled: bool,
    /// Per-thread ring capacity.
    pub capacity: usize,
    /// Threads with a registered ring.
    pub threads: usize,
    /// Events captured since boot (including since-evicted ones).
    pub recorded: u64,
    /// Dumps written successfully.
    pub dumps: u64,
    /// Dump attempts that failed (degraded, service continued).
    pub dump_errors: u64,
}

/// Current recorder statistics.
#[must_use]
pub fn stats() -> FlightRecStats {
    let reg = registry();
    FlightRecStats {
        enabled: enabled(),
        capacity: reg.capacity.load(Ordering::Relaxed),
        threads: lock_ignoring_poison(&reg.rings).len(),
        recorded: reg.recorded.get(),
        dumps: reg.dumps.get(),
        dump_errors: reg.dump_errors.get(),
    }
}

/// Writes every captured event to `dir/flightrec-<ts>.jsonl`, newest
/// rings merged in capture order, preceded by one `flightrec-dump`
/// line recording why the dump happened. Returns the path written.
///
/// # Errors
///
/// Returns [`io::Error`] when the file cannot be created or written;
/// the error counter is bumped either way, so callers can treat the
/// result as advisory (degradation policy: log, count, keep serving).
pub fn dump_to_dir(dir: &Path, reason: &str) -> io::Result<PathBuf> {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let path = dir.join(format!("flightrec-{ts}.jsonl"));
    let events = snapshot();
    let write = (|| -> io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        let header = Event::FlightRecDump {
            reason: reason.to_owned(),
            events: events.len() as u64,
        };
        let mut header_value = header.to_value();
        if let Value::Obj(pairs) = &mut header_value {
            pairs.insert(
                1,
                (
                    "trace_id".to_owned(),
                    Value::Str(crate::trace_id::process_trace_id().to_hex()),
                ),
            );
        }
        writeln!(file, "{}", header_value.to_json())?;
        for event in &events {
            writeln!(file, "{}", event.to_json())?;
        }
        file.flush()
    })();
    match write {
        Ok(()) => {
            registry().dumps.incr();
            Ok(path)
        }
        Err(e) => {
            registry().dump_errors.incr();
            Err(e)
        }
    }
}

/// Installs a panic hook that dumps the rings to `dir` before
/// delegating to the previous hook. Idempotent in effect (each call
/// layers one more dump attempt; the server installs it once).
pub fn install_panic_hook(dir: PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = dump_to_dir(&dir, "panic");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so every assertion that spans
    /// enable/record/dump runs under this lock to keep tests from
    /// interleaving.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_ignoring_poison(&LOCK)
    }

    fn sample_event(sweep: usize) -> Event {
        Event::SweepEnd {
            chain: 0,
            sweep,
            total: 100,
            kept: sweep / 2,
        }
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _guard = test_lock();
        disable();
        clear();
        record_event(&sample_event(1), "aa");
        assert!(snapshot().is_empty());
    }

    #[test]
    fn rings_are_bounded_and_snapshot_merges_in_order() {
        let _guard = test_lock();
        enable(4);
        clear();
        for sweep in 0..10 {
            record_event(&sample_event(sweep), "bb");
        }
        let events = snapshot();
        assert_eq!(events.len(), 4, "ring must keep only the last 4");
        let sweeps: Vec<f64> = events
            .iter()
            .map(|e| e.get("sweep").and_then(Value::as_f64).unwrap())
            .collect();
        assert_eq!(sweeps, vec![6.0, 7.0, 8.0, 9.0]);
        for event in &events {
            assert_eq!(event.get("trace_id").and_then(Value::as_str), Some("bb"));
            assert!(event.get("seq").is_some());
            assert!(event.get("thread").is_some());
        }
        disable();
    }

    #[test]
    fn recorder_trait_tags_events_with_its_trace_id() {
        let _guard = test_lock();
        enable(8);
        clear();
        let rec = FlightRecorder::new(TraceId::from_u128(0xfeed));
        assert!(rec.enabled());
        rec.record(&sample_event(3));
        let events = snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("trace_id").and_then(Value::as_str),
            Some(TraceId::from_u128(0xfeed).to_hex().as_str())
        );
        disable();
        assert!(!rec.enabled());
    }

    #[test]
    fn dump_writes_header_plus_events_and_counts() {
        let _guard = test_lock();
        enable(8);
        clear();
        record_event(&sample_event(5), "cc");
        let dir = std::env::temp_dir().join(format!("srm_flightrec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let before = stats().dumps;
        let path = dump_to_dir(&dir, "unit-test").unwrap();
        assert_eq!(stats().dumps, before + 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let header = crate::json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("type").and_then(Value::as_str),
            Some("flightrec-dump")
        );
        assert_eq!(
            header.get("reason").and_then(Value::as_str),
            Some("unit-test")
        );
        assert_eq!(header.get("events").and_then(Value::as_f64), Some(1.0));
        let event = crate::json::parse(lines[1]).unwrap();
        assert_eq!(event.get("trace_id").and_then(Value::as_str), Some("cc"));
        disable();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_into_an_unwritable_target_degrades_to_a_counted_error() {
        let _guard = test_lock();
        enable(8);
        clear();
        record_event(&sample_event(1), "dd");
        // A file where the directory should be: create() under it
        // fails on every platform, root or not.
        let blocker =
            std::env::temp_dir().join(format!("srm_flightrec_blk_{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let before = stats().dump_errors;
        assert!(dump_to_dir(&blocker, "unit-test").is_err());
        assert_eq!(stats().dump_errors, before + 1);
        disable();
        let _ = std::fs::remove_file(&blocker);
    }
}
