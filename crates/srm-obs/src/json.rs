//! A minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The workspace is dependency-free (no serde), but the observability
//! layer needs real JSON in three places: the JSONL event trace, the
//! run manifest, and the bench-harness `BENCH_mcmc.json` (which must
//! *merge* with an existing file, hence the parser). The model is
//! deliberately small: objects preserve insertion order, numbers are
//! `f64`, and non-finite floats serialise as `null` (JSON has no NaN).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for building an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload as key/value pairs, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serialises with two-space indentation (for manifests meant to
    /// be read by humans as well as machines).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a single JSON document, requiring the whole input to be
/// consumed (modulo trailing whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point; input came from a
                    // &str so boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let step = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..step.min(rest.len())])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += step;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is on the 'u'.
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        // Surrogate pairs are rejected rather than combined; the
        // writer never emits them.
        char::from_u32(code).ok_or_else(|| self.error("non-scalar \\u escape"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Convenience: an object as a sorted map, for order-insensitive
/// comparisons in tests.
pub fn obj_as_map(value: &Value) -> Option<BTreeMap<&str, &Value>> {
    value
        .as_obj()
        .map(|pairs| pairs.iter().map(|(k, v)| (k.as_str(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::obj(vec![
            ("name", Value::Str("gibbs".into())),
            ("n", Value::Num(3.0)),
            ("frac", Value::Num(0.5)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "arr",
                Value::Arr(vec![Value::Num(1.0), Value::Str("x\"y".into())]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(-3.0).to_json(), "-3");
        assert_eq!(Value::Num(0.25).to_json(), "0.25");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\nb\t\"c\"\u{1}".into());
        let text = v.to_json();
        assert_eq!(text, "\"a\\nb\\t\\\"c\\\"\\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn every_control_character_round_trips() {
        // U+0000..U+001F must all serialise to escapes that re-parse
        // to the original string (satellite: JSON writer hardening).
        let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Value::Str(s.clone());
        let text = v.to_json();
        assert!(
            text.bytes().all(|b| (0x20..0x80).contains(&b)),
            "control characters must leave the wire form: {text:?}"
        );
        assert_eq!(parse(&text).unwrap().as_str(), Some(s.as_str()));
    }

    #[test]
    fn lossy_utf8_replacement_chars_round_trip() {
        // Lone surrogates / invalid bytes can only enter a Rust &str
        // as U+FFFD via from_utf8_lossy; they must survive the trip.
        let lossy = String::from_utf8_lossy(&[0xf0, 0x9f, b'x', 0xed, 0xa0, 0x80]).into_owned();
        assert!(lossy.contains('\u{FFFD}'));
        let v = Value::Str(lossy.clone());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap().as_str(), Some(lossy.as_str()));
    }

    #[test]
    fn non_finite_fields_still_produce_valid_documents() {
        let doc = Value::obj(vec![
            ("rhat", Value::Num(f64::NAN)),
            ("ess", Value::Num(f64::INFINITY)),
            ("mcse", Value::Num(f64::NEG_INFINITY)),
            ("ok", Value::Num(1.5)),
        ]);
        let text = doc.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("rhat").unwrap(), &Value::Null);
        assert_eq!(back.get("ess").unwrap(), &Value::Null);
        assert_eq!(back.get("mcse").unwrap(), &Value::Null);
        assert_eq!(back.get("ok").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , 2.5e1 , \"\\u00e9é\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("éé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let doc = Value::obj(vec![
            ("a", Value::Arr(vec![Value::Num(1.0)])),
            ("b", Value::obj(vec![("c", Value::Bool(false))])),
            ("empty", Value::Arr(vec![])),
        ]);
        assert_eq!(parse(&doc.to_json_pretty()).unwrap(), doc);
    }

    #[test]
    fn get_and_map_views_agree() {
        let doc = Value::obj(vec![("x", Value::Num(1.0)), ("y", Value::Num(2.0))]);
        assert_eq!(doc.get("y").unwrap().as_f64(), Some(2.0));
        assert!(doc.get("z").is_none());
        let map = obj_as_map(&doc).unwrap();
        assert_eq!(map["x"].as_f64(), Some(1.0));
    }
}
