//! # srm-obs — observability for the MCMC engine
//!
//! A zero-cost-when-disabled instrumentation layer: the sampler and
//! orchestration code hold a [`Recorder`] reference and emit typed
//! [`Event`]s; sinks decide what to do with them. The contract is:
//!
//! * **Zero cost when disabled.** [`NoopRecorder::enabled`] returns
//!   `false`; instrumented loops hoist that into a local bool and
//!   never construct an event. The disabled path adds one predictable
//!   branch per sweep.
//! * **Never perturbs the run.** Recorders have no access to the
//!   sampler's RNG and no way to feed data back; a traced run and an
//!   untraced run of the same seed are bit-identical.
//! * **Best-effort I/O.** A full disk or broken pipe degrades the
//!   trace, never the estimate.
//!
//! Building blocks:
//!
//! | item | role |
//! |------|------|
//! | [`Recorder`] / [`NoopRecorder`] / [`Tee`] | the consumer trait, its default and fan-out |
//! | [`Event`] | the typed event taxonomy (kebab-case `type` discriminators) |
//! | [`Span`], [`Counter`], [`FixedHistogram`] | span timers, monotonic counters, fixed-bucket histograms |
//! | [`JsonlSink`] | `--trace-out`: one JSON object per event |
//! | [`ProgressSink`] | `--progress`: throttled human lines on stderr |
//! | [`StatsCollector`] | aggregates events into manifest numbers |
//! | [`RunManifest`] | the `--metrics-out` document |
//! | [`ChainCheckpoint`] / [`aggregate`] | streaming `diagnostic-checkpoint` payloads and their cross-chain R̂/ESS aggregation |
//! | [`profile`] | hierarchical span profiler: per-phase count/total/min/max/histogram aggregates |
//! | [`trace_id`] | 128-bit request-correlation ids (schema v7 `trace_id` field) |
//! | [`flightrec`] | bounded per-thread rings of recent events, dumped on panic/failure |
//! | [`json`] | dependency-free JSON writer + parser |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod event;
pub mod flightrec;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod recorder;
pub mod sinks;
pub mod stats;
pub mod trace_id;

pub use checkpoint::{
    aggregate, psrf_from_moments, AggregateDiagnostic, ChainCheckpoint, MomentSummary,
    ParamCheckpoint,
};
pub use event::{
    required_fields, AcceptStat, Event, EVENT_KINDS, EVENT_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use flightrec::{FlightRecStats, FlightRecorder, DEFAULT_FLIGHTREC_CAPACITY};
pub use manifest::{
    build_info_value, dataset_hash, fnv1a_hex, ManifestChain, RunManifest, MANIFEST_SCHEMA_VERSION,
};
pub use profile::{PhaseSnapshot, Profiler, TracedInterval, HIST_BUCKETS, RECENT_INTERVALS};
pub use recorder::{Counter, FixedHistogram, NoopRecorder, Recorder, Span, Tee, NOOP};
pub use sinks::{JsonlSink, ProgressSink};
pub use stats::{DiagnosticStat, StatsCollector};
pub use trace_id::{boot_nonce, process_trace_id, TraceId, TRACE_HEADER};
