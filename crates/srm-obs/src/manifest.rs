//! The machine-readable run manifest written by `--metrics-out`.
//!
//! One JSON document per invocation: enough to reproduce the run
//! (seed, dataset hash, model, MCMC shape) and to judge it (per-phase
//! wall time, draws/sec, per-chain acceptance, fault/retry counters,
//! final convergence diagnostics). `schema_version` is bumped on any
//! breaking field change.

use std::io;

use crate::checkpoint::{aggregate, AggregateDiagnostic};
use crate::event::{AcceptStat, EVENT_SCHEMA_VERSION, SCHEMA_VERSION};
use crate::json::Value;
use crate::stats::{DiagnosticStat, StatsCollector};

/// Manifest schema version written to every document.
///
/// Since schema v7 the manifest tracks the single workspace-wide
/// [`SCHEMA_VERSION`] rather than its own counter (the two document
/// families were bumped in lock-step anyway; the jump from 1 to 7 is
/// monotone and readers only compare for inequality).
pub const MANIFEST_SCHEMA_VERSION: u64 = SCHEMA_VERSION;

/// The build-info block shared by `srm version`, the `/healthz`
/// endpoint, and every run manifest: crate version plus the schema
/// versions, so any artifact can be traced back to the code and
/// schemas that produced it. (All workspace crates share one version,
/// so this crate's own version identifies the build.)
pub fn build_info_value() -> Value {
    Value::obj(vec![
        (
            "crate_version",
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("schema_version", Value::Num(SCHEMA_VERSION as f64)),
        (
            "manifest_schema_version",
            Value::Num(MANIFEST_SCHEMA_VERSION as f64),
        ),
        (
            "event_schema_version",
            Value::Num(EVENT_SCHEMA_VERSION as f64),
        ),
    ])
}

/// FNV-1a (64-bit) over a byte slice, hex-encoded — the dataset
/// fingerprint recorded in manifests and `run-start` events.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Fingerprints a dataset by its daily counts (little-endian u64s).
pub fn dataset_hash(counts: &[u64]) -> String {
    let mut bytes = Vec::with_capacity(counts.len() * 8);
    for &c in counts {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    fnv1a_hex(&bytes)
}

/// One chain's entry in the manifest.
#[derive(Debug, Clone, Default)]
pub struct ManifestChain {
    /// Chain index.
    pub chain: usize,
    /// Whether the chain recovered after a fault.
    pub recovered: bool,
    /// Retries consumed.
    pub retries: u64,
    /// First-fault kind, if any.
    pub fault: Option<String>,
    /// Wall-clock time the chain spent on its worker thread, ms.
    pub wall_ms: f64,
    /// Per-parameter acceptance statistics.
    pub accept: Vec<AcceptStat>,
}

/// The `--metrics-out` document.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// CLI command (`fit`, `select`, `trend`).
    pub command: String,
    /// Correlation id of the run that produced this manifest (the
    /// canonical 32-hex form; empty when the producer predates v7).
    pub trace_id: String,
    /// Detection-model identifier (or a command-specific label).
    pub model: String,
    /// Prior family, when the command has one.
    pub prior: String,
    /// Root RNG seed (0 for commands that draw nothing).
    pub seed: u64,
    /// FNV-1a fingerprint of the dataset counts.
    pub dataset_hash: String,
    /// Number of chains run.
    pub chains: usize,
    /// Burn-in sweeps per chain.
    pub burn_in: usize,
    /// Kept draws per chain.
    pub samples: usize,
    /// Thinning interval.
    pub thin: usize,
    /// Worker threads used for parallel chains (0 when not recorded).
    pub threads: usize,
    /// Per-phase wall time `(phase, ms)`.
    pub phases: Vec<(String, f64)>,
    /// Kept draws per second of sampling wall time (0 when unknown).
    pub draws_per_sec: f64,
    /// Per-chain outcomes.
    pub chain_reports: Vec<ManifestChain>,
    /// Fault counters `(kind, count)`.
    pub fault_counters: Vec<(String, u64)>,
    /// Total retries across chains.
    pub retries_total: u64,
    /// Faults injected by the test harness.
    pub faults_injected: u64,
    /// Final per-parameter convergence diagnostics.
    pub diagnostics: Vec<DiagnosticStat>,
    /// Overall convergence verdict, when computed.
    pub converged: Option<bool>,
    /// WAIC total of the (selected) model, when computed.
    pub waic: Option<f64>,
    /// `diagnostic-checkpoint` events the run emitted (0 when
    /// checkpoints were disabled).
    pub checkpoints_seen: u64,
    /// Cross-chain convergence summary from the final checkpoint of
    /// each chain (empty when checkpoints were disabled).
    pub checkpoint_summary: Vec<AggregateDiagnostic>,
}

impl RunManifest {
    /// Fills the stats-derived fields (per-phase wall time,
    /// throughput, per-chain reports, fault/retry counters,
    /// diagnostics, and the WAIC fallback) from an aggregating
    /// collector. `kept_draws` is the total number of posterior draws
    /// the run kept, for the draws/sec figure. Identity fields
    /// (command, model, seed, …) are left untouched.
    pub fn fill_from_stats(&mut self, stats: &StatsCollector, kept_draws: u64) {
        self.phases = stats.phase_ms();
        let sampling_ms = stats.phase_total_ms("sampling");
        self.draws_per_sec = if sampling_ms > 0.0 {
            kept_draws as f64 / (sampling_ms / 1_000.0)
        } else {
            0.0
        };
        let accept = stats.chain_accept();
        self.chain_reports = stats
            .chain_reports()
            .into_iter()
            .map(
                |(chain, recovered, retries, fault, wall_ms)| ManifestChain {
                    chain,
                    recovered,
                    retries,
                    fault,
                    wall_ms,
                    accept: accept
                        .iter()
                        .find(|(c, _)| *c == chain)
                        .map(|(_, a)| a.clone())
                        .unwrap_or_default(),
                },
            )
            .collect();
        self.fault_counters = stats.fault_counters();
        self.retries_total = stats.retries_total();
        self.faults_injected = stats.faults_injected();
        self.diagnostics = stats.diagnostics();
        if self.waic.is_none() {
            self.waic = stats.waic().map(|(_, total, _)| total);
        }
        self.checkpoints_seen = stats.checkpoints_seen();
        let latest = stats.latest_checkpoints();
        self.checkpoint_summary = aggregate(&latest.iter().collect::<Vec<_>>());
    }

    /// Serialises the manifest to its JSON document model.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("schema_version", Value::Num(MANIFEST_SCHEMA_VERSION as f64)),
            ("trace_id", Value::Str(self.trace_id.clone())),
            ("build", build_info_value()),
            ("command", Value::Str(self.command.clone())),
            ("model", Value::Str(self.model.clone())),
            ("prior", Value::Str(self.prior.clone())),
            ("seed", Value::Num(self.seed as f64)),
            ("dataset_hash", Value::Str(self.dataset_hash.clone())),
            (
                "mcmc",
                Value::obj(vec![
                    ("chains", Value::Num(self.chains as f64)),
                    ("burn_in", Value::Num(self.burn_in as f64)),
                    ("samples", Value::Num(self.samples as f64)),
                    ("thin", Value::Num(self.thin as f64)),
                    ("threads", Value::Num(self.threads as f64)),
                ]),
            ),
            (
                "phases",
                Value::Arr(
                    self.phases
                        .iter()
                        .map(|(name, ms)| {
                            Value::obj(vec![
                                ("phase", Value::Str(name.clone())),
                                ("wall_ms", Value::Num(*ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("draws_per_sec", Value::Num(self.draws_per_sec)),
            (
                "chains_report",
                Value::Arr(
                    self.chain_reports
                        .iter()
                        .map(|c| {
                            Value::obj(vec![
                                ("chain", Value::Num(c.chain as f64)),
                                ("recovered", Value::Bool(c.recovered)),
                                ("retries", Value::Num(c.retries as f64)),
                                (
                                    "fault",
                                    c.fault
                                        .as_ref()
                                        .map_or(Value::Null, |k| Value::Str(k.clone())),
                                ),
                                ("wall_ms", Value::Num(c.wall_ms)),
                                (
                                    "accept",
                                    Value::Arr(
                                        c.accept
                                            .iter()
                                            .map(|a| {
                                                Value::obj(vec![
                                                    ("parameter", Value::Str(a.parameter.clone())),
                                                    ("steps", Value::Num(a.steps as f64)),
                                                    ("accepted", Value::Num(a.accepted as f64)),
                                                    ("rate", Value::Num(a.rate())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fault_counters",
                Value::Obj(
                    self.fault_counters
                        .iter()
                        .map(|(kind, n)| (kind.clone(), Value::Num(*n as f64)))
                        .collect(),
                ),
            ),
            ("retries_total", Value::Num(self.retries_total as f64)),
            ("faults_injected", Value::Num(self.faults_injected as f64)),
            (
                "diagnostics",
                Value::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Value::obj(vec![
                                ("parameter", Value::Str(d.parameter.clone())),
                                ("psrf", Value::Num(d.psrf)),
                                ("geweke_z", Value::Num(d.geweke_z)),
                                ("ess", Value::Num(d.ess)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("converged", self.converged.map_or(Value::Null, Value::Bool)),
            ("waic", self.waic.map_or(Value::Null, Value::Num)),
            (
                "checkpoints",
                Value::obj(vec![
                    ("seen", Value::Num(self.checkpoints_seen as f64)),
                    (
                        "summary",
                        Value::Arr(
                            self.checkpoint_summary
                                .iter()
                                .map(AggregateDiagnostic::to_value)
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Writes the manifest (pretty-printed) to `path`.
    pub fn write(&self, path: &str) -> io::Result<()> {
        std::fs::write(path, self.to_value().to_json_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn dataset_hash_depends_on_counts_and_order() {
        let a = dataset_hash(&[1, 2, 3]);
        let b = dataset_hash(&[3, 2, 1]);
        let c = dataset_hash(&[1, 2, 3]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = RunManifest {
            command: "fit".into(),
            trace_id: "00000000000000000000000000abcdef".into(),
            model: "model2".into(),
            prior: "poisson".into(),
            seed: 42,
            dataset_hash: dataset_hash(&[5, 3, 1]),
            chains: 4,
            burn_in: 100,
            samples: 200,
            thin: 2,
            threads: 4,
            phases: vec![("sampling".into(), 12.0), ("waic".into(), 3.0)],
            draws_per_sec: 6500.0,
            chain_reports: vec![ManifestChain {
                chain: 0,
                recovered: true,
                retries: 1,
                fault: Some("nan-rate".into()),
                wall_ms: 11.25,
                accept: vec![AcceptStat {
                    parameter: "zeta0".into(),
                    steps: 300,
                    accepted: 120,
                }],
            }],
            fault_counters: vec![("nan-rate".into(), 1)],
            retries_total: 1,
            faults_injected: 1,
            diagnostics: vec![DiagnosticStat {
                parameter: "residual".into(),
                psrf: 1.01,
                geweke_z: 0.2,
                ess: 900.0,
            }],
            converged: Some(true),
            waic: Some(210.7),
            checkpoints_seen: 8,
            checkpoint_summary: vec![AggregateDiagnostic {
                parameter: "residual".into(),
                mean: 4.5,
                rhat: 1.02,
                split_rhat: 1.03,
                ess: 750.0,
                mcse: 0.04,
                ess_per_sec: 620.0,
            }],
        };
        let doc = parse(&manifest.to_value().to_json_pretty()).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64(),
            Some(MANIFEST_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            doc.get("trace_id").unwrap().as_str(),
            Some("00000000000000000000000000abcdef")
        );
        let build = doc.get("build").unwrap();
        assert_eq!(
            build.get("crate_version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            build.get("schema_version").unwrap().as_f64(),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            build.get("manifest_schema_version").unwrap().as_f64(),
            Some(MANIFEST_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            build.get("event_schema_version").unwrap().as_f64(),
            Some(EVENT_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            doc.get("mcmc").unwrap().get("chains").unwrap().as_f64(),
            Some(4.0)
        );
        assert_eq!(
            doc.get("mcmc").unwrap().get("threads").unwrap().as_f64(),
            Some(4.0)
        );
        let chains = doc.get("chains_report").unwrap().as_arr().unwrap();
        assert_eq!(chains[0].get("fault").unwrap().as_str(), Some("nan-rate"));
        assert_eq!(chains[0].get("wall_ms").unwrap().as_f64(), Some(11.25));
        let accept = chains[0].get("accept").unwrap().as_arr().unwrap();
        assert_eq!(accept[0].get("rate").unwrap().as_f64(), Some(0.4));
        assert_eq!(
            doc.get("fault_counters")
                .unwrap()
                .get("nan-rate")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(doc.get("converged").unwrap(), &Value::Bool(true));
        let checkpoints = doc.get("checkpoints").unwrap();
        assert_eq!(checkpoints.get("seen").unwrap().as_f64(), Some(8.0));
        let summary = checkpoints.get("summary").unwrap().as_arr().unwrap();
        assert_eq!(
            summary[0].get("parameter").unwrap().as_str(),
            Some("residual")
        );
        assert_eq!(summary[0].get("rhat").unwrap().as_f64(), Some(1.02));
        assert_eq!(summary[0].get("ess").unwrap().as_f64(), Some(750.0));
    }

    #[test]
    fn default_manifest_serialises_with_nulls() {
        let doc = parse(&RunManifest::default().to_value().to_json()).unwrap();
        assert_eq!(doc.get("waic").unwrap(), &Value::Null);
        assert_eq!(doc.get("converged").unwrap(), &Value::Null);
        assert_eq!(doc.get("phases").unwrap().as_arr().unwrap().len(), 0);
    }
}
