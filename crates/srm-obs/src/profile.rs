//! A dependency-free hierarchical span profiler.
//!
//! The [`Recorder`](crate::Recorder) layer answers *what happened*
//! (typed events, streamed); this module answers *where the time
//! went* (aggregates, collected). A [`Profiler`] is a shared sink of
//! per-phase statistics; code under measurement opens RAII
//! [`Span`]s named after the phase they time. Spans nest — a span
//! opened while another is running becomes its child, and the
//! aggregate is keyed by the full `/`-joined path
//! (`chain/sweep/likelihood/suffstats`), so the report separates a
//! sufficient-statistics probe made during a likelihood evaluation
//! from one made directly by the sweep.
//!
//! ## The overhead contract
//!
//! * **Inert when uninstalled.** [`span`] consults one thread-local;
//!   with no profiler installed on the thread it returns an inert
//!   guard without reading the clock. Hot loops can therefore keep
//!   their spans unconditionally.
//! * **Lock-free when installed.** Each thread accumulates into
//!   thread-local arrays (interned by `(parent, name)`); the shared
//!   [`Profiler`] mutex is touched only when the [`InstallGuard`]
//!   drops and flushes the thread's totals.
//! * **Never perturbs the run.** The profiler reads clocks and
//!   counters only — it has no access to any RNG and no channel back
//!   into the sampler, so draws are bit-identical profiler on or off
//!   (asserted by the property suite).
//!
//! ## Installing
//!
//! A profiler is *installed* on a thread for a scope:
//!
//! ```
//! use std::sync::Arc;
//! use srm_obs::profile::{self, Profiler};
//!
//! let profiler = Arc::new(Profiler::new());
//! {
//!     let _guard = profile::install(Some(&profiler));
//!     let _outer = profile::span("sweep");
//!     {
//!         let _inner = profile::span("likelihood");
//!     }
//! } // guard drop flushes this thread's aggregates
//! let snapshot = profiler.snapshot();
//! let paths: Vec<&str> = snapshot.iter().map(|p| p.path.as_str()).collect();
//! assert_eq!(paths, ["sweep", "sweep/likelihood"]);
//! ```
//!
//! Worker pools install the same `Arc<Profiler>` on every worker;
//! cross-thread durations that cannot be expressed as a scope (queue
//! wait, say) go in directly via [`Profiler::record_ns`].

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Value;

/// Number of log₂ duration buckets per phase: bucket 0 holds 0 ns,
/// bucket `k ≥ 1` holds durations in `[2^(k−1), 2^k)` ns, and the
/// last bucket absorbs everything from `2^(HIST_BUCKETS−2)` ns
/// (≈ 1.07 s) up.
pub const HIST_BUCKETS: usize = 32;

/// Index of the log₂ bucket for a duration in nanoseconds.
///
/// `0 → 0`, `1 → 1`, `[2,4) → 2`, … each power of two starts a new
/// bucket until the terminal catch-all at `HIST_BUCKETS − 1`.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Per-phase running aggregate (one per `(parent, name)` node).
#[derive(Debug, Clone)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    child_ns: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Agg {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            child_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Agg {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    fn merge(&mut self, other: &Agg) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.child_ns = self.child_ns.saturating_add(other.child_ns);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// One phase's aggregate in a [`Profiler::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSnapshot {
    /// `/`-joined span path, e.g. `chain/sweep/likelihood`.
    pub path: String,
    /// Spans recorded under this path.
    pub count: u64,
    /// Total wall time inside the span, nanoseconds (includes
    /// children).
    pub total_ns: u64,
    /// Total wall time minus time attributed to child spans,
    /// nanoseconds.
    pub self_ns: u64,
    /// Shortest single span, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Log₂ duration histogram; see [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl PhaseSnapshot {
    /// Serialises to the JSON shape used inside the `profile` trace
    /// event (histogram buckets trimmed of trailing zeros).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let trimmed = self
            .buckets
            .iter()
            .rposition(|&b| b > 0)
            .map_or(0, |i| i + 1);
        Value::obj(vec![
            ("path", Value::Str(self.path.clone())),
            ("count", Value::Num(self.count as f64)),
            ("total_ns", Value::Num(self.total_ns as f64)),
            ("self_ns", Value::Num(self.self_ns as f64)),
            ("min_ns", Value::Num(self.min_ns as f64)),
            ("max_ns", Value::Num(self.max_ns as f64)),
            (
                "buckets",
                Value::Arr(
                    self.buckets[..trimmed]
                        .iter()
                        .map(|&b| Value::Num(b as f64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the shape written by [`PhaseSnapshot::to_value`];
    /// `None` when a field is missing or mistyped.
    #[must_use]
    pub fn from_value(value: &Value) -> Option<Self> {
        let num = |field: &str| value.get(field).and_then(Value::as_f64);
        let mut buckets = vec![0u64; HIST_BUCKETS];
        if let Some(arr) = value.get("buckets").and_then(Value::as_arr) {
            if arr.len() > HIST_BUCKETS {
                return None;
            }
            for (slot, v) in buckets.iter_mut().zip(arr) {
                *slot = v.as_f64()? as u64;
            }
        }
        Some(Self {
            path: value.get("path")?.as_str()?.to_owned(),
            count: num("count")? as u64,
            total_ns: num("total_ns")? as u64,
            self_ns: num("self_ns")? as u64,
            min_ns: num("min_ns")? as u64,
            max_ns: num("max_ns")? as u64,
            buckets,
        })
    }
}

/// One directly-recorded interval retained for correlation: which
/// trace id spent `ns` under `path`. See [`Profiler::recent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedInterval {
    /// `/`-joined phase path, e.g. `serve/queue-wait`.
    pub path: String,
    /// Duration in nanoseconds.
    pub ns: u64,
    /// Correlation id of the request that spent the time.
    pub trace_id: String,
}

impl TracedInterval {
    /// Serialises to the JSON shape used by `/v1/debug/profile`.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("path", Value::Str(self.path.clone())),
            ("ns", Value::Num(self.ns as f64)),
            ("trace_id", Value::Str(self.trace_id.clone())),
        ])
    }
}

/// How many traced intervals a profiler retains (newest win).
pub const RECENT_INTERVALS: usize = 128;

/// A shared sink of per-phase timing aggregates.
///
/// Cheap to share (`Arc`), safe from any thread. See the module docs
/// for the install/span protocol.
#[derive(Debug, Default)]
pub struct Profiler {
    merged: Mutex<BTreeMap<String, Agg>>,
    recent: Mutex<Vec<TracedInterval>>,
}

impl Profiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration directly under `path`, bypassing the
    /// thread-local span stack — for cross-thread phases (queue
    /// wait) where no single scope contains the interval. Takes the
    /// shared lock; not for per-sweep hot paths.
    pub fn record_ns(&self, path: &str, ns: u64) {
        self.record_ns_for(path, ns, None);
    }

    /// Like [`Profiler::record_ns`], additionally retaining the
    /// interval in a bounded recent-intervals ring keyed by the
    /// request's correlation id (surfaced by `/v1/debug/profile`).
    pub fn record_ns_for(&self, path: &str, ns: u64, trace_id: Option<&str>) {
        {
            let mut merged = lock_ignoring_poison(&self.merged);
            merged.entry(path.to_owned()).or_default().observe(ns);
        }
        if let Some(trace_id) = trace_id {
            let mut recent = lock_ignoring_poison(&self.recent);
            if recent.len() >= RECENT_INTERVALS {
                recent.remove(0);
            }
            recent.push(TracedInterval {
                path: path.to_owned(),
                ns,
                trace_id: trace_id.to_owned(),
            });
        }
    }

    /// The retained traced intervals, oldest first (bounded at
    /// [`RECENT_INTERVALS`]).
    #[must_use]
    pub fn recent(&self) -> Vec<TracedInterval> {
        lock_ignoring_poison(&self.recent).clone()
    }

    /// The current aggregates, sorted by path.
    #[must_use]
    pub fn snapshot(&self) -> Vec<PhaseSnapshot> {
        let merged = lock_ignoring_poison(&self.merged);
        merged
            .iter()
            .map(|(path, agg)| PhaseSnapshot {
                path: path.clone(),
                count: agg.count,
                total_ns: agg.total_ns,
                self_ns: agg.total_ns.saturating_sub(agg.child_ns),
                min_ns: if agg.count == 0 { 0 } else { agg.min_ns },
                max_ns: agg.max_ns,
                buckets: agg.buckets.to_vec(),
            })
            .collect()
    }

    fn absorb(&self, paths: Vec<(String, Agg)>) {
        let mut merged = lock_ignoring_poison(&self.merged);
        for (path, agg) in paths {
            merged.entry(path).or_default().merge(&agg);
        }
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One interned span node in a thread's local tree.
#[derive(Debug)]
struct Node {
    parent: usize,
    name: &'static str,
    agg: Agg,
}

/// Sentinel parent index for root spans.
const ROOT: usize = usize::MAX;

#[derive(Debug)]
struct ThreadState {
    profiler: Arc<Profiler>,
    nodes: Vec<Node>,
    index: HashMap<(usize, &'static str), usize>,
    stack: Vec<usize>,
}

impl ThreadState {
    fn flush_into_profiler(self) {
        let mut paths: Vec<(String, Agg)> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            if node.agg.count == 0 && node.agg.child_ns == 0 {
                continue;
            }
            let mut segments = vec![node.name];
            let mut cursor = node.parent;
            while cursor != ROOT {
                segments.push(self.nodes[cursor].name);
                cursor = self.nodes[cursor].parent;
            }
            segments.reverse();
            paths.push((segments.join("/"), node.agg.clone()));
        }
        self.profiler.absorb(paths);
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Installs `profiler` on the current thread for the guard's
/// lifetime; spans opened on this thread accumulate into it.
///
/// `None` (or a thread that already has a profiler installed — the
/// outer installation wins) yields an inert guard. Dropping the
/// guard flushes the thread's aggregates into the profiler.
#[must_use]
pub fn install(profiler: Option<&Arc<Profiler>>) -> InstallGuard {
    let Some(profiler) = profiler else {
        return InstallGuard { installed: false };
    };
    ACTIVE.with(|active| {
        let mut slot = active.borrow_mut();
        if slot.is_some() {
            return InstallGuard { installed: false };
        }
        *slot = Some(ThreadState {
            profiler: Arc::clone(profiler),
            nodes: Vec::new(),
            index: HashMap::new(),
            stack: Vec::new(),
        });
        InstallGuard { installed: true }
    })
}

/// The profiler currently installed on this thread, if any — lets
/// nested layers (the MCMC runner inside a serve job, say) hand the
/// same sink to worker threads of their own.
#[must_use]
pub fn current() -> Option<Arc<Profiler>> {
    ACTIVE.with(|active| {
        active
            .borrow()
            .as_ref()
            .map(|state| Arc::clone(&state.profiler))
    })
}

/// RAII handle for a thread-local profiler installation; see
/// [`install`].
#[derive(Debug)]
pub struct InstallGuard {
    installed: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        if let Some(state) = ACTIVE.with(|active| active.borrow_mut().take()) {
            state.flush_into_profiler();
        }
    }
}

/// Opens a phase span on the current thread; the phase ends when the
/// returned guard drops. Inert (no clock read) when no profiler is
/// installed. `name` becomes one segment of the aggregate's path.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    let node = ACTIVE.with(|active| {
        let mut slot = active.borrow_mut();
        let state = slot.as_mut()?;
        let parent = state.stack.last().copied().unwrap_or(ROOT);
        let node = match state.index.get(&(parent, name)) {
            Some(&node) => node,
            None => {
                let node = state.nodes.len();
                state.nodes.push(Node {
                    parent,
                    name,
                    agg: Agg::default(),
                });
                state.index.insert((parent, name), node);
                node
            }
        };
        state.stack.push(node);
        Some(node)
    });
    match node {
        Some(node) => SpanGuard {
            started: Some(Instant::now()),
            node,
        },
        None => SpanGuard {
            started: None,
            node: 0,
        },
    }
}

/// RAII guard returned by [`span`]; records the elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    started: Option<Instant>,
    node: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ACTIVE.with(|active| {
            let mut slot = active.borrow_mut();
            // The uninstall guard may have flushed already (a span
            // outliving its installation): drop the measurement.
            let Some(state) = slot.as_mut() else { return };
            if state.stack.last() == Some(&self.node) {
                state.stack.pop();
            }
            let parent = state.nodes[self.node].parent;
            state.nodes[self.node].agg.observe(ns);
            if parent != ROOT {
                state.nodes[parent].agg.child_ns =
                    state.nodes[parent].agg.child_ns.saturating_add(ns);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for k in 1..=30usize {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge - 1), k, "below edge 2^{k}");
            assert_eq!(
                bucket_index(edge).min(HIST_BUCKETS - 1),
                (k + 1).min(HIST_BUCKETS - 1)
            );
        }
        // Everything from ~1.07 s up lands in the terminal bucket.
        assert_eq!(bucket_index(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_land_in_expected_buckets() {
        let mut agg = Agg::default();
        for ns in [0u64, 1, 2, 3, 1024, u64::MAX] {
            agg.observe(ns);
        }
        assert_eq!(agg.buckets[0], 1); // 0
        assert_eq!(agg.buckets[1], 1); // 1
        assert_eq!(agg.buckets[2], 2); // 2, 3
        assert_eq!(agg.buckets[11], 1); // 1024 = 2^10 → bucket 11
        assert_eq!(agg.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(agg.count, 6);
        assert_eq!(agg.min_ns, 0);
        assert_eq!(agg.max_ns, u64::MAX);
    }

    #[test]
    fn span_without_install_is_inert() {
        let guard = span("orphan");
        assert!(guard.started.is_none());
        drop(guard);
    }

    #[test]
    fn spans_nest_into_slash_joined_paths() {
        let profiler = Arc::new(Profiler::new());
        {
            let _guard = install(Some(&profiler));
            for _ in 0..3 {
                let _sweep = span("sweep");
                {
                    let _lik = span("likelihood");
                    let _probe = span("suffstats");
                }
                let _probe = span("suffstats");
            }
        }
        let snapshot = profiler.snapshot();
        let paths: Vec<&str> = snapshot.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "sweep",
                "sweep/likelihood",
                "sweep/likelihood/suffstats",
                "sweep/suffstats"
            ]
        );
        for phase in &snapshot {
            assert_eq!(phase.count, 3, "{}", phase.path);
            assert!(phase.min_ns <= phase.max_ns);
            assert_eq!(phase.buckets.iter().sum::<u64>(), 3);
        }
        // A parent's self time excludes its children.
        let sweep = &snapshot[0];
        let lik = &snapshot[1];
        assert!(sweep.self_ns <= sweep.total_ns);
        assert!(lik.total_ns <= sweep.total_ns);
    }

    #[test]
    fn same_phase_on_two_threads_merges() {
        let profiler = Arc::new(Profiler::new());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _guard = install(Some(&profiler));
                    for _ in 0..5 {
                        let _s = span("work");
                    }
                });
            }
        });
        let snapshot = profiler.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].path, "work");
        assert_eq!(snapshot[0].count, 10);
    }

    #[test]
    fn nested_install_is_inert_and_outer_wins() {
        let outer = Arc::new(Profiler::new());
        let inner = Arc::new(Profiler::new());
        {
            let _a = install(Some(&outer));
            {
                let _b = install(Some(&inner));
                let _s = span("phase");
            }
            // The inner guard must not have flushed or uninstalled.
            assert!(current().is_some());
            let _s = span("phase");
        }
        assert_eq!(outer.snapshot()[0].count, 2);
        assert!(inner.snapshot().is_empty());
    }

    #[test]
    fn record_ns_feeds_cross_thread_phases() {
        let profiler = Profiler::new();
        profiler.record_ns("queue-wait", 1_000);
        profiler.record_ns("queue-wait", 3_000);
        let snapshot = profiler.snapshot();
        assert_eq!(snapshot[0].path, "queue-wait");
        assert_eq!(snapshot[0].count, 2);
        assert_eq!(snapshot[0].total_ns, 4_000);
        assert_eq!(snapshot[0].min_ns, 1_000);
        assert_eq!(snapshot[0].max_ns, 3_000);
    }

    #[test]
    fn record_ns_for_retains_a_bounded_traced_ring() {
        let profiler = Profiler::new();
        profiler.record_ns_for("serve/engine", 10, Some("aaaa"));
        profiler.record_ns("serve/engine", 20); // untagged: aggregate only
        for i in 0..RECENT_INTERVALS {
            profiler.record_ns_for("serve/queue-wait", i as u64, Some("bbbb"));
        }
        let recent = profiler.recent();
        assert_eq!(recent.len(), RECENT_INTERVALS);
        // The oldest ("aaaa") interval was evicted by the flood.
        assert!(recent.iter().all(|i| i.trace_id == "bbbb"));
        let value = recent[0].to_value();
        assert_eq!(value.get("trace_id").unwrap().as_str(), Some("bbbb"));
        assert_eq!(
            value.get("path").unwrap().as_str(),
            Some("serve/queue-wait")
        );
        // Aggregates saw both the tagged and untagged observations.
        let snapshot = profiler.snapshot();
        let engine = snapshot.iter().find(|p| p.path == "serve/engine").unwrap();
        assert_eq!(engine.count, 2);
    }

    #[test]
    fn phase_snapshot_round_trips_through_json() {
        let profiler = Arc::new(Profiler::new());
        {
            let _guard = install(Some(&profiler));
            let _outer = span("fit");
            let _inner = span("serialize");
        }
        for phase in profiler.snapshot() {
            let value = phase.to_value();
            let parsed = PhaseSnapshot::from_value(&value).unwrap();
            assert_eq!(parsed, phase);
        }
    }

    #[test]
    fn current_returns_installed_profiler() {
        assert!(current().is_none());
        let profiler = Arc::new(Profiler::new());
        let _guard = install(Some(&profiler));
        assert!(Arc::ptr_eq(&current().unwrap(), &profiler));
    }
}
