//! The [`Recorder`] trait and its composition/measurement primitives.
//!
//! Instrumented code holds a `&dyn Recorder` and asks it two things:
//! whether anything is listening (`enabled()`, hoisted to a local
//! `bool` before hot loops so the disabled path costs one predictable
//! branch), and at what sweep granularity per-sweep events are wanted
//! (`sweep_stride()`, so a trace sink can ask for every 32nd sweep
//! while a progress sink samples every sweep). Recorders never touch
//! the sampler's RNG — instrumentation cannot perturb a run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::Event;

/// A consumer of trace [`Event`]s.
///
/// Implementations must be `Send + Sync`: the multi-chain runner emits
/// from scoped worker threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder consumes events at all. Instrumented
    /// loops hoist this into a local and skip event construction
    /// entirely when it is `false`.
    fn enabled(&self) -> bool;

    /// Granularity for per-sweep events: emit `SweepStart`/`SweepEnd`
    /// (and stride-sampled `Metropolis` decisions) every `n`-th sweep.
    /// `usize::MAX` means "no per-sweep events, thanks".
    fn sweep_stride(&self) -> usize {
        usize::MAX
    }

    /// Consumes one event.
    fn record(&self, event: &Event);
}

/// The do-nothing default recorder; `enabled()` is `false`, so
/// instrumented code never even constructs events for it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// A shared no-op instance for default arguments.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Fans events out to several recorders.
pub struct Tee {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Tee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Tee {
    /// Builds a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for Tee {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn sweep_stride(&self) -> usize {
        // The finest granularity any sink wants; sinks re-filter by
        // their own stride on receipt.
        self.sinks
            .iter()
            .filter(|s| s.enabled())
            .map(|s| s.sweep_stride())
            .min()
            .unwrap_or(usize::MAX)
    }

    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(event);
            }
        }
    }
}

/// An RAII span timer: emits `PhaseStart` on creation and `PhaseEnd`
/// with the measured wall time on drop (or [`Span::end`]).
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    phase: &'static str,
    started: Instant,
    live: bool,
}

impl<'a> Span<'a> {
    /// Opens a span for `phase` on `recorder`.
    pub fn enter(recorder: &'a dyn Recorder, phase: &'static str) -> Self {
        if recorder.enabled() {
            recorder.record(&Event::PhaseStart { phase });
        }
        Self {
            recorder,
            phase,
            started: Instant::now(),
            live: true,
        }
    }

    /// Elapsed wall time since the span opened, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Ends the span early, returning the elapsed milliseconds.
    pub fn end(mut self) -> f64 {
        self.finish();
        self.started.elapsed().as_secs_f64() * 1e3
    }

    fn finish(&mut self) {
        if self.live {
            self.live = false;
            if self.recorder.enabled() {
                self.recorder.record(&Event::PhaseEnd {
                    phase: self.phase,
                    wall_ms: self.elapsed_ms(),
                });
            }
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("phase", &self.phase).finish()
    }
}

/// A monotonic counter, safe to bump from worker threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Bucket upper bounds are fixed at construction; observations above
/// the last bound land in an implicit overflow bucket. Buckets are
/// **right-closed** (Prometheus `le` semantics): a value exactly equal
/// to a bound lands in the bucket that bound labels, so `observe(1.0)`
/// with bounds `[1.0, 10.0]` counts in the `le=1.0` bucket. Non-finite
/// observations (NaN, ±∞) count in the overflow bucket and are
/// excluded from the running sum. Recording is lock-free (atomic
/// bumps), so worker threads can share one instance.
#[derive(Debug)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    sum_millis: AtomicU64,
}

impl FixedHistogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.to_vec(),
            buckets,
            sum_millis: AtomicU64::new(0),
        }
    }

    /// Exponential bounds `base·growth^k` for `k in 0..n`.
    pub fn exponential(base: f64, growth: f64, n: usize) -> Self {
        let bounds: Vec<f64> = (0..n).map(|k| base * growth.powi(k as i32)).collect();
        Self::new(&bounds)
    }

    /// Records one observation. Boundary values land in the bucket
    /// whose upper bound equals them (right-closed buckets); NaN and
    /// ±∞ land in the overflow bucket and do not contribute to the
    /// sum.
    pub fn observe(&self, value: f64) {
        if !value.is_finite() {
            self.buckets[self.bounds.len()].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Track the sum in thousandths so `mean` stays available
        // without floating-point atomics.
        let scaled = (value * 1e3).clamp(0.0, u64::MAX as f64 / 2.0) as u64;
        self.sum_millis.fetch_add(scaled, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean of the recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Sum of the recorded observations (thousandth-resolution, as
    /// tracked internally) — the `_sum` series of a Prometheus
    /// histogram exposition.
    pub fn sum(&self) -> f64 {
        self.sum_millis.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Snapshot of `(upper_bound, count)` pairs; the final entry uses
    /// `f64::INFINITY` for the overflow bucket.
    pub fn snapshot(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture {
        events: Mutex<Vec<Event>>,
        stride: usize,
    }

    impl Recorder for Capture {
        fn enabled(&self) -> bool {
            true
        }

        fn sweep_stride(&self) -> usize {
            if self.stride == 0 {
                usize::MAX
            } else {
                self.stride
            }
        }

        fn record(&self, event: &Event) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn noop_is_disabled_and_strideless() {
        assert!(!NoopRecorder.enabled());
        assert_eq!(NoopRecorder.sweep_stride(), usize::MAX);
        NoopRecorder.record(&Event::PhaseStart { phase: "x" }); // must not panic
    }

    #[test]
    fn span_emits_matched_phase_events() {
        let cap = Capture::default();
        {
            let _span = Span::enter(&cap, "sampling");
        }
        let events = cap.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::PhaseStart { phase: "sampling" }));
        match &events[1] {
            Event::PhaseEnd { phase, wall_ms } => {
                assert_eq!(*phase, "sampling");
                assert!(*wall_ms >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_end_returns_elapsed_once() {
        let cap = Capture::default();
        let span = Span::enter(&cap, "waic");
        let ms = span.end();
        assert!(ms >= 0.0);
        assert_eq!(cap.events.lock().unwrap().len(), 2);
    }

    #[test]
    fn tee_takes_finest_stride_and_fans_out() {
        let a = Arc::new(Capture {
            stride: 32,
            ..Default::default()
        });
        let b = Arc::new(Capture {
            stride: 1,
            ..Default::default()
        });
        let tee = Tee::new(vec![a.clone(), b.clone()]);
        assert!(tee.enabled());
        assert_eq!(tee.sweep_stride(), 1);
        tee.record(&Event::PhaseStart { phase: "p" });
        assert_eq!(a.events.lock().unwrap().len(), 1);
        assert_eq!(b.events.lock().unwrap().len(), 1);
    }

    #[test]
    fn tee_of_disabled_sinks_is_disabled() {
        let tee = Tee::new(vec![Arc::new(NoopRecorder) as Arc<dyn Recorder>]);
        assert!(!tee.enabled());
        assert_eq!(tee.sweep_stride(), usize::MAX);
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = FixedHistogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 0.2] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0], (1.0, 2));
        assert_eq!(snap[1], (10.0, 1));
        assert_eq!(snap[2], (100.0, 1));
        assert_eq!(snap[3].1, 1);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 111.14).abs() < 0.01);
    }

    #[test]
    fn histogram_boundary_values_land_in_their_own_bucket() {
        // Right-closed buckets: a value equal to a bound belongs to
        // the bucket that bound labels (Prometheus `le` semantics).
        let h = FixedHistogram::new(&[1.0, 10.0, 100.0]);
        h.observe(1.0);
        h.observe(10.0);
        h.observe(100.0);
        let snap = h.snapshot();
        assert_eq!(snap[0], (1.0, 1));
        assert_eq!(snap[1], (10.0, 1));
        assert_eq!(snap[2], (100.0, 1));
        assert_eq!(snap[3].1, 0);
        // Just above a bound spills into the next bucket.
        h.observe(1.0000001);
        assert_eq!(h.snapshot()[1].1, 2);
    }

    #[test]
    fn histogram_routes_non_finite_to_overflow_without_poisoning_sum() {
        let h = FixedHistogram::new(&[1.0, 10.0]);
        h.observe(5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        let snap = h.snapshot();
        assert_eq!(snap[0].1, 0);
        assert_eq!(snap[1].1, 1);
        assert_eq!(snap[2].1, 3, "non-finite values count as overflow");
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.0).abs() < 1e-9);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn exponential_bounds_grow_geometrically() {
        let h = FixedHistogram::exponential(1.0, 10.0, 3);
        let snap = h.snapshot();
        assert_eq!(snap[0].0, 1.0);
        assert_eq!(snap[1].0, 10.0);
        assert_eq!(snap[2].0, 100.0);
    }
}
