//! Concrete event sinks: the JSONL trace writer and the human
//! progress reporter.
//!
//! Both are best-effort: I/O errors while tracing never fail the run
//! (the trace is an observation of the computation, not part of it).

use std::io::{self, BufWriter, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::event::Event;
use crate::json::Value;
use crate::recorder::Recorder;

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Appends one JSON object per event to a writer (`--trace-out`).
///
/// Each record is the event's [`Event::to_value`] payload plus a
/// `"trace_id"` field (the correlation id, schema v7) and an `"ms"`
/// field: milliseconds since the sink was created.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    started: Instant,
    stride: usize,
    trace_id: String,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("stride", &self.stride)
            .finish()
    }
}

impl JsonlSink {
    /// Default per-sweep sampling stride: every 32nd sweep. Faults,
    /// retries, injections and chain/phase events are never strided.
    pub const DEFAULT_SWEEP_STRIDE: usize = 32;

    /// A sink writing to (truncating) the file at `path`.
    pub fn create(path: &str) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// A sink writing to an arbitrary writer (used by tests).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
            started: Instant::now(),
            stride: Self::DEFAULT_SWEEP_STRIDE,
            trace_id: crate::trace_id::process_trace_id().to_hex(),
        }
    }

    /// Overrides the per-sweep sampling stride.
    pub fn with_sweep_stride(mut self, stride: usize) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Overrides the correlation id stamped on every line (defaults to
    /// the process-wide id).
    pub fn with_trace_id(mut self, trace_id: &str) -> Self {
        self.trace_id = trace_id.to_string();
        self
    }

    /// Flushes buffered records.
    pub fn flush(&self) -> io::Result<()> {
        lock_ignoring_poison(&self.out).flush()
    }

    fn wants(&self, event: &Event) -> bool {
        match event {
            Event::SweepStart { sweep, .. }
            | Event::SweepEnd { sweep, .. }
            | Event::Metropolis { sweep, .. } => sweep % self.stride == 0,
            _ => true,
        }
    }
}

impl Recorder for JsonlSink {
    fn enabled(&self) -> bool {
        true
    }

    fn sweep_stride(&self) -> usize {
        self.stride
    }

    fn record(&self, event: &Event) {
        if !self.wants(event) {
            return;
        }
        let mut value = event.to_value();
        if let Value::Obj(pairs) = &mut value {
            pairs.insert(
                1,
                ("trace_id".to_string(), Value::Str(self.trace_id.clone())),
            );
            pairs.insert(
                2,
                (
                    "ms".to_string(),
                    Value::Num(self.started.elapsed().as_secs_f64() * 1e3),
                ),
            );
        }
        let mut out = lock_ignoring_poison(&self.out);
        let _ = writeln!(out, "{}", value.to_json());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Human-readable progress lines on a writer (stderr by default).
///
/// Per-chain sweep progress is throttled to at most one line per
/// chain per `min_interval`; faults, retries, contained panics and
/// cell failures always print. `verbosity` gates the chattier lines:
/// 0 prints only warnings, 1 adds progress and phase summaries, 2
/// adds per-cell and per-chain completion lines.
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
    last_line: Mutex<Vec<(usize, Instant)>>,
    min_interval: Duration,
    verbosity: u8,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("verbosity", &self.verbosity)
            .finish()
    }
}

impl ProgressSink {
    /// A sink printing to stderr at the given verbosity.
    pub fn stderr(verbosity: u8) -> Self {
        Self::to_writer(Box::new(io::stderr()), verbosity)
    }

    /// A sink printing to an arbitrary writer (used by tests).
    pub fn to_writer(out: Box<dyn Write + Send>, verbosity: u8) -> Self {
        Self {
            out: Mutex::new(out),
            last_line: Mutex::new(Vec::new()),
            min_interval: Duration::from_millis(200),
            verbosity,
        }
    }

    /// Overrides the per-chain throttle interval (tests use zero).
    pub fn with_min_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    fn due(&self, chain: usize) -> bool {
        let mut last = lock_ignoring_poison(&self.last_line);
        let now = Instant::now();
        match last.iter_mut().find(|(c, _)| *c == chain) {
            Some((_, at)) if now.duration_since(*at) < self.min_interval => false,
            Some((_, at)) => {
                *at = now;
                true
            }
            None => {
                last.push((chain, now));
                true
            }
        }
    }

    fn say(&self, line: &str) {
        let mut out = lock_ignoring_poison(&self.out);
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl Recorder for ProgressSink {
    fn enabled(&self) -> bool {
        true
    }

    fn sweep_stride(&self) -> usize {
        // Time-based throttling needs to see sweeps frequently; the
        // throttle keeps output volume bounded regardless.
        1
    }

    fn record(&self, event: &Event) {
        match event {
            Event::SweepEnd {
                chain,
                sweep,
                total,
                kept,
            } if self.verbosity >= 1 && self.due(*chain) => {
                let pct = if *total == 0 {
                    100.0
                } else {
                    100.0 * (*sweep + 1) as f64 / *total as f64
                };
                self.say(&format!(
                    "chain {chain}: sweep {}/{total} ({pct:.0}%), {kept} draws kept",
                    sweep + 1
                ));
            }
            Event::PhaseEnd { phase, wall_ms } if self.verbosity >= 1 => {
                self.say(&format!("phase {phase}: {:.1} ms", wall_ms));
            }
            Event::SweepFault {
                chain, sweep, kind, ..
            } => {
                self.say(&format!("chain {chain}: sweep {sweep} faulted ({kind})"));
            }
            Event::Retry {
                chain,
                sweep,
                retries,
            } => {
                self.say(&format!(
                    "chain {chain}: retrying sweep {sweep} (retry #{retries})"
                ));
            }
            Event::FaultInjected { chain, sweep, kind } => {
                self.say(&format!(
                    "chain {chain}: injected {kind} fault at sweep {sweep}"
                ));
            }
            Event::ChainPanicked { chain, detail } => {
                self.say(&format!("chain {chain}: contained panic: {detail}"));
            }
            Event::ChainDone {
                chain,
                retries,
                accept,
            } if self.verbosity >= 2 => {
                let rates: Vec<String> = accept
                    .iter()
                    .map(|a| format!("{} {:.0}%", a.parameter, 100.0 * a.rate()))
                    .collect();
                self.say(&format!(
                    "chain {chain}: done ({retries} retries; accept: {})",
                    if rates.is_empty() {
                        "n/a".to_string()
                    } else {
                        rates.join(", ")
                    }
                ));
            }
            Event::CellEnd {
                prior,
                model,
                day,
                wall_ms,
            } if self.verbosity >= 2 => {
                self.say(&format!("cell {prior}/{model}@{day}: {wall_ms:.0} ms"));
            }
            Event::CellFailure {
                prior,
                model,
                day,
                kind,
            } => {
                self.say(&format!("cell {prior}/{model}@{day}: failed ({kind})"));
            }
            Event::CliDiagnostic { level, message } => {
                self.say(&format!("{level}: {message}"));
            }
            Event::DiagnosticCheckpoint { checkpoint } if self.verbosity >= 1 => {
                // Headline one parameter: the residual-bug count when
                // present, otherwise the first column.
                let headline = checkpoint
                    .params
                    .iter()
                    .find(|p| p.parameter == "residual")
                    .or_else(|| checkpoint.params.first());
                if let Some(p) = headline {
                    self.say(&format!(
                        "chain {}: checkpoint @ sweep {}: {} kept; {} mean {:.2} ess {:.0} mcse {:.3}",
                        checkpoint.chain,
                        checkpoint.sweep + 1,
                        checkpoint.kept,
                        p.parameter,
                        p.moments.mean,
                        p.ess,
                        p.mcse
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::Arc;

    /// A Write handle into a shared buffer the test can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn jsonl_lines_parse_and_carry_ms_and_trace_id() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        sink.record(&Event::PhaseStart { phase: "sampling" });
        sink.record(&Event::Retry {
            chain: 1,
            sweep: 7,
            retries: 2,
        });
        sink.flush().unwrap();
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let default_id = crate::trace_id::process_trace_id().to_hex();
        for line in lines {
            let v = parse(line).unwrap();
            assert!(v.get("type").is_some());
            assert!(v.get("ms").unwrap().as_f64().unwrap() >= 0.0);
            assert_eq!(
                v.get("trace_id").unwrap().as_str(),
                Some(default_id.as_str())
            );
        }
    }

    #[test]
    fn jsonl_with_trace_id_stamps_the_override() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone())).with_trace_id("deadbeef");
        sink.record(&Event::PhaseStart { phase: "sampling" });
        sink.flush().unwrap();
        let v = parse(buf.text().lines().next().unwrap()).unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("deadbeef"));
    }

    #[test]
    fn jsonl_strides_sweep_events_but_not_faults() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone())).with_sweep_stride(10);
        for sweep in 0..25 {
            sink.record(&Event::SweepEnd {
                chain: 0,
                sweep,
                total: 25,
                kept: 0,
            });
        }
        sink.record(&Event::SweepFault {
            chain: 0,
            sweep: 13,
            kind: "nan-rate".into(),
            detail: "x".into(),
        });
        sink.flush().unwrap();
        let text = buf.text();
        assert_eq!(text.lines().filter(|l| l.contains("sweep-end")).count(), 3);
        assert_eq!(
            text.lines().filter(|l| l.contains("sweep-fault")).count(),
            1
        );
    }

    #[test]
    fn progress_throttles_per_chain_but_always_reports_faults() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::to_writer(Box::new(buf.clone()), 1)
            .with_min_interval(Duration::from_secs(3600));
        for sweep in 0..5 {
            sink.record(&Event::SweepEnd {
                chain: 0,
                sweep,
                total: 5,
                kept: 0,
            });
        }
        sink.record(&Event::FaultInjected {
            chain: 0,
            sweep: 3,
            kind: "panic".into(),
        });
        sink.record(&Event::ChainPanicked {
            chain: 0,
            detail: "boom".into(),
        });
        let text = buf.text();
        assert_eq!(text.lines().filter(|l| l.contains("sweep")).count(), 2);
        assert!(text.contains("injected panic fault at sweep 3"));
        assert!(text.contains("contained panic: boom"));
    }

    #[test]
    fn progress_verbosity_gates_chatty_lines() {
        let buf = SharedBuf::default();
        let sink =
            ProgressSink::to_writer(Box::new(buf.clone()), 0).with_min_interval(Duration::ZERO);
        sink.record(&Event::SweepEnd {
            chain: 0,
            sweep: 0,
            total: 5,
            kept: 0,
        });
        sink.record(&Event::PhaseEnd {
            phase: "waic",
            wall_ms: 1.0,
        });
        assert!(buf.text().is_empty());

        let buf2 = SharedBuf::default();
        let chatty =
            ProgressSink::to_writer(Box::new(buf2.clone()), 2).with_min_interval(Duration::ZERO);
        chatty.record(&Event::ChainDone {
            chain: 0,
            retries: 1,
            accept: vec![],
        });
        chatty.record(&Event::CellEnd {
            prior: "poisson".into(),
            model: "model1".into(),
            day: 48,
            wall_ms: 2.0,
        });
        let text = buf2.text();
        assert!(text.contains("chain 0: done (1 retries; accept: n/a)"));
        assert!(text.contains("cell poisson/model1@48"));
    }

    #[test]
    fn checkpoints_print_headline_parameter_at_verbosity_one() {
        use crate::checkpoint::{ChainCheckpoint, MomentSummary, ParamCheckpoint};
        let checkpoint = ChainCheckpoint {
            chain: 1,
            sweep: 49,
            kept: 25,
            wall_ms: 80.0,
            params: vec![
                ParamCheckpoint {
                    parameter: "n".into(),
                    moments: MomentSummary {
                        count: 25,
                        mean: 90.0,
                        variance: 4.0,
                    },
                    half1: MomentSummary::default(),
                    half2: MomentSummary::default(),
                    ess: 20.0,
                    mcse: 0.4,
                    ess_per_sec: 250.0,
                },
                ParamCheckpoint {
                    parameter: "residual".into(),
                    moments: MomentSummary {
                        count: 25,
                        mean: 3.75,
                        variance: 1.0,
                    },
                    half1: MomentSummary::default(),
                    half2: MomentSummary::default(),
                    ess: 18.0,
                    mcse: 0.236,
                    ess_per_sec: 225.0,
                },
            ],
            accept: vec![],
        };
        let quiet = SharedBuf::default();
        ProgressSink::to_writer(Box::new(quiet.clone()), 0).record(&Event::DiagnosticCheckpoint {
            checkpoint: checkpoint.clone(),
        });
        assert!(quiet.text().is_empty());

        let buf = SharedBuf::default();
        ProgressSink::to_writer(Box::new(buf.clone()), 1)
            .record(&Event::DiagnosticCheckpoint { checkpoint });
        let text = buf.text();
        assert!(
            text.contains("chain 1: checkpoint @ sweep 50: 25 kept; residual mean 3.75"),
            "{text}"
        );
    }

    #[test]
    fn cli_diagnostics_render_with_level() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::to_writer(Box::new(buf.clone()), 0);
        sink.record(&Event::CliDiagnostic {
            level: "error",
            message: "bad flag".into(),
        });
        assert_eq!(buf.text(), "error: bad flag\n");
    }
}
